"""Figure 11 — pruning curves vs the combined model for the large size.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
Same analysis as Figure 10 but out of cache, with the optimal combined model
``alpha*I + beta*M`` on the x axis: once misses enter the model, pruning by
the model value is again safe.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments.report import render_pruning_figure


def test_figure11_pruning_by_combined_model_large(benchmark, suite_run, scale):
    unit = suite_unit(suite_run, "figure11", benchmark)
    figure = unit.figure
    print()
    print(render_pruning_figure(figure))

    assert figure.n == scale.large_size
    assert "Instructions" in figure.model_label and "Misses" in figure.model_label
    for curve in figure.curves:
        assert abs(curve.cumulative[-1] - curve.limit) < 0.02
    threshold, discarded = figure.safe_thresholds[5.0]
    assert discarded > 0.2

    # Pruning by the combined model is at least as effective as pruning by the
    # instruction count alone at this size (the instruction-only baseline is
    # part of the experiment's artifact).
    discarded_instructions = unit.artifact["instructions_baseline"]["5"]["discarded"]
    print(
        f"safe pruning at top 5%: combined model discards {discarded * 100:.1f}% "
        f"vs {discarded_instructions * 100:.1f}% for instructions alone"
    )
    assert discarded >= discarded_instructions - 0.15
