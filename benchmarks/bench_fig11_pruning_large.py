"""Figure 11 — pruning curves vs the combined model for the large size.

Same analysis as Figure 10 but out of cache, with the optimal combined model
``alpha*I + beta*M`` on the x axis: once misses enter the model, pruning by
the model value is again safe.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments.report import render_pruning_figure


def test_figure11_pruning_by_combined_model_large(benchmark, suite):
    figure = run_once(benchmark, suite.figure11)
    print()
    print(render_pruning_figure(figure))

    assert figure.n == suite.scale.large_size
    assert "Instructions" in figure.model_label and "Misses" in figure.model_label
    for curve in figure.curves:
        assert abs(curve.cumulative[-1] - curve.limit) < 0.02
    threshold, discarded = figure.safe_thresholds[5.0]
    assert discarded > 0.2

    # Pruning by the combined model is at least as effective as pruning by the
    # instruction count alone at this size.
    from repro.experiments.pruning import pruning_figure

    instruction_only = pruning_figure(suite.large_table(), model_label="instructions")
    _, discarded_instructions = instruction_only.safe_thresholds[5.0]
    print(
        f"safe pruning at top 5%: combined model discards {discarded * 100:.1f}% "
        f"vs {discarded_instructions * 100:.1f}% for instructions alone"
    )
    assert discarded >= discarded_instructions - 0.15
