"""Campaign-service benchmark: service-mediated search vs the direct engine.

Measures what the multi-tenant service layer costs and what it buys, on the
Opteron-like geometry (noise-free, so every path is bit-comparable):

* ``dp_n14_direct_cold`` — the reference: measured-cycles DP search at n=14
  through a private :class:`CostEngine` over an empty store.
* ``dp_n14_service_cold`` — the same search through a
  :class:`CampaignService` client (job queue, worker fleet, in-flight dedup,
  sharded persistence) starting from an empty store.  The gate requires the
  service path to stay within ``SERVICE_OVERHEAD_CEILING`` of the direct
  engine: the queue/dispatch layer must be thin relative to measurement.
* ``dp_n14_service_warm`` — the same search through a *second* client of the
  same service: everything is served from the shared record cache, zero
  measurements, gated at >= ``WARM_SPEEDUP_FLOOR`` over the direct cold run.
* ``dp_n14_direct_warm`` — a second direct engine over the now-populated
  store, for comparison with the service warm path.
* ``fanout_8_sessions_n12`` — eight concurrent connected sessions all
  running DP n=12: total real measurements must equal what ONE serial
  engine-backed session performs (the dedup guarantee, verified by a
  counting backend), and the wall-clock is recorded as the contention cost.
* ``sharded_append_10k`` — 10,000 records appended across four
  ``(machine_hash, seed)`` shards of a :class:`ShardedRecordStore` in 100
  batches, plus a full read-back and a drained compaction.

Every run re-verifies exactness before timing: service-mediated DP results
must be bit-identical to the direct engine's, and the fan-out sessions must
all agree with the serial reference — a "fast but wrong" service cannot
produce a benchmark number.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                  # check
    PYTHONPATH=src python benchmarks/bench_service.py --write-baseline

The committed ``BENCH_service.json`` records indicative numbers from the
machine that wrote it; the check mode applies wide slack so only gross
regressions fail.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Multiplier applied to recorded baseline times before failing.
TIME_SLACK = 15.0
#: The tentpole overhead gate: a cold service-mediated DP must stay within
#: this multiple of the direct cold engine (plus a small absolute grace for
#: thread scheduling jitter on loaded CI machines).
SERVICE_OVERHEAD_CEILING = 1.2
SERVICE_OVERHEAD_GRACE_SECONDS = 0.5
#: A warm service client resolves everything from the shared record cache.
WARM_SPEEDUP_FLOOR = 5.0
#: Absolute budget for the sharded append workload (O(batch) appends; a
#: whole-log-rewrite regression lands far beyond this).
SHARDED_APPEND_BUDGET = 2.0


class _CountingBackend:
    """Counts executed units so dedup is verified, not inferred."""

    name = "counting"

    def __init__(self):
        from repro.runtime.backends import BatchedBackend

        self.inner = BatchedBackend()
        self.lock = threading.Lock()
        self.executed = []

    def measure_units(self, machine, units):
        from repro.runtime.store import machine_config_hash
        from repro.wht.encoding import plan_key

        with self.lock:
            digest = machine_config_hash(machine.config)
            self.executed.extend(
                (digest, plan_key(unit.plan), unit.noise_seed) for unit in units
            )
        return self.inner.measure_units(machine, units)


def run_benchmarks() -> dict[str, float]:
    from repro.machine.configs import opteron_like
    from repro.machine.machine import SimulatedMachine
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.service import CampaignService
    from repro.runtime.session import Session, session
    from repro.runtime.sharded_store import ShardedRecordStore
    from repro.runtime.store import CostLogKey, MemoryStore
    from repro.search.dp import dp_search

    config = opteron_like(noise_sigma=0.0).config
    recorded: dict[str, float] = {}

    def bench(name: str, fn) -> object:
        start = time.perf_counter()
        out = fn()
        recorded[name] = time.perf_counter() - start
        print(f"{name}: {recorded[name]:.3f} s")
        return out

    store = MemoryStore()
    direct_cold = bench(
        "dp_n14_direct_cold",
        lambda: dp_search(14, CostEngine(SimulatedMachine(config), store=store)),
    )
    direct_warm_engine = CostEngine(SimulatedMachine(config), store=store)
    direct_warm = bench(
        "dp_n14_direct_warm", lambda: dp_search(14, direct_warm_engine)
    )
    assert direct_warm_engine.measured == 0
    assert direct_warm.best_plans == direct_cold.best_plans

    with CampaignService(workers=2) as service:
        cold_client = service.client(config)
        service_cold = bench(
            "dp_n14_service_cold", lambda: dp_search(14, cold_client)
        )
        warm_client = service.client(config)
        service_warm = bench(
            "dp_n14_service_warm", lambda: dp_search(14, warm_client)
        )
        assert warm_client.measured == 0  # everything shared, nothing re-run
        for result, label in ((service_cold, "cold"), (service_warm, "warm")):
            if (
                result.best_plans != direct_cold.best_plans
                or result.best_costs != direct_cold.best_costs
            ):
                raise SystemExit(
                    f"service exactness regression: {label} service DP "
                    "differs from the direct engine"
                )

    counting = _CountingBackend()
    with CampaignService(backend=counting, workers=4) as service:
        sessions = [Session.connect(service, machine=config) for _ in range(8)]
        results = [None] * len(sessions)

        def fan_out():
            def run(index):
                results[index] = sessions[index].search(12)

            threads = [
                threading.Thread(target=run, args=(index,))
                for index in range(len(sessions))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return results

        bench("fanout_8_sessions_n12", fan_out)
        serial = session(machine=config)
        reference = serial.search(12, use_engine=True)
        for result in results:
            if (
                str(result.best_plan) != str(reference.best_plan)
                or result.best_cost != reference.best_cost
            ):
                raise SystemExit(
                    "service exactness regression: fan-out DP differs from "
                    "the serial session"
                )
        if len(counting.executed) != serial.cost_engine().measured:
            raise SystemExit(
                f"dedup regression: 8 sessions executed "
                f"{len(counting.executed)} units, serial needed "
                f"{serial.cost_engine().measured}"
            )
        if len(set(counting.executed)) != len(counting.executed):
            raise SystemExit("dedup regression: duplicate unit executions")

    def sharded_append():
        with tempfile.TemporaryDirectory() as tmp:
            with ShardedRecordStore(tmp) as sharded:
                keys = [
                    CostLogKey(machine_hash=f"bench-{shard}", seed=shard)
                    for shard in range(4)
                ]
                for batch_index in range(100):
                    key = keys[batch_index % len(keys)]
                    sharded.append_cost_records(
                        key,
                        {
                            f"plan-{batch_index}-{i}": {
                                "cycles": float(i),
                                "instructions": float(i * 3),
                            }
                            for i in range(100)
                        },
                    )
                total = sum(
                    len(sharded.get_cost_records(key)) for key in keys
                )
                assert total == 10_000
                sharded.drain_compactions()

    bench("sharded_append_10k", sharded_append)

    warm_speedup = recorded["dp_n14_direct_cold"] / max(
        recorded["dp_n14_service_warm"], 1e-9
    )
    recorded["service_warm_speedup"] = warm_speedup
    print(f"service_warm_speedup: {warm_speedup:.0f}x")
    overhead = recorded["dp_n14_service_cold"] / max(
        recorded["dp_n14_direct_cold"], 1e-9
    )
    recorded["service_cold_overhead"] = overhead
    print(f"service_cold_overhead: {overhead:.2f}x")
    return recorded


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current machine's numbers into BENCH_service.json",
    )
    args = parser.parse_args()

    recorded = run_benchmarks()

    if args.write_baseline:
        baseline = {
            "note": (
                "Campaign-service perf baseline; indicative numbers from the "
                "machine below, checked by benchmarks/bench_service.py with "
                "wide slack."
            ),
            "machine": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "recorded": {name: round(value, 4) for name, value in recorded.items()},
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    failures = []
    ceiling = (
        SERVICE_OVERHEAD_CEILING * recorded["dp_n14_direct_cold"]
        + SERVICE_OVERHEAD_GRACE_SECONDS
    )
    if recorded["dp_n14_service_cold"] > ceiling:
        failures.append(
            f"cold service DP took {recorded['dp_n14_service_cold']:.2f} s > "
            f"{SERVICE_OVERHEAD_CEILING}x the direct engine's "
            f"{recorded['dp_n14_direct_cold']:.2f} s (+"
            f"{SERVICE_OVERHEAD_GRACE_SECONDS} s grace)"
        )
    if recorded["service_warm_speedup"] < WARM_SPEEDUP_FLOOR:
        failures.append(
            f"warm service speedup {recorded['service_warm_speedup']:.1f}x "
            f"< required {WARM_SPEEDUP_FLOOR}x"
        )
    if recorded["sharded_append_10k"] >= SHARDED_APPEND_BUDGET:
        failures.append(
            f"sharded_append_10k took {recorded['sharded_append_10k']:.2f} s "
            f"(>= {SHARDED_APPEND_BUDGET} s budget)"
        )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())["recorded"]
        for name, value in recorded.items():
            if name.endswith("_speedup") or name.endswith("_overhead"):
                continue
            reference = baseline.get(name)
            if reference and value > reference * TIME_SLACK:
                failures.append(
                    f"{name} took {value:.2f} s > {TIME_SLACK}x baseline "
                    f"{reference} s"
                )
    else:
        print("no BENCH_service.json baseline; absolute gates only")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("service bench OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
