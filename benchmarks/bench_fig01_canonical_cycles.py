"""Figure 1 — cycle-count ratio of canonical algorithms to the DP-best plan.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``):
runs the ``figure1`` experiment through the declarative suite runner and
asserts on the sweep it returns — for every size, the ratio of the iterative /
left recursive / right recursive cycle count to the best (DP-found) plan's
cycle count, and where the iterative/recursive crossover falls relative to
the cache boundaries.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments.report import render_ratio_figure


def test_figure1_cycle_ratio_series(benchmark, suite_run, machine):
    unit = suite_unit(suite_run, "figure1", benchmark)
    sweep = unit.figure
    print()
    print(render_ratio_figure(sweep, "cycles", "Figure 1: cycle-count ratio canonical/best"))

    l1_boundary = machine.config.l1_capacity_exponent()
    l2_boundary = machine.config.l2_capacity_exponent()
    crossover = sweep.crossover_size("right")
    print(
        f"L1 boundary: 2^{l1_boundary} elements, L2 boundary: 2^{l2_boundary} elements, "
        f"right-recursive crossover at n={crossover} "
        f"(paper: crossover at its L2 boundary, n=18)"
    )
    assert unit.artifact["crossover"] == crossover
    assert unit.artifact["l1_boundary"] == l1_boundary
    assert unit.artifact["l2_boundary"] == l2_boundary

    ratios = sweep.ratios("cycles")
    # Shape checks mirroring the paper's reading of the figure: the iterative
    # algorithm wins for every in-cache size, and the crossover happens only
    # once the transform overflows the caches (at or just beyond the L1/L2
    # boundaries on the scaled machine; at the L2 boundary on the Opteron).
    assert crossover is not None, "the recursive algorithm never overtook the iterative one"
    assert crossover > l1_boundary
    assert crossover <= l2_boundary + 2
    # In-cache sizes: the iterative algorithm is the closest to the best plan.
    in_cache = [i for i, n in enumerate(sweep.sizes) if n <= l1_boundary and n >= 4]
    for index in in_cache:
        assert ratios["iterative"][index] <= ratios["left"][index] + 1e-6
    # Out-of-cache sizes: the right recursive algorithm beats the left recursive.
    out_of_cache = [i for i, n in enumerate(sweep.sizes) if n > l2_boundary]
    for index in out_of_cache:
        assert ratios["right"][index] < ratios["left"][index]
