"""Figure 8 — cache misses vs cycles scatter for the large size (paper rho = 0.66)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import paper_values
from repro.experiments.report import render_scatter_figure


def test_figure8_scatter_misses_vs_cycles_large(benchmark, suite):
    data = run_once(benchmark, suite.figure8)
    print()
    print(render_scatter_figure(data, "Figure 8: cache misses vs cycles (large size)"))
    print(f"paper reports rho = {paper_values.PAPER_RHO_LARGE_MISSES:.2f}")

    combined_best = suite.figure9().best[2]
    # Misses alone correlate positively but are not sufficient on their own:
    # the optimal combined model does strictly better.
    assert data.correlation > 0.0
    assert combined_best > data.correlation
