"""Figure 8 — cache misses vs cycles scatter, large size (paper rho = 0.66).

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``);
the comparison against the optimal combined model reuses the figure-9 unit
out of the same suite run.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments import paper_values
from repro.experiments.report import render_scatter_figure


def test_figure8_scatter_misses_vs_cycles_large(benchmark, suite_run):
    data = suite_unit(suite_run, "figure8", benchmark).figure
    print()
    print(render_scatter_figure(data, "Figure 8: cache misses vs cycles (large size)"))
    print(f"paper reports rho = {paper_values.PAPER_RHO_LARGE_MISSES:.2f}")

    combined_best = suite_unit(suite_run, "figure9").figure.best[2]
    # Misses alone correlate positively but are not sufficient on their own:
    # the optimal combined model does strictly better.
    assert data.correlation > 0.0
    assert combined_best > data.correlation
