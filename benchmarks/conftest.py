"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every figure of the paper on the *scaled* default
machine (see DESIGN.md).  The sample count and sweep sizes come from
:func:`repro.config.scale_from_env`, so a larger (or smaller) campaign can be
requested without editing code::

    REPRO_SAMPLE_COUNT=2000 pytest benchmarks/ --benchmark-only

The figure benchmarks (``bench_fig01`` … ``bench_fig11``) are thin wrappers
over the committed suite spec ``benchmarks/suites/paper.json``: each one runs
its experiment through the session-scoped :func:`suite_run` (the declarative
suite runner) and asserts on the resulting figure and artifact.  Campaigns
are shared two ways: the suite runner materialises each baseline once per
context, and everything flows through the shared in-process campaign store —
which the legacy :class:`ExperimentSuite` fixture (still used by the summary
and ablation benchmarks) also reads, so nothing is measured twice.
"""

from __future__ import annotations

import os

import pytest

from repro.config import scale_from_env
from repro.experiments.runner import ExperimentSuite
from repro.machine.configs import default_machine

#: Default sample count used by the benchmark campaigns when the environment
#: does not override it.  Large enough for stable correlations, small enough
#: to keep the whole benchmark suite to a few minutes of simulation.
BENCHMARK_SAMPLE_COUNT = 200

#: The committed spec the figure benchmarks wrap.
PAPER_SUITE_SPEC = os.path.join(os.path.dirname(__file__), "suites", "paper.json")


def benchmark_scale():
    """The experiment scale used by the benchmark suite."""
    scale = scale_from_env()
    if "REPRO_SAMPLE_COUNT" not in os.environ:
        scale = scale.with_samples(BENCHMARK_SAMPLE_COUNT)
    return scale


@pytest.fixture(scope="session")
def scale():
    """Session-wide experiment scale."""
    return benchmark_scale()


@pytest.fixture(scope="session")
def machine():
    """The scaled default machine shared by all benchmarks."""
    return default_machine()


@pytest.fixture(scope="session")
def suite(machine, scale):
    """Session-wide experiment suite (campaigns are computed once and cached)."""
    return ExperimentSuite(machine=machine, scale=scale)


@pytest.fixture(scope="session")
def suite_run(scale):
    """The committed paper suite spec, configured at the benchmark scale.

    One :class:`repro.suite.SuiteRun` shared by every figure benchmark;
    individual benchmarks run single experiments out of it via
    :func:`_bench_utils.suite_unit`, so each figure is built exactly once
    and baselines/campaigns replay from the shared in-process store.
    """
    from repro.suite import SuiteRun, load_spec

    spec = load_spec(PAPER_SUITE_SPEC).with_scale(scale)
    return SuiteRun(spec, store="memory")
