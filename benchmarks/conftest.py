"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every figure of the paper on the *scaled* default
machine (see DESIGN.md).  The sample count and sweep sizes come from
:func:`repro.config.scale_from_env`, so a larger (or smaller) campaign can be
requested without editing code::

    REPRO_SAMPLE_COUNT=2000 pytest benchmarks/ --benchmark-only

Heavy experiment benchmarks run exactly once per session; the underlying
campaigns are shared across benchmark files through the session-scoped
:class:`ExperimentSuite` fixture, mirroring how the paper derives several
figures from one measurement campaign.
"""

from __future__ import annotations

import os

import pytest

from repro.config import scale_from_env
from repro.experiments.runner import ExperimentSuite
from repro.machine.configs import default_machine

#: Default sample count used by the benchmark campaigns when the environment
#: does not override it.  Large enough for stable correlations, small enough
#: to keep the whole benchmark suite to a few minutes of simulation.
BENCHMARK_SAMPLE_COUNT = 200


def benchmark_scale():
    """The experiment scale used by the benchmark suite."""
    scale = scale_from_env()
    if "REPRO_SAMPLE_COUNT" not in os.environ:
        scale = scale.with_samples(BENCHMARK_SAMPLE_COUNT)
    return scale


@pytest.fixture(scope="session")
def scale():
    """Session-wide experiment scale."""
    return benchmark_scale()


@pytest.fixture(scope="session")
def machine():
    """The scaled default machine shared by all benchmarks."""
    return default_machine()


@pytest.fixture(scope="session")
def suite(machine, scale):
    """Session-wide experiment suite (campaigns are computed once and cached)."""
    return ExperimentSuite(machine=machine, scale=scale)
