"""Search-layer benchmark: batched plan evaluation vs the per-candidate loop.

Measures the workloads the batched cost engine exists for, on the
Opteron-like geometry (noise-free, so every path is bit-comparable):

* ``dp_n14_scalar`` / ``dp_n16_scalar`` — the baseline: measured-cycles DP
  search with a fresh per-candidate :class:`MeasuredCyclesCost`.
* ``dp_n16_engine_cold`` — the same search through a :class:`CostEngine`
  with an empty store (every candidate still simulated once, batched).
* ``dp_n16_engine_resume`` — the same search through a second engine over
  the now-populated store: the resume/re-run scenario the persistent
  per-plan cost cache targets.  Zero measurements are performed; the
  acceptance gate requires this to be >= 10x faster than the scalar
  baseline and bit-identical to it.
* ``pruned_n14`` — the paper's two-stage search, 1000 RSU candidates:
  vectorised stage-1 model scoring plus engine-measured survivors, gated by
  an absolute budget (the cross-plan fused pipeline keeps it in the low
  seconds where the per-plan pipeline took ~7 s).
* ``measure_batch_1k`` — 1000 distinct RSU plans of size 2^12 measured as
  one cold ``CostEngine.records`` batch: the cross-plan batched measurement
  plumbing (dedupe, fused prepare with its analytic full-coverage arm,
  record staging, one durable append), gated by an absolute budget.
* ``model_score_10k_scalar`` / ``model_score_10k_batch`` — both analytic
  models over 10,000 RSU samples of size 2^18: the per-plan recursion vs
  one shared encoding driving the vectorised batch models.
* ``sample_10k_scalar`` / ``sample_10k_buffered`` — 10,000 RSU draws of
  size 2^18: one ``Generator.random`` call per node vs the buffered
  bit-stream parse (bit-identical plans; gated under 0.15 s).
* ``append_log_10k_records`` — 10,000 cost records appended to a
  DiskStore log in 100 batches plus one full read-back and a compaction:
  the O(batch) append path that replaced the whole-table-per-batch write.

Every run re-verifies exactness before timing anything: batched DP results
must equal the scalar search's, and the batch models must match the scalar
models on every enumerated plan for n <= 7 — a "fast but wrong" engine
cannot produce a benchmark number.

Usage::

    PYTHONPATH=src python benchmarks/bench_search.py                  # check
    PYTHONPATH=src python benchmarks/bench_search.py --write-baseline

The committed ``BENCH_search.json`` records indicative numbers from the
machine that wrote it; the check mode applies wide slack so only gross
regressions fail.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: Multiplier applied to recorded baseline times before failing.
TIME_SLACK = 15.0
#: The acceptance gate: engine resume vs scalar DP at n=16.
RESUME_SPEEDUP_FLOOR = 10.0
#: Absolute budgets for the batched-measurement workloads (the fused
#: pipeline runs both in roughly two seconds on one laptop core; the old
#: per-plan pipeline took ~7 s for the pruned search, so these catch a
#: fall-back to per-plan simulation while tolerating slow CI machines).
PRUNED_N14_BUDGET = 5.0
MEASURE_BATCH_1K_BUDGET = 2.0
#: Engine-cold DP must stay in the scalar search's ballpark: both ride the
#: fused pipeline (the engine adds record-keeping but fuses candidate
#: rounds), so a cold run drifting far past the scalar time means the batch
#: path itself regressed.  The margin absorbs run-to-run noise on loaded
#: machines.
COLD_VS_SCALAR_CEILING = 1.5

MODEL_SAMPLES = 10_000
MODEL_SIZE = 18


def check_exactness() -> None:
    """Batched paths must be bit-identical to the scalar paths.

    Includes the acceptance parity of the cross-plan fused pipeline: for a
    sample of the engine DP n=16 candidates and of the pruned n=14 survivor
    population, ``prepare_batch`` must reproduce the HierarchyStatistics of
    the per-plan streamed pipeline (no elision, no analytic shortcuts)
    exactly.
    """
    from repro.machine.configs import opteron_like
    from repro.machine.hierarchy import MemoryHierarchy
    from repro.machine.machine import SimulatedMachine
    from repro.machine.trace import stream_line_chunks
    from repro.models.cache_misses import CacheMissModel
    from repro.models.instruction_count import InstructionCountModel
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.store import MemoryStore
    from repro.search.costs import InstructionModelCost, MeasuredCyclesCost
    from repro.search.dp import dp_search
    from repro.wht.encoding import encode_plans
    from repro.wht.enumeration import enumerate_plans
    from repro.wht.interpreter import PlanInterpreter
    from repro.wht.random_plans import random_plans

    config = opteron_like(noise_sigma=0.0).config
    scalar = dp_search(12, MeasuredCyclesCost(SimulatedMachine(config)))
    store = MemoryStore()
    cold = dp_search(12, CostEngine(SimulatedMachine(config), store=store))
    resumed_engine = CostEngine(SimulatedMachine(config), store=store)
    resumed = dp_search(12, resumed_engine)
    for result, label in ((cold, "engine"), (resumed, "engine-resume")):
        if result.best_plans != scalar.best_plans or result.best_costs != scalar.best_costs:
            raise SystemExit(f"exactness regression: {label} DP differs from scalar DP")
    if resumed_engine.measured != 0:
        raise SystemExit(
            f"cost-cache regression: resume re-measured {resumed_engine.measured} plans"
        )

    # Cross-plan batch parity on the two gated campaign shapes: a DP n=16
    # candidate population (compositions of a DP's best sub-plans) and
    # pruned-style n=14 RSU survivors.
    def reference_stats(plan):
        hierarchy = MemoryHierarchy(config.l1, config.l2, vectorized=config.vectorized_caches)
        return hierarchy.process_line_chunks(
            stream_line_chunks(
                PlanInterpreter().iter_nest_blocks(plan),
                line_size=config.l1.line_size,
                element_size=config.element_size,
            )
        )

    model_dp = dp_search(16, InstructionModelCost())
    seen: set[str] = set()
    dp_candidates = []
    for record in model_dp.candidates:
        key = str(record.plan)
        if key not in seen:
            seen.add(key)
            dp_candidates.append(record.plan)
    samples = dp_candidates[:: max(len(dp_candidates) // 24, 1)] + random_plans(
        14, 12, rng=19
    )
    machine = SimulatedMachine(config)
    for plan, prepared in zip(samples, machine.prepare_batch(samples)):
        if prepared.hierarchy_stats != reference_stats(plan):
            raise SystemExit(
                f"batch parity regression: prepare_batch HierarchyStatistics "
                f"differ from the per-plan pipeline on {plan}"
            )

    instruction_model = InstructionCountModel()
    miss_model = CacheMissModel.from_machine_config(config, level="l1")
    for n in range(1, 8):
        plans = list(enumerate_plans(n))
        encoded = encode_plans(plans)
        instr = instruction_model.count_batch(encoded)
        misses = miss_model.misses_batch(encoded)
        for index, plan in enumerate(plans):
            if int(instr[index]) != instruction_model.count(plan):
                raise SystemExit(f"instruction batch mismatch on {plan} (n={n})")
            if int(misses[index]) != miss_model.misses(plan):
                raise SystemExit(f"miss batch mismatch on {plan} (n={n})")
    print("exactness: batched DP and batch models match the scalar paths")


def run_benchmarks() -> dict[str, float]:
    from repro.machine.configs import opteron_like
    from repro.machine.machine import SimulatedMachine
    from repro.models.cache_misses import CacheMissModel
    from repro.models.instruction_count import InstructionCountModel
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.store import MemoryStore
    from repro.search.costs import InstructionModelCost, MeasuredCyclesCost
    from repro.search.dp import dp_search
    from repro.search.pruned import ModelPrunedSearch
    from repro.wht.encoding import encode_plans
    from repro.wht.random_plans import RSUSampler

    config = opteron_like(noise_sigma=0.0).config
    recorded: dict[str, float] = {}

    def bench(name: str, fn) -> object:
        start = time.perf_counter()
        out = fn()
        recorded[name] = time.perf_counter() - start
        print(f"{name}: {recorded[name]:.3f} s")
        return out

    scalar14 = bench(
        "dp_n14_scalar",
        lambda: dp_search(14, MeasuredCyclesCost(SimulatedMachine(config))),
    )
    scalar16 = bench(
        "dp_n16_scalar",
        lambda: dp_search(16, MeasuredCyclesCost(SimulatedMachine(config))),
    )

    store = MemoryStore()
    cold = bench(
        "dp_n16_engine_cold",
        lambda: dp_search(16, CostEngine(SimulatedMachine(config), store=store)),
    )
    resume_engine = CostEngine(SimulatedMachine(config), store=store)
    resumed = bench("dp_n16_engine_resume", lambda: dp_search(16, resume_engine))
    for result, label in ((cold, "cold"), (resumed, "resume")):
        assert result.best_plans == scalar16.best_plans, label
        assert result.best_costs == scalar16.best_costs, label
    assert resume_engine.measured == 0
    assert scalar14.best_plans[14] == scalar16.best_plans[14]

    engine = CostEngine(SimulatedMachine(config), store=MemoryStore())
    bench(
        "pruned_n14",
        lambda: ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=engine,
            samples=1000,
            keep_fraction=0.25,
        ).search(14, rng=0),
    )

    batch_plans = []
    batch_seen = set()
    for plan in RSUSampler().sample_many(12, 2000, rng=23):
        key = str(plan)
        if key not in batch_seen:
            batch_seen.add(key)
            batch_plans.append(plan)
        if len(batch_plans) == 1000:
            break
    batch_engine = CostEngine(SimulatedMachine(config), store=MemoryStore())
    bench(
        "measure_batch_1k",
        lambda: batch_engine.records(batch_plans, ("cycles",)),
    )
    assert batch_engine.measured == len(batch_plans)

    sampler = RSUSampler()
    rng = np.random.default_rng(0)
    plans = [sampler.sample(MODEL_SIZE, rng) for _ in range(MODEL_SAMPLES)]
    instruction_model = InstructionCountModel()
    miss_model = CacheMissModel.from_machine_config(config, level="l1")

    def scalar_scores():
        return (
            [instruction_model.count(plan) for plan in plans],
            [miss_model.misses(plan) for plan in plans],
        )

    scalar_values = bench("model_score_10k_scalar", scalar_scores)

    def batch_scores():
        encoded = encode_plans(plans)
        return (
            instruction_model.count_batch(encoded),
            miss_model.misses_batch(encoded),
        )

    batch_values = bench("model_score_10k_batch", batch_scores)
    assert np.array_equal(batch_values[0], np.asarray(scalar_values[0]))
    assert np.array_equal(batch_values[1], np.asarray(scalar_values[1]))

    def scalar_samples():
        generator = np.random.default_rng(11)
        one_at_a_time = RSUSampler()
        return [one_at_a_time.sample(MODEL_SIZE, generator) for _ in range(MODEL_SAMPLES)]

    scalar_drawn = bench("sample_10k_scalar", scalar_samples)
    buffered_drawn = bench(
        "sample_10k_buffered",
        lambda: RSUSampler().sample_many(MODEL_SIZE, MODEL_SAMPLES, rng=11),
    )
    assert buffered_drawn == scalar_drawn  # bit-identical draws

    import tempfile

    from repro.runtime.store import CostLogKey, DiskStore

    def append_log():
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp)
            key = CostLogKey(machine_hash="bench", seed=0)
            for batch_index in range(100):
                store.append_cost_records(
                    key,
                    {
                        f"plan-{batch_index}-{i}": {
                            "cycles": float(i),
                            "instructions": float(i * 3),
                        }
                        for i in range(100)
                    },
                )
            records = store.get_cost_records(key)
            assert len(records) == 10_000
            store.compact_cost_records(key)
            assert store.get_cost_records(key) == records

    bench("append_log_10k_records", append_log)

    speedup = recorded["dp_n16_scalar"] / max(recorded["dp_n16_engine_resume"], 1e-9)
    recorded["dp_n16_resume_speedup"] = speedup
    print(f"dp_n16_resume_speedup: {speedup:.0f}x")
    return recorded


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current machine's numbers into BENCH_search.json",
    )
    args = parser.parse_args()

    check_exactness()
    recorded = run_benchmarks()

    if args.write_baseline:
        baseline = {
            "note": (
                "Search-layer perf baseline; indicative numbers from the "
                "machine below, checked by benchmarks/bench_search.py with "
                "wide slack."
            ),
            "machine": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "recorded": {name: round(value, 4) for name, value in recorded.items()},
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    failures = []
    if recorded["dp_n16_resume_speedup"] < RESUME_SPEEDUP_FLOOR:
        failures.append(
            f"engine resume speedup {recorded['dp_n16_resume_speedup']:.1f}x "
            f"< required {RESUME_SPEEDUP_FLOOR}x"
        )
    if recorded["pruned_n14"] >= PRUNED_N14_BUDGET:
        failures.append(
            f"pruned_n14 took {recorded['pruned_n14']:.2f} s "
            f"(>= {PRUNED_N14_BUDGET} s budget)"
        )
    if recorded["measure_batch_1k"] >= MEASURE_BATCH_1K_BUDGET:
        failures.append(
            f"measure_batch_1k took {recorded['measure_batch_1k']:.2f} s "
            f"(>= {MEASURE_BATCH_1K_BUDGET} s budget)"
        )
    if recorded["dp_n16_engine_cold"] > COLD_VS_SCALAR_CEILING * recorded["dp_n16_scalar"]:
        failures.append(
            f"engine-cold DP n=16 took {recorded['dp_n16_engine_cold']:.2f} s > "
            f"{COLD_VS_SCALAR_CEILING}x the scalar search's "
            f"{recorded['dp_n16_scalar']:.2f} s"
        )
    if recorded["model_score_10k_batch"] >= 1.0:
        failures.append(
            f"batched 10k-sample model scoring took "
            f"{recorded['model_score_10k_batch']:.2f} s (>= 1 s)"
        )
    if recorded["sample_10k_buffered"] >= 0.15:
        failures.append(
            f"buffered 10k-sample RSU draw took "
            f"{recorded['sample_10k_buffered']:.2f} s (>= 0.15 s)"
        )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())["recorded"]
        for name, value in recorded.items():
            if name.endswith("_speedup"):
                continue
            reference = baseline.get(name)
            if reference and value > reference * TIME_SLACK:
                failures.append(
                    f"{name} took {value:.2f} s > {TIME_SLACK}x baseline {reference} s"
                )
    else:
        print("no BENCH_search.json baseline; absolute gates only")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("search bench OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
