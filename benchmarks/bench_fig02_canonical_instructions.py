"""Figure 2 — instruction-count ratio of canonical algorithms to the best plan.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
The paper's reading: the iterative algorithm executes the fewest instructions
at every size and the left recursive algorithm the most; the analysis of [5]
predicts right recursive < left recursive, which is why right recursive is the
faster of the two recursive algorithms.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments.report import render_ratio_figure


def test_figure2_instruction_ratio_series(benchmark, suite_run):
    sweep = suite_unit(suite_run, "figure2", benchmark).figure
    print()
    print(
        render_ratio_figure(
            sweep, "instructions", "Figure 2: instruction-count ratio canonical/best"
        )
    )

    ratios = sweep.ratios("instructions")
    for index, n in enumerate(sweep.sizes):
        if n < 2:
            continue
        assert ratios["iterative"][index] <= ratios["right"][index] + 1e-9, n
        assert ratios["right"][index] <= ratios["left"][index] + 1e-9, n
