"""Figure 10 — pruning curves vs instruction count for the small size.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
The paper's example reading of this figure: to find an algorithm within 5% of
the best at size 2^9 it is safe to discard every algorithm with more than
7x10^4 instructions.  The benchmark reports the reproduced safe thresholds and
the fraction of the algorithm sample they discard.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments import paper_values
from repro.experiments.report import render_pruning_figure


def test_figure10_pruning_by_instruction_count_small(benchmark, suite_run, scale):
    unit = suite_unit(suite_run, "figure10", benchmark)
    figure = unit.figure
    print()
    print(render_pruning_figure(figure))
    example = paper_values.PAPER_PRUNING_EXAMPLE
    print(
        f"paper example: at size 2^{example['size']} keep instructions <= "
        f"{example['instruction_threshold']:.0f} to stay within the top {example['percentile']:g}%"
    )

    assert figure.n == scale.small_size
    for curve in figure.curves:
        # Every curve approaches its 1 - p limit at the maximum threshold.
        assert abs(curve.cumulative[-1] - curve.limit) < 0.02
    threshold, discarded = figure.safe_thresholds[5.0]
    # The safe threshold sits below the maximum observed instruction count and
    # discards a substantial fraction of the sample.
    assert threshold < unit.artifact["max_model_value"]
    assert discarded > 0.25
