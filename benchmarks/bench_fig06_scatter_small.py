"""Figure 6 — instructions vs cycles scatter, small size (paper rho = 0.96).

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments import paper_values
from repro.experiments.report import render_scatter_figure


def test_figure6_scatter_instructions_vs_cycles_small(benchmark, suite_run, scale):
    data = suite_unit(suite_run, "figure6", benchmark).figure
    print()
    print(render_scatter_figure(data, "Figure 6: instructions vs cycles (small size)"))
    print(f"paper reports rho = {paper_values.PAPER_RHO_SMALL_INSTRUCTIONS:.2f}")

    assert data.count == scale.sample_count
    # The in-cache correlation is strong (the paper's headline 0.96).
    assert data.correlation > 0.9
    # The reference algorithms sit inside the sampled range at this size.
    assert {"iterative", "left", "right", "best"} <= set(data.references)
