"""Helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["run_once"]


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer.

    The figure-level experiments take tens of seconds of simulation; repeating
    them for statistical timing would multiply the suite's runtime without
    adding information, so they are benchmarked with a single round (the
    timing is still recorded and reported by pytest-benchmark).
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
