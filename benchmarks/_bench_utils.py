"""Helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["run_once", "suite_unit"]


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer.

    The figure-level experiments take tens of seconds of simulation; repeating
    them for statistical timing would multiply the suite's runtime without
    adding information, so they are benchmarked with a single round (the
    timing is still recorded and reported by pytest-benchmark).
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def suite_unit(suite_run, experiment_id, benchmark=None):
    """One experiment's completed result out of the shared paper suite run.

    The figure benchmarks are thin wrappers over the committed spec in
    ``benchmarks/suites/paper.json``: each asks the session-scoped
    ``suite_run`` fixture for its experiment, timed under ``benchmark`` when
    given.  Results are cached on the run, so cross-references (Figure 7
    comparing against Figure 6, Figure 8 against Figure 9) reuse the unit the
    other benchmark built — or build it untimed when a file runs standalone.
    """
    cache = getattr(suite_run, "_bench_units", None)
    if cache is None:
        cache = {}
        suite_run._bench_units = cache
    if experiment_id in cache:
        unit = cache[experiment_id]
        if benchmark is not None:
            run_once(benchmark, lambda: unit)
        return unit

    def execute():
        return suite_run.run(experiments=[experiment_id])

    result = execute() if benchmark is None else run_once(benchmark, execute)
    unit = result.get(experiment_id)
    assert unit.status == "complete", f"{experiment_id}: {unit.error}"
    cache[experiment_id] = unit
    return unit
