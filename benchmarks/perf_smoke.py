"""CI perf smoke test for the measurement substrate and the search engine.

Runs a small but representative workload — `SimulatedMachine.prepare` of an
n=14 RSU plan on the Opteron-like geometry (big enough not to fit L1, so the
L1 simulation pipeline actually runs; n <= 13 footprints are resolved
analytically since the fused-pipeline rework) — and checks it against

* a generous absolute wall-time budget (to catch order-of-magnitude
  regressions such as an accidental fall-back to a per-access Python loop),
* the committed ``BENCH_substrate.json`` baseline, with wide multipliers
  (CI machines vary; only gross regressions should fail), and
* a bit-exactness cross-check of the streaming pipeline against the eager
  reference pipeline, so a "fast but wrong" regression cannot pass.

It also gates the batched search engine (``check_search_budget``): the
engine-backed DP search must be bit-identical to the scalar per-candidate
search, must measure each distinct candidate exactly once on a cold store,
must resume from a warm store with zero measurements, and the vectorised
analytic models must match the scalar models on every enumerated plan for
n <= 6.  The metric-first cost API is gated by ``check_multi_metric``: one
measurement populates every hardware counter metric, objective-based DP is
bit-identical to the plain cycles path, and the composite model objective
reproduces the combined model over the full enumerated n <= 8 space with
zero hardware measurements.  The multi-tenant campaign service is gated by
``check_service``: eight concurrent sessions execute zero duplicate
measurements (counter-verified), fan-out results are bit-identical to one
serial session, and the cold service-mediated search stays within 20% of the
direct engine.  The robustness layer is gated by ``check_faults``: a clean
run fires none of the retry machinery, a chaotic run (injected backend
failures, torn store tails, a poisoned best plan) through a fallback-armed
session stays bit-identical to the fault-free search with the poison
dead-lettered, and zero-rate fault-injection hooks add < 5% to a cold DP.
The multi-host socket transport is gated by ``check_transport``: a
loopback-TCP DP (n=12) is bit-identical to the in-process service path,
executes zero duplicate or re-executed units over the wire, and stays
within 30% of the in-process service client.  The declarative suite runner
is gated by ``check_suite``: a cold run of the committed CI spec over a
fresh disk store completes and measures, and a warm re-run against the same
store performs zero new measurements, skips every unit, and finishes at
least 10x faster.
(Timing gates for the search layer live in
``bench_search.py`` against ``BENCH_search.json``; service timings in
``bench_service.py`` against ``BENCH_service.json``.)

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                 # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline

The baseline file records the machine it was captured on; treat its numbers
as indicative, not as a cross-hardware contract.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

#: Absolute ceiling for the smoke workload.  The streaming pipeline runs it
#: in well under a second; the seed's eager pipeline took ~2 s; a per-access
#: Python loop regression lands in the minutes.
TIME_BUDGET_SECONDS = 60.0

#: Multipliers applied to the recorded baseline before failing.
TIME_SLACK = 15.0
MEMORY_SLACK = 10.0

SMOKE_SIZE = 14
SMOKE_SEED = 7


def run_smoke():
    """Time and trace the n=14 prepare; returns (seconds, peak_bytes, stats).

    One untimed warmup absorbs first-touch effects (imports, allocator,
    NumPy lazy setup) and the reported time is the best of three runs, so a
    momentarily loaded CI runner does not fail the gate spuriously.
    """
    from repro.machine.configs import opteron_like
    from repro.wht.random_plans import RSUSampler

    plan = RSUSampler().sample(SMOKE_SIZE, rng=SMOKE_SEED)

    machine = opteron_like(noise_sigma=0.0)
    prepared = machine.prepare(plan)  # warmup
    seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        prepared = machine.prepare(plan)
        seconds = min(seconds, time.perf_counter() - start)

    machine = opteron_like(noise_sigma=0.0)
    tracemalloc.start()
    traced = machine.prepare(plan)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert traced.hierarchy_stats == prepared.hierarchy_stats
    return seconds, int(peak), prepared.hierarchy_stats


def check_exactness() -> None:
    """Streaming pipeline must be bit-identical to the eager reference."""
    from repro.machine.configs import opteron_like, tiny_machine
    from repro.machine.hierarchy import MemoryHierarchy
    from repro.machine.trace import trace_from_nests
    from repro.wht.interpreter import PlanInterpreter
    from repro.wht.random_plans import random_plan

    interpreter = PlanInterpreter()
    for machine, size in ((tiny_machine(), 8), (opteron_like(noise_sigma=0.0), 9)):
        for seed in range(3):
            plan = random_plan(size, rng=seed)
            streamed = machine.prepare(plan).hierarchy_stats
            _, nests = interpreter.profile(plan, record_trace=True)
            trace = trace_from_nests(nests, element_size=machine.config.element_size)
            hierarchy = MemoryHierarchy(
                machine.config.l1, machine.config.l2, vectorized=False
            )
            eager = hierarchy.process_trace(trace)
            if streamed != eager:
                raise SystemExit(
                    f"exactness regression: streamed {streamed} != eager {eager} "
                    f"({machine.config.name}, n={size}, seed={seed})"
                )


def check_search_budget() -> None:
    """Batched search must be exact and must respect its measurement budget.

    Three gates on a small measured-cycles DP search (n=10, Opteron-like,
    noise-free):

    * the engine-backed search is bit-identical to the scalar per-candidate
      search;
    * a cold engine measures exactly one preparation per distinct candidate
      (the search's measurement budget — no hidden re-measurement);
    * a second engine over the same store resumes with *zero* measurements
      and identical results (the persistent cost cache works).

    Plus batch-vs-scalar parity of both analytic models over every
    enumerated plan for n <= 6, so the vectorised stage-1 scoring of the
    pruned search cannot silently drift.
    """
    from repro.machine.configs import opteron_like
    from repro.machine.machine import SimulatedMachine
    from repro.models.cache_misses import CacheMissModel
    from repro.models.instruction_count import InstructionCountModel
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.store import MemoryStore
    from repro.search.costs import MeasuredCyclesCost
    from repro.search.dp import dp_search
    from repro.wht.encoding import encode_plans
    from repro.wht.enumeration import enumerate_plans

    config = opteron_like(noise_sigma=0.0).config
    scalar_cost = MeasuredCyclesCost(SimulatedMachine(config))
    scalar = dp_search(10, scalar_cost)

    store = MemoryStore()
    cold_engine = CostEngine(SimulatedMachine(config), store=store)
    cold = dp_search(10, cold_engine)
    if cold.best_plans != scalar.best_plans or cold.best_costs != scalar.best_costs:
        raise SystemExit("search exactness regression: engine DP differs from scalar DP")
    if cold_engine.measured != scalar_cost.measured:
        raise SystemExit(
            f"search budget regression: engine measured {cold_engine.measured} "
            f"candidates, scalar measured {scalar_cost.measured}"
        )

    warm_engine = CostEngine(SimulatedMachine(config), store=store)
    warm = dp_search(10, warm_engine)
    if warm.best_plans != scalar.best_plans or warm.best_costs != scalar.best_costs:
        raise SystemExit("search exactness regression: resumed DP differs from scalar DP")
    if warm_engine.measured != 0:
        raise SystemExit(
            f"cost-cache regression: resumed search re-measured "
            f"{warm_engine.measured} candidates"
        )

    instruction_model = InstructionCountModel()
    miss_model = CacheMissModel.from_machine_config(config, level="l1")
    for n in range(1, 7):
        plans = list(enumerate_plans(n))
        encoded = encode_plans(plans)
        instr = instruction_model.count_batch(encoded)
        misses = miss_model.misses_batch(encoded)
        for index, plan in enumerate(plans):
            if int(instr[index]) != instruction_model.count(plan):
                raise SystemExit(f"batch instruction model mismatch on {plan}")
            if int(misses[index]) != miss_model.misses(plan):
                raise SystemExit(f"batch miss model mismatch on {plan}")


def check_batch_identity() -> None:
    """The cross-plan fused batch pipeline must be exact.

    ``prepare_batch`` — write-pass elision, analytic full-coverage
    statistics, spliced super-stream simulation with per-plan segmentation —
    must reproduce the eager reference pipeline's HierarchyStatistics for
    every enumerated plan (n <= 6, one mixed batch) and for random larger
    plans, on both the tiny and the Opteron-like geometry.
    """
    from repro.machine.configs import opteron_like, tiny_machine
    from repro.machine.hierarchy import MemoryHierarchy
    from repro.machine.machine import SimulatedMachine
    from repro.machine.trace import trace_from_nests
    from repro.wht.enumeration import enumerate_plans
    from repro.wht.interpreter import PlanInterpreter
    from repro.wht.random_plans import random_plan

    interpreter = PlanInterpreter()
    for machine, sizes in (
        (tiny_machine(), (7, 8)),
        (opteron_like(noise_sigma=0.0), (9, 10)),
    ):
        config = machine.config
        plans = [plan for n in range(1, 7) for plan in enumerate_plans(n)]
        plans += [random_plan(size, rng=seed) for size in sizes for seed in range(2)]
        batch = SimulatedMachine(config).prepare_batch(plans)
        for plan, prepared in zip(plans, batch):
            _, nests = interpreter.profile(plan, record_trace=True)
            trace = trace_from_nests(nests, element_size=config.element_size)
            hierarchy = MemoryHierarchy(config.l1, config.l2, vectorized=False)
            eager = hierarchy.process_trace(trace)
            if prepared.hierarchy_stats != eager:
                raise SystemExit(
                    f"batch identity regression: prepare_batch "
                    f"{prepared.hierarchy_stats} != eager {eager} "
                    f"({config.name}, {plan})"
                )


def check_multi_metric() -> None:
    """The metric-first cost API must be exact and measurement-frugal.

    Three gates:

    * one ``measure`` call populates **every** hardware counter metric: after
      a single measurement, any subset of counter metrics is served with zero
      further measurements, and each value equals the direct measurement;
    * the objective-based DP search (``engine.cost("cycles")``) is
      bit-identical to the engine's plain cycles path (and hence to the
      scalar search, which ``check_search_budget`` already pins);
    * the composite model objective ``1.00 * model_instructions +
      0.05 * model_l1_misses`` reproduces the combined-model values (and
      therefore the ranking) of ``repro.models.combined`` over the entire
      enumerated space for n <= 8 — with zero hardware measurements.
    """
    from repro.machine.configs import opteron_like
    from repro.machine.machine import SimulatedMachine
    from repro.models.cache_misses import CacheMissModel
    from repro.models.combined import CombinedModel
    from repro.models.instruction_count import InstructionCountModel
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.metrics import counter_metric_names
    from repro.runtime.objectives import WeightedObjective
    from repro.runtime.store import MemoryStore
    from repro.search.dp import dp_search
    from repro.wht.enumeration import enumerate_plans
    from repro.wht.random_plans import random_plan

    config = opteron_like(noise_sigma=0.0).config

    engine = CostEngine(SimulatedMachine(config))
    plan = random_plan(10, rng=3)
    records = engine.records([plan], counter_metric_names())
    if engine.measured != 1:
        raise SystemExit(
            f"multi-metric regression: {engine.measured} measurements to "
            "populate the counter metrics (expected 1)"
        )
    reference = SimulatedMachine(config).measure(plan)
    for name in counter_metric_names():
        if records[0][name] != float(getattr(reference, name)):
            raise SystemExit(f"multi-metric regression: {name} mismatch")
    engine.records([plan], ("instructions", "l2_misses"))
    if engine.measured != 1:
        raise SystemExit("multi-metric regression: metric subset re-measured")

    store = MemoryStore()
    plain = dp_search(10, CostEngine(SimulatedMachine(config), store=store))
    objective_engine = CostEngine(SimulatedMachine(config), store=MemoryStore())
    objective = dp_search(10, objective_engine.cost("cycles"))
    if (
        objective.best_plans != plain.best_plans
        or objective.best_costs != plain.best_costs
    ):
        raise SystemExit(
            "objective regression: objective-based DP differs from the "
            "engine cycles path"
        )

    model_engine = CostEngine(SimulatedMachine(config))
    composite = model_engine.cost(WeightedObjective.model_combined(alpha=1.0, beta=0.05))
    instruction_model = InstructionCountModel(config.instruction_model)
    miss_model = CacheMissModel.from_machine_config(config, level="l1")
    combined = CombinedModel(alpha=1.0, beta=0.05)
    for n in range(1, 9):
        plans = list(enumerate_plans(n))
        values = composite.batch(plans)
        for plan, value in zip(plans, values):
            expected = combined.value(
                instruction_model.count(plan), miss_model.misses(plan)
            )
            if value != expected:
                raise SystemExit(
                    f"objective regression: composite objective {value} != "
                    f"combined model {expected} on {plan}"
                )
    if model_engine.measured != 0:
        raise SystemExit(
            "objective regression: model objective performed "
            f"{model_engine.measured} hardware measurements"
        )


def check_service() -> None:
    """The campaign service must dedupe exactly and add near-zero overhead.

    Three gates on the multi-tenant measurement service (DP n=10,
    Opteron-like, noise-free):

    * eight concurrent connected sessions running the same DP search execute
      **zero** duplicate ``(machine_hash, plan_key, noise_seed)`` units —
      counter-verified at the backend, not inferred from stats — and exactly
      as many real measurements as ONE serial engine-backed session;
    * every fan-out result is bit-identical to the serial session's;
    * a cold service-mediated DP stays within 20% of the direct
      :class:`CostEngine` (plus a small absolute grace for thread-scheduling
      jitter): the queue/dispatch layer must be thin.
    """
    import threading

    from repro.machine.configs import opteron_like
    from repro.machine.machine import SimulatedMachine
    from repro.runtime.backends import BatchedBackend
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.service import CampaignService
    from repro.runtime.session import Session, session
    from repro.runtime.store import MemoryStore, machine_config_hash
    from repro.search.dp import dp_search
    from repro.wht.encoding import plan_key

    config = opteron_like(noise_sigma=0.0).config

    class CountingBackend:
        name = "counting"

        def __init__(self):
            self.inner = BatchedBackend()
            self.lock = threading.Lock()
            self.executed = []

        def measure_units(self, machine, units):
            with self.lock:
                digest = machine_config_hash(machine.config)
                self.executed.extend(
                    (digest, plan_key(unit.plan), unit.noise_seed)
                    for unit in units
                )
            return self.inner.measure_units(machine, units)

    counting = CountingBackend()
    with CampaignService(backend=counting, workers=4) as service:
        sessions = [Session.connect(service, machine=config) for _ in range(8)]
        results = [None] * len(sessions)

        def run(index):
            results[index] = sessions[index].search(10)

        threads = [
            threading.Thread(target=run, args=(index,))
            for index in range(len(sessions))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if service.stats().failures:
            raise SystemExit("service regression: worker failures during fan-out")

    if len(set(counting.executed)) != len(counting.executed):
        raise SystemExit(
            "service dedup regression: duplicate unit executions across "
            "concurrent sessions"
        )
    serial = session(machine=config)
    reference = serial.search(10, use_engine=True)
    for result in results:
        if (
            str(result.best_plan) != str(reference.best_plan)
            or result.best_cost != reference.best_cost
        ):
            raise SystemExit(
                "service exactness regression: fan-out DP differs from the "
                "serial session"
            )
    if len(counting.executed) != serial.cost_engine().measured:
        raise SystemExit(
            f"service dedup regression: 8 sessions executed "
            f"{len(counting.executed)} units, one serial session needs "
            f"{serial.cost_engine().measured}"
        )

    # Overhead gate: best-of-three cold runs on each path.
    def time_direct():
        engine = CostEngine(SimulatedMachine(config), store=MemoryStore())
        start = time.perf_counter()
        dp_search(10, engine)
        return time.perf_counter() - start

    def time_service():
        with CampaignService(workers=2) as fresh:
            client = fresh.client(config)
            start = time.perf_counter()
            dp_search(10, client)
            return time.perf_counter() - start

    time_direct(), time_service()  # warmup
    direct = min(time_direct() for _ in range(3))
    mediated = min(time_service() for _ in range(3))
    if mediated > direct * 1.2 + 0.3:
        raise SystemExit(
            f"service overhead regression: service-mediated DP took "
            f"{mediated:.3f} s > 1.2x the direct engine's {direct:.3f} s "
            f"(+0.3 s grace)"
        )


def check_faults() -> None:
    """Fault injection must be free when idle and harmless when active.

    Three gates on the robustness layer (DESIGN.md §12):

    * a **zero-rate** :class:`FaultyBackend` adds < 5% overhead (plus a
      small absolute grace) to a cold engine-backed DP — the injection
      hooks must cost nothing on the clean path;
    * a clean service run schedules zero retries and quarantines nothing —
      the failure discipline must not fire without failures;
    * a chaotic run (~20% backend failures, torn store tails, the
      fault-free best plan poisoned) through a fallback-armed session is
      **bit-identical** to the fault-free serial search, with the poison
      batch dead-lettered.
    """
    from repro.machine.configs import opteron_like, tiny_machine_config
    from repro.machine.machine import SimulatedMachine
    from repro.runtime.backends import BatchedBackend
    from repro.runtime.cost_engine import CostEngine
    from repro.runtime.faults import FaultPlan, FaultSpec, FaultyBackend, FaultyStore
    from repro.runtime.service import CampaignService
    from repro.runtime.session import Session, session
    from repro.runtime.store import MemoryStore
    from repro.search.dp import dp_search
    from repro.wht.encoding import plan_key

    # Clean-service discipline gate: no failures -> no retry machinery.
    config = tiny_machine_config()
    with CampaignService(workers=2) as service:
        Session.connect(service, machine=config).search(10, use_engine=True)
        stats = service.stats()
        if stats.retries or stats.failures or stats.quarantined:
            raise SystemExit(
                f"fault discipline regression: clean run scheduled "
                f"retries={stats.retries} failures={stats.failures} "
                f"quarantined={stats.quarantined}"
            )

    # Chaos correctness gate: injected faults never change an answer.
    reference = session(machine=config).search(12, use_engine=True)
    fplan = FaultPlan(
        seed=0,
        backend=FaultSpec(error_rate=0.15, crash_rate=0.08),
        store=FaultSpec(error_rate=0.04, torn_tail_rate=0.15),
        poison_plans=[plan_key(reference.best_plan)],
    )
    with CampaignService(
        store=FaultyStore(MemoryStore(), fplan),
        backend=FaultyBackend(BatchedBackend(), fplan),
        workers=3,
        max_attempts=6,
        backoff_base=0.002,
        backoff_cap=0.05,
    ) as chaotic_service:
        chaotic = Session.connect(chaotic_service, machine=config, fallback=True)
        result = chaotic.search(12, use_engine=True)
        if (
            str(result.best_plan) != str(reference.best_plan)
            or result.best_cost != reference.best_cost
        ):
            raise SystemExit(
                "chaos exactness regression: faulty search differs from the "
                "fault-free serial search"
            )
        if not any(
            plan_key(reference.best_plan) in entry.plan_keys
            for entry in chaotic_service.quarantined()
        ):
            raise SystemExit(
                "chaos quarantine regression: poison batch was not dead-lettered"
            )
        if fplan.injected() == 0:
            raise SystemExit("chaos vacuity regression: no faults were injected")

    # Clean-path overhead gate: a zero-rate wrapper must be free.
    perf_config = opteron_like(noise_sigma=0.0).config

    def time_engine(make_backend):
        engine = CostEngine(
            SimulatedMachine(perf_config), backend=make_backend(), store=MemoryStore()
        )
        start = time.perf_counter()
        dp_search(10, engine)
        return time.perf_counter() - start

    def wrapped():
        return FaultyBackend(BatchedBackend(), FaultPlan(seed=0))

    time_engine(BatchedBackend), time_engine(wrapped)  # warmup
    clean = min(time_engine(BatchedBackend) for _ in range(3))
    faulty = min(time_engine(wrapped) for _ in range(3))
    if faulty > clean * 1.05 + 0.05:
        raise SystemExit(
            f"fault overhead regression: zero-rate FaultyBackend DP took "
            f"{faulty:.3f} s > 1.05x the clean backend's {clean:.3f} s "
            f"(+0.05 s grace)"
        )


def check_transport() -> None:
    """The socket transport must be exact, dedup-clean and thin.

    Three gates on the multi-host transport layer (DESIGN.md §13, DP n=12,
    Opteron-like, noise-free):

    * a remote DP search over loopback TCP is **bit-identical** to the
      in-process service-mediated search;
    * the remote run executes **zero** duplicate or additional units
      (counter-verified at the backend): request-id idempotency and the
      service's key-level dedup hold across the wire;
    * a cold loopback-TCP DP stays within 30% of the in-process service
      client (plus a small absolute grace): frames, not friction.
    """
    import threading

    from repro.machine.configs import opteron_like
    from repro.runtime.backends import BatchedBackend
    from repro.runtime.service import CampaignService
    from repro.runtime.store import machine_config_hash
    from repro.runtime.transport import RemoteServiceClient, serve_tcp
    from repro.search.dp import dp_search
    from repro.wht.encoding import plan_key

    config = opteron_like(noise_sigma=0.0).config

    class CountingBackend:
        name = "counting"

        def __init__(self):
            self.inner = BatchedBackend()
            self.lock = threading.Lock()
            self.executed = []

        def measure_units(self, machine, units):
            with self.lock:
                digest = machine_config_hash(machine.config)
                self.executed.extend(
                    (digest, plan_key(unit.plan), unit.noise_seed)
                    for unit in units
                )
            return self.inner.measure_units(machine, units)

    counting = CountingBackend()
    with CampaignService(backend=counting, workers=2) as service:
        reference = dp_search(12, service.client(config))
        baseline_units = len(counting.executed)
        with serve_tcp(service) as server:
            client = RemoteServiceClient(server.url, config)
            remote = dp_search(12, client)
            client.close()

    if (
        remote.best_plans != reference.best_plans
        or remote.best_costs != reference.best_costs
    ):
        raise SystemExit(
            "transport exactness regression: remote DP differs from the "
            "in-process service DP"
        )
    if len(set(counting.executed)) != len(counting.executed):
        raise SystemExit(
            "transport dedup regression: duplicate unit executions via the wire"
        )
    if len(counting.executed) != baseline_units:
        raise SystemExit(
            f"transport dedup regression: the remote search re-executed "
            f"{len(counting.executed) - baseline_units} already-measured units"
        )

    # Overhead gate: best-of-three cold runs on each path.
    def time_inprocess():
        with CampaignService(workers=2) as fresh:
            client = fresh.client(config)
            start = time.perf_counter()
            dp_search(12, client)
            return time.perf_counter() - start

    def time_remote():
        with CampaignService(workers=2) as fresh:
            with serve_tcp(fresh) as server:
                client = RemoteServiceClient(server.url, config)
                start = time.perf_counter()
                dp_search(12, client)
                elapsed = time.perf_counter() - start
                client.close()
            return elapsed

    time_inprocess(), time_remote()  # warmup
    inprocess = min(time_inprocess() for _ in range(3))
    remote_time = min(time_remote() for _ in range(3))
    if remote_time > inprocess * 1.3 + 0.3:
        raise SystemExit(
            f"transport overhead regression: loopback-TCP DP took "
            f"{remote_time:.3f} s > 1.3x the in-process service's "
            f"{inprocess:.3f} s (+0.3 s grace)"
        )


def check_fleet() -> None:
    """The fleet layer must be exact, dedup-clean and thin.

    Three gates on the multi-server fleet (DESIGN.md §15, DP n=12,
    Opteron-like, noise-free):

    * a DP search striped over a **3-member loopback fleet** sharing one
      record space is **bit-identical** to a single-server remote search;
    * the fleet run executes **zero** duplicate units across every
      member's backend (rendezvous striping plus shared-store dedup);
    * a cold 3-member fleet DP stays within 35% of the single-server
      remote DP (plus a small absolute grace): striping, not friction.
    """
    import shutil
    import tempfile
    import threading

    from repro.machine.configs import opteron_like
    from repro.runtime.backends import BatchedBackend
    from repro.runtime.fleet import FleetClient
    from repro.runtime.service import CampaignService
    from repro.runtime.sharded_store import ShardedRecordStore
    from repro.runtime.store import machine_config_hash
    from repro.runtime.transport import RemoteServiceClient, serve_tcp
    from repro.search.dp import dp_search
    from repro.wht.encoding import plan_key

    config = opteron_like(noise_sigma=0.0).config

    class CountingBackend:
        name = "counting"

        def __init__(self):
            self.inner = BatchedBackend()
            self.lock = threading.Lock()
            self.executed = []

        def measure_units(self, machine, units):
            with self.lock:
                digest = machine_config_hash(machine.config)
                self.executed.extend(
                    (digest, plan_key(unit.plan), unit.noise_seed)
                    for unit in units
                )
            return self.inner.measure_units(machine, units)

    class Fleet:
        def __init__(self, store_dir, backends=None):
            self.services = [
                CampaignService(
                    store=ShardedRecordStore(store_dir, auto_compact=None),
                    backend=backends[i] if backends else BatchedBackend(),
                    workers=2,
                    shared_store=True,
                )
                for i in range(3)
            ]
            self.servers = [serve_tcp(service) for service in self.services]
            self.urls = [server.url for server in self.servers]
            for server in self.servers:
                server.join_fleet(self.urls, self_url=server.url)

        def close(self):
            for server in self.servers:
                server.close()
            for service in self.services:
                service.shutdown()

    workdir = Path(tempfile.mkdtemp(prefix="repro-fleet-perf-"))
    try:
        with CampaignService(workers=2) as single:
            with serve_tcp(single) as server:
                client = RemoteServiceClient(server.url, config)
                reference = dp_search(12, client)
                client.close()

        countings = [CountingBackend() for _ in range(3)]
        fleet = Fleet(workdir / "exactness", countings)
        try:
            client = FleetClient(fleet.urls, config)
            striped = dp_search(12, client)
            client.close()
        finally:
            fleet.close()

        if (
            striped.best_plans != reference.best_plans
            or striped.best_costs != reference.best_costs
        ):
            raise SystemExit(
                "fleet exactness regression: 3-member fleet DP differs from "
                "the single-server remote DP"
            )
        executed = [unit for counting in countings for unit in counting.executed]
        if len(set(executed)) != len(executed):
            raise SystemExit(
                "fleet dedup regression: duplicate unit executions across members"
            )
        if sum(1 for counting in countings if counting.executed) < 2:
            raise SystemExit(
                "fleet striping regression: the search did not stripe over "
                "at least two members"
            )

        # Overhead gate: best-of-three cold runs on each path.
        def time_single():
            with CampaignService(workers=2) as fresh:
                with serve_tcp(fresh) as server:
                    client = RemoteServiceClient(server.url, config)
                    start = time.perf_counter()
                    dp_search(12, client)
                    elapsed = time.perf_counter() - start
                    client.close()
                return elapsed

        def time_fleet():
            time_fleet.runs += 1
            fresh = Fleet(workdir / f"overhead-{time_fleet.runs}")
            try:
                client = FleetClient(fresh.urls, config)
                start = time.perf_counter()
                dp_search(12, client)
                elapsed = time.perf_counter() - start
                client.close()
            finally:
                fresh.close()
            return elapsed

        time_fleet.runs = 0
        time_single(), time_fleet()  # warmup
        single_time = min(time_single() for _ in range(3))
        fleet_time = min(time_fleet() for _ in range(3))
        if fleet_time > single_time * 1.35 + 0.3:
            raise SystemExit(
                f"fleet overhead regression: 3-member fleet DP took "
                f"{fleet_time:.3f} s > 1.35x the single-server remote's "
                f"{single_time:.3f} s (+0.3 s grace)"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def check_suite() -> None:
    """The declarative suite runner's resume must be real and must be fast.

    Three gates on the suite subsystem (DESIGN.md §14, the committed CI spec
    ``benchmarks/suites/ci.json`` over a fresh on-disk store):

    * the cold run completes every unit and actually measures (vacuity
      check);
    * a warm re-run of the same spec against the same store + manifest
      performs **zero** new measurements and skips every unit;
    * the warm run is at least 10x faster than the cold run — resume must
      short-circuit the work, not redo it quietly from caches.
    """
    import shutil
    import tempfile

    from repro.suite import SuiteRun, load_spec

    spec = load_spec(str(Path(__file__).resolve().parent / "suites" / "ci.json"))
    workdir = tempfile.mkdtemp(prefix="repro-suite-perf-")
    try:
        store = str(Path(workdir) / "campaigns")
        artifacts = str(Path(workdir) / "artifacts")

        start = time.perf_counter()
        cold = SuiteRun(spec, store=store, artifacts=artifacts).run()
        cold_seconds = time.perf_counter() - start
        if not cold.ok:
            raise SystemExit(
                f"suite regression: cold run failed units: "
                f"{[r.unit_id for r in cold.failed]}"
            )
        if cold.total_measured == 0:
            raise SystemExit("suite vacuity regression: cold run measured nothing")

        start = time.perf_counter()
        warm = SuiteRun(spec, store=store, artifacts=artifacts).run()
        warm_seconds = time.perf_counter() - start
        if not warm.ok:
            raise SystemExit(
                f"suite regression: warm run failed units: "
                f"{[r.unit_id for r in warm.failed]}"
            )
        if warm.total_measured != 0:
            raise SystemExit(
                f"suite resume regression: warm re-run performed "
                f"{warm.total_measured} new measurements (expected 0)"
            )
        if len(warm.skipped) != len(warm.results):
            raise SystemExit(
                f"suite resume regression: warm re-run skipped only "
                f"{len(warm.skipped)} of {len(warm.results)} units"
            )
        if warm_seconds > cold_seconds / 10.0:
            raise SystemExit(
                f"suite resume perf regression: warm run took "
                f"{warm_seconds:.3f} s > 1/10 of the cold run's "
                f"{cold_seconds:.3f} s"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current machine's numbers into BENCH_substrate.json",
    )
    args = parser.parse_args()

    check_exactness()
    print("exactness: streaming pipeline matches eager reference")
    check_batch_identity()
    print(
        "batch identity: cross-plan fused prepare_batch matches the eager "
        "reference on the enumerated space and random plans"
    )
    check_search_budget()
    print(
        "search budget: engine DP bit-identical to scalar, cold run measures "
        "each candidate once, resume measures nothing, batch models exact"
    )
    check_multi_metric()
    print(
        "multi-metric: one measurement populates every counter metric, "
        "objective DP bit-identical to the cycles path, composite objective "
        "matches the combined model over the full n <= 8 space"
    )
    check_service()
    print(
        "service: 8 concurrent sessions execute zero duplicate measurements, "
        "fan-out DP bit-identical to the serial session, cold service "
        "overhead within 20% of the direct engine"
    )
    check_faults()
    print(
        "faults: clean run fires no retry machinery, chaotic fallback search "
        "bit-identical with poison quarantined, zero-rate injection hooks "
        "within 5% of the clean backend"
    )
    check_transport()
    print(
        "transport: loopback-TCP DP bit-identical to the in-process service "
        "with zero duplicate or re-executed units, remote overhead within "
        "30% of the service client"
    )
    check_fleet()
    print(
        "fleet: 3-member loopback fleet DP bit-identical to the single-server "
        "remote with zero duplicate units across members, fleet overhead "
        "within 35% of the single-server remote"
    )
    check_suite()
    print(
        "suite: cold CI-spec run completes and measures, warm re-run against "
        "the same store performs zero measurements, skips every unit, and is "
        ">= 10x faster"
    )

    seconds, peak, stats = run_smoke()
    name = f"prepare_n{SMOKE_SIZE}_opteron"
    print(
        f"{name}: {seconds:.3f} s, peak {peak / 1e6:.1f} MB, "
        f"l1_misses={stats.l1_misses}, l2_misses={stats.l2_misses}"
    )

    if args.write_baseline:
        baseline = {
            "note": (
                "Substrate perf baseline; indicative numbers from the machine "
                "below, checked by benchmarks/perf_smoke.py with wide slack."
            ),
            "machine": {
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "recorded": {
                name: {"seconds": round(seconds, 4), "peak_bytes": peak},
            },
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    failures = []
    if seconds > TIME_BUDGET_SECONDS:
        failures.append(
            f"{name} took {seconds:.2f} s > absolute budget {TIME_BUDGET_SECONDS} s"
        )
    if BASELINE_PATH.exists():
        recorded = json.loads(BASELINE_PATH.read_text())["recorded"].get(name)
        if recorded:
            if seconds > recorded["seconds"] * TIME_SLACK:
                failures.append(
                    f"{name} took {seconds:.2f} s > {TIME_SLACK}x baseline "
                    f"{recorded['seconds']} s"
                )
            if peak > recorded["peak_bytes"] * MEMORY_SLACK:
                failures.append(
                    f"{name} peaked at {peak} B > {MEMORY_SLACK}x baseline "
                    f"{recorded['peak_bytes']} B"
                )
    else:
        print("no BENCH_substrate.json baseline; absolute budget only")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("perf smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
