"""Figure 9 — correlation of cycles with alpha*I + beta*M over the (alpha, beta) grid.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
The paper sweeps both coefficients from 0 to 1 in steps of 0.05 and reports a
maximum correlation of 0.92 at (1.00, 0.05) for size 2^18, up from 0.77
(instructions alone) and 0.66 (misses alone).  The reproduced optimum's
*ratio* beta/alpha reflects the simulated machine's per-miss cycle cost; see
EXPERIMENTS.md for the discussion of why the paper's literal (1.00, 0.05) is
only meaningful up to a normalisation it does not specify.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments import paper_values
from repro.experiments.report import render_surface


def test_figure9_alphabeta_correlation_surface(benchmark, suite_run):
    unit = suite_unit(suite_run, "figure9", benchmark)
    surface = unit.figure
    print()
    print(render_surface(surface, "Figure 9: correlation of cycles with alpha*I + beta*M"))
    print(
        "paper reports max rho = "
        f"{paper_values.PAPER_RHO_LARGE_COMBINED:.2f} at "
        f"(alpha, beta) = ({paper_values.PAPER_BEST_ALPHA:.2f}, {paper_values.PAPER_BEST_BETA:.2f})"
    )

    rho_instructions = unit.artifact["rho_instructions"]
    rho_misses = unit.artifact["rho_misses"]
    alpha, beta, rho = surface.best
    print(
        f"reproduced: rho_I = {rho_instructions:.3f}, rho_M = {rho_misses:.3f}, "
        f"rho_combined = {rho:.3f} at alpha={alpha:.2f}, beta={beta:.2f}"
    )

    # The combined model restores a correlation at least as strong as either
    # individual model, and close to the in-cache instruction correlation.
    assert rho >= rho_instructions
    assert rho >= rho_misses
    assert rho > 0.85
    assert beta > 0.0  # misses genuinely contribute at the large size
