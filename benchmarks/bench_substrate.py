"""Micro-benchmarks of the substrate components.

These are conventional pytest-benchmark timings (many rounds) of the kernels
everything else is built from: the plan interpreter, the vectorised cache
simulators, trace generation (eager and streaming), the analytic models and
the RSU sampler.  They are the numbers to watch when optimising the
simulator itself.

Substrate-level benchmarks additionally record the tracemalloc peak of one
run in ``benchmark.extra_info["peak_bytes"]`` (so ``--benchmark-json``
output captures memory alongside time), and ``benchmarks/perf_smoke.py``
checks the headline numbers against the committed ``BENCH_substrate.json``
baseline in CI.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.machine.cache import (
    CacheConfig,
    DirectMappedCache,
    NWayLRUCache,
    SetAssociativeLRUCache,
    TwoWayLRUCache,
)
from repro.machine.configs import opteron_like
from repro.machine.trace import stream_line_chunks, trace_from_nests
from repro.models.cache_misses import CacheMissModel
from repro.models.instruction_count import InstructionCountModel
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.codelets import apply_codelet
from repro.wht.interpreter import PlanInterpreter
from repro.wht.random_plans import RSUSampler
from repro.wht.transform import wht_inplace


def record_peak_memory(benchmark, function, *args, **kwargs):
    """Record one run's tracemalloc peak, then benchmark the call normally.

    The traced run is separate from the timed rounds because tracemalloc
    slows allocation-heavy NumPy code considerably; its peak lands in
    ``benchmark.extra_info["peak_bytes"]``.
    """
    tracemalloc.start()
    function(*args, **kwargs)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    benchmark.extra_info["peak_bytes"] = int(peak)
    return benchmark(function, *args, **kwargs)


@pytest.fixture(scope="module")
def interpreter():
    return PlanInterpreter()


@pytest.fixture(scope="module")
def sample_plan():
    return RSUSampler().sample(12, rng=7)


@pytest.fixture(scope="module")
def sample_trace(interpreter, sample_plan):
    _, nests = interpreter.profile(sample_plan, record_trace=True)
    return trace_from_nests(nests)


def test_bench_wht_inplace_2_to_the_14(benchmark):
    x = np.random.default_rng(0).standard_normal(1 << 14)

    def run():
        work = x.copy()
        wht_inplace(work)
        return work

    benchmark(run)


def test_bench_apply_codelet_size_64(benchmark):
    x = np.random.default_rng(1).standard_normal(1 << 12)
    benchmark(apply_codelet, x, 6, 0, 4)


def test_bench_interpreter_execute_2_to_the_10(benchmark, interpreter):
    plan = right_recursive_plan(10, leaf=4)
    x = np.random.default_rng(2).standard_normal(1 << 10)
    benchmark(interpreter.execute, plan, x)


def test_bench_interpreter_profile_2_to_the_12(benchmark, interpreter, sample_plan):
    benchmark(interpreter.profile, sample_plan, True)


def test_bench_trace_generation_2_to_the_12(benchmark, interpreter, sample_plan):
    _, nests = interpreter.profile(sample_plan, record_trace=True)
    record_peak_memory(benchmark, trace_from_nests, nests)


def test_bench_stream_line_chunks_2_to_the_12(benchmark, interpreter, sample_plan):
    # The streaming expander: blocks -> collapsed line chunks, 64 B lines.
    def run():
        total = 0
        for chunk in stream_line_chunks(
            interpreter.iter_nest_blocks(sample_plan), line_size=64
        ):
            total += chunk.lines.shape[0]
        return total

    record_peak_memory(benchmark, run)


def test_bench_direct_mapped_cache_simulation(benchmark, sample_trace):
    config = CacheConfig(16 * 1024, 64, 1)

    def run():
        return DirectMappedCache(config).simulate(sample_trace.addresses)

    benchmark(run)


def test_bench_two_way_cache_simulation(benchmark, sample_trace):
    config = CacheConfig(16 * 1024, 64, 2)

    def run():
        return TwoWayLRUCache(config).simulate(sample_trace.addresses)

    benchmark(run)


def test_bench_reference_lru_cache_simulation(benchmark, sample_trace):
    # The per-access reference simulator on a reduced trace (what the L2 sees).
    config = CacheConfig(64 * 1024, 64, 16)
    addresses = sample_trace.addresses[:: 16]

    def run():
        return SetAssociativeLRUCache(config).simulate(addresses)

    benchmark(run)


def test_bench_nway_cache_simulation(benchmark, sample_trace):
    # The vectorised 16-way simulator on the same reduced trace as the
    # reference benchmark above, for a direct speedup read-off.
    config = CacheConfig(64 * 1024, 64, 16)
    addresses = sample_trace.addresses[::16]

    def run():
        return NWayLRUCache(config).simulate(addresses)

    benchmark(run)


def test_bench_machine_measure_2_to_the_12(benchmark, machine, sample_plan):
    benchmark(machine.measure, sample_plan)


def test_bench_machine_prepare_streaming_2_to_the_12(benchmark, sample_plan):
    # The full streaming substrate (walker -> chunker -> warm hierarchy) on
    # the paper's Opteron geometry; the headline number of DESIGN.md §3 and
    # the quantity guarded by benchmarks/perf_smoke.py.
    machine = opteron_like(noise_sigma=0.0)
    record_peak_memory(benchmark, machine.prepare, sample_plan)


def test_bench_instruction_model_2_to_the_16(benchmark):
    # Timed with the memo cache warm: this is the per-candidate cost a search
    # strategy pays when scoring plans with the analytic model.
    model = InstructionCountModel()
    plan = right_recursive_plan(16, leaf=8)
    benchmark(model.count, plan)


def test_bench_cache_miss_model_2_to_the_16(benchmark):
    model = CacheMissModel(capacity_elements=2048, line_elements=8, associativity=2)
    plan = iterative_plan(16)
    benchmark(model.misses, plan)


def test_bench_rsu_sampler_2_to_the_13(benchmark):
    sampler = RSUSampler()
    rng = np.random.default_rng(3)
    benchmark(sampler.sample, 13, rng)
