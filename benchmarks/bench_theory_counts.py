"""Section 2 — size of the algorithm space and instruction-count extremes.

The paper motivates model-based pruning with the ~O(7^n) growth of the WHT
algorithm family.  This benchmark regenerates the exact counts, the growth
ratios and the extreme instruction counts (the quantities [5] analyses).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments.report import render_theory_table
from repro.models.theory import rsu_instruction_moments, space_growth_ratios


def test_theory_space_size_table(benchmark, suite):
    table = run_once(benchmark, suite.theory_summary, 12)
    print()
    print(render_theory_table(table))
    ratios = space_growth_ratios(20)
    print(f"growth ratio at n=20: {ratios[-1]:.3f} (approaches ~7)")
    moments = rsu_instruction_moments(10)
    print(
        f"RSU instruction-count moments at n=10: mean={moments.mean:.4g}, "
        f"std={moments.std:.4g} (cv={moments.coefficient_of_variation:.3f})"
    )

    rows = table.as_rows()
    counts = [row[1] for row in rows]
    # Strictly growing, and growing faster than 4^n but no faster than 7^n.
    assert all(b > a for a, b in zip(counts, counts[1:]))
    assert all(4.0 <= b / a <= 7.2 for a, b in zip(counts[4:], counts[5:]))
    # The instruction-count extremes bracket the RSU mean at every tabulated size.
    for row in rows:
        _, _, _, min_count, max_count, _ = row
        if row[0] >= 2:
            assert min_count < max_count
    assert rows[9][3] <= moments.mean <= rows[9][4]  # row for n = 10
