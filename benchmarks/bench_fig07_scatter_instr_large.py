"""Figure 7 — instructions vs cycles scatter, large size (paper rho = 0.77).

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``);
the comparison against Figure 6 reuses the unit the figure-6 benchmark built
out of the same suite run.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments import paper_values
from repro.experiments.report import render_scatter_figure


def test_figure7_scatter_instructions_vs_cycles_large(benchmark, suite_run):
    unit = suite_unit(suite_run, "figure7", benchmark)
    data = unit.figure
    print()
    print(render_scatter_figure(data, "Figure 7: instructions vs cycles (large size)"))
    print(f"paper reports rho = {paper_values.PAPER_RHO_LARGE_INSTRUCTIONS:.2f}")

    small = suite_unit(suite_run, "figure6").figure
    # Out of cache the instruction correlation is still positive but weaker
    # than in cache — the drop is the point of the figure.
    assert 0.0 < data.correlation < small.correlation
    # The left recursive algorithm is an extreme point at the large size (the
    # paper notes it falls outside the plotted range): its cycle count exceeds
    # almost the entire random sample.
    left_cycles = data.references["left"][1]
    print(f"left recursive outside sample range: {data.reference_outside_range('left')}")
    assert left_cycles > unit.artifact["y_p95"]
