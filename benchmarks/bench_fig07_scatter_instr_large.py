"""Figure 7 — instructions vs cycles scatter for the large size (paper rho = 0.77)."""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import paper_values
from repro.experiments.report import render_scatter_figure


def test_figure7_scatter_instructions_vs_cycles_large(benchmark, suite):
    data = run_once(benchmark, suite.figure7)
    print()
    print(render_scatter_figure(data, "Figure 7: instructions vs cycles (large size)"))
    print(f"paper reports rho = {paper_values.PAPER_RHO_LARGE_INSTRUCTIONS:.2f}")

    small = suite.figure6()
    # Out of cache the instruction correlation is still positive but weaker
    # than in cache — the drop is the point of the figure.
    assert 0.0 < data.correlation < small.correlation
    # The left recursive algorithm is an extreme point at the large size (the
    # paper notes it falls outside the plotted range): its cycle count exceeds
    # almost the entire random sample.
    import numpy as np

    left_cycles = data.references["left"][1]
    print(f"left recursive outside sample range: {data.reference_outside_range('left')}")
    assert left_cycles > np.percentile(suite.large_table().cycles, 95)
