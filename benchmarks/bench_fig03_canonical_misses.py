"""Figure 3 — cache-miss ratio (log10) of canonical algorithms to the best plan.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
The paper's reading: the iterative algorithm has the fewest misses until the
L1 boundary; beyond it the iterative algorithm no longer has the fewest misses
(the contiguous right recursive algorithm localises better).
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments.report import render_ratio_figure


def test_figure3_cache_miss_ratio_series(benchmark, suite_run, machine):
    sweep = suite_unit(suite_run, "figure3", benchmark).figure
    print()
    print(
        render_ratio_figure(
            sweep, "l1_misses", "Figure 3: log10 cache-miss ratio canonical/best", log10=True
        )
    )

    l1_boundary = machine.config.l1_capacity_exponent()
    iterative = sweep.metric("iterative", "l1_misses")
    right = sweep.metric("right", "l1_misses")
    left = sweep.metric("left", "l1_misses")

    for index, n in enumerate(sweep.sizes):
        if n <= l1_boundary:
            # Inside L1 every plan takes the same cold misses.
            assert iterative[index] == right[index] == left[index], n
    beyond = [i for i, n in enumerate(sweep.sizes) if n > l1_boundary + 1]
    # Beyond the L1 boundary the iterative algorithm is no longer the one with
    # the fewest misses (the paper's observation at n = 14).
    assert all(right[i] < iterative[i] for i in beyond)
