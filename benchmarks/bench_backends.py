"""Execution-backend throughput: serial vs multiprocess vs batched campaigns.

Times one small-size RSU campaign through each
:class:`repro.runtime.backends.ExecutionBackend` with caching disabled, so the
numbers compare pure execution strategies on identical work units.  All three
backends produce bit-identical tables (asserted here against the serial
reference), so the only thing that varies is throughput:

* ``serial`` is the baseline single-loop execution;
* ``multiprocess`` pays pool start-up and per-unit IPC, and wins once the
  campaign is large enough and more than one core is available
  (``REPRO_SAMPLE_COUNT=2000 pytest benchmarks/bench_backends.py`` to see the
  crossover);
* ``batched`` deduplicates the deterministic prepare step across repeated
  plans — the RSU distribution re-draws common shapes frequently at small
  sizes, so its advantage grows with the sample count.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import run_once

from repro.runtime.backends import BatchedBackend, MultiprocessBackend, SerialBackend
from repro.runtime.campaigns import run_campaign
from repro.runtime.store import NullStore

BACKENDS = {
    "serial": SerialBackend,
    "multiprocess": MultiprocessBackend,
    "batched": BatchedBackend,
}


@pytest.fixture(scope="module")
def reference_table(machine, scale):
    """The serial-backend table every other backend must reproduce exactly."""
    return run_campaign(
        machine,
        scale.small_size,
        scale.sample_count,
        seed=scale.seed,
        store=NullStore(),
    )


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
def test_campaign_backend_throughput(benchmark, machine, scale, reference_table, backend_name):
    backend = BACKENDS[backend_name]()
    table = run_once(
        benchmark,
        run_campaign,
        machine,
        scale.small_size,
        scale.sample_count,
        seed=scale.seed,
        backend=backend,
        store=NullStore(),
    )
    assert table.plans == reference_table.plans
    for name in table.columns:
        assert np.array_equal(table.columns[name], reference_table.columns[name])
    print(
        f"\n{backend_name}: {len(table)} samples of 2^{scale.small_size} "
        f"on {machine.config.name!r}, bit-identical to serial"
    )
