"""Section 4 headline numbers — the correlation table.

Reproduces all four of the paper's quoted correlation coefficients (0.96,
0.77, 0.66, 0.92 on the Opteron) on the scaled simulated machine and checks
the structural ordering the paper's argument rests on.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.experiments import paper_values
from repro.experiments.report import render_correlation_table


def test_correlation_table(benchmark, suite):
    table = run_once(benchmark, suite.correlation_summary)
    print()
    print(
        render_correlation_table(
            table,
            paper={
                "rho_small_instructions": paper_values.PAPER_RHO_SMALL_INSTRUCTIONS,
                "rho_large_instructions": paper_values.PAPER_RHO_LARGE_INSTRUCTIONS,
                "rho_large_misses": paper_values.PAPER_RHO_LARGE_MISSES,
                "rho_large_combined": paper_values.PAPER_RHO_LARGE_COMBINED,
            },
        )
    )

    assert table.satisfies_paper_ordering()
    assert table.rho_small_instructions > 0.9
    assert table.rho_large_instructions < table.rho_small_instructions
    assert table.rho_large_combined > 0.85
