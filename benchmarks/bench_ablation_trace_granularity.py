"""Ablation — trace granularity (consecutive-line collapsing).

The memory hierarchy collapses runs of consecutive accesses to the same cache
line before simulation; the collapse preserves miss counts exactly (proved in
the unit tests) while shortening the simulated trace.  This ablation measures
the speed difference and reports the compression factor on a realistic plan.
"""

from __future__ import annotations

import pytest

from repro.machine.cache import CacheConfig, TwoWayLRUCache
from repro.machine.trace import collapse_consecutive, trace_from_nests
from repro.wht.interpreter import PlanInterpreter
from repro.wht.random_plans import RSUSampler


@pytest.fixture(scope="module")
def trace():
    plan = RSUSampler().sample(13, rng=17)
    _, nests = PlanInterpreter().profile(plan, record_trace=True)
    return trace_from_nests(nests)


CONFIG = CacheConfig(16 * 1024, 64, 2)


def test_ablation_full_trace_simulation(benchmark, trace):
    def run():
        return int(TwoWayLRUCache(CONFIG).simulate(trace.addresses).sum())

    misses = benchmark(run)
    assert misses > 0


def test_ablation_collapsed_trace_simulation(benchmark, trace):
    lines = trace.addresses >> CONFIG.offset_bits
    collapsed, removed = collapse_consecutive(lines)
    collapsed_addresses = collapsed << CONFIG.offset_bits
    compression = trace.accesses / collapsed.shape[0]
    print(
        f"\ntrace length {trace.accesses} -> {collapsed.shape[0]} "
        f"({compression:.2f}x compression, {removed} guaranteed hits removed)"
    )

    def run():
        return int(TwoWayLRUCache(CONFIG).simulate(collapsed_addresses).sum())

    collapsed_misses = benchmark(run)
    full_misses = int(TwoWayLRUCache(CONFIG).simulate(trace.addresses).sum())
    assert collapsed_misses == full_misses
    # How much the collapse shrinks the trace depends on how many of the
    # plan's leaf passes are unit-stride; even a strided-heavy plan keeps the
    # read/write line pairing, so some compression is always available.
    assert compression > 1.05
