"""Ablation — measurement-noise level of the cycle model.

The cycle model adds multiplicative noise standing in for the run-to-run
variance of real hardware measurements.  This ablation recomputes the headline
correlations of Section 4 with the noise disabled and at twice the default
level, showing how much of the correlation gap is intrinsic (cache behaviour)
versus measurement noise.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.analysis.pearson import pearson_correlation
from repro.experiments.campaign import SampleCampaign
from repro.machine.configs import default_machine
from repro.models.combined import optimize_combined_model
from repro.util.tables import format_table


def test_ablation_cycle_noise_level(benchmark, suite, scale):
    sample_count = max(scale.sample_count // 2, 50)
    n = scale.large_size

    def run():
        rows = []
        for sigma in (0.0, 0.05, 0.10):
            machine = default_machine(noise_sigma=sigma)
            table = SampleCampaign(machine, seed=scale.seed).run(n, sample_count)
            rho_i = pearson_correlation(table.instructions, table.cycles)
            rho_m = pearson_correlation(table.l1_misses, table.cycles)
            _, _, rho_c = optimize_combined_model(
                table.instructions, table.l1_misses, table.cycles
            ).best
            rows.append([sigma, rho_i, rho_m, rho_c])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["noise sigma", "rho(I, cyc)", "rho(M, cyc)", "rho(combined, cyc)"],
            rows,
            title=f"Ablation: cycle-model noise, size 2^{n}, {sample_count} samples",
        )
    )

    noise_free, default, doubled = rows
    # Even with zero measurement noise the instruction-only correlation is
    # imperfect out of cache (the gap is structural: it comes from misses).
    assert noise_free[1] < 0.999
    # More noise can only weaken the correlations.
    assert doubled[1] <= noise_free[1] + 0.02
    assert doubled[3] <= noise_free[3] + 0.02
    # The combined model stays ahead of instructions alone at every noise level.
    for _, rho_i, _, rho_c in rows:
        assert rho_c >= rho_i - 1e-9
