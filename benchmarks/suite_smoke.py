"""CI smoke test: suite sink outputs are transport-independent.

Runs the committed CI-sized spec (``benchmarks/suites/ci.json``) twice —
once through a plain private session and once through a campaign service
behind a loopback-TCP socket transport — into two fresh artifact
directories, then requires every sink file (CSV tables, JSONL tables,
figure-artifact JSON) to be **byte-identical** between the two runs.  The
manifest is excluded from the comparison (it legitimately records different
measurement attribution: the service's engine measures on the server side).

This pins the suite subsystem's core reproducibility claim: the execution
substrate (backend, service, wire) never leaks into the results.

Usage::

    PYTHONPATH=src python benchmarks/suite_smoke.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

SPEC_PATH = Path(__file__).resolve().parent / "suites" / "ci.json"

#: Files excluded from the byte-identity comparison.
EXCLUDED = {"manifest.json"}


def sink_files(directory: Path) -> dict[str, bytes]:
    """Relative path -> content for every sink file under ``directory``."""
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(directory.rglob("*"))
        if path.is_file() and path.name not in EXCLUDED
    }


def run_suite(spec, artifacts: str, connect: str | None = None):
    from repro.runtime.store import MemoryStore
    from repro.suite import SuiteRun

    run = SuiteRun(spec, store=MemoryStore(), artifacts=artifacts, connect=connect)
    result = run.run()
    if not result.ok:
        raise SystemExit(
            f"suite smoke: run failed units: {[r.unit_id for r in result.failed]}"
        )
    if not result.completed:
        raise SystemExit("suite smoke: vacuous run (no unit completed)")
    return result


def main() -> int:
    from repro.runtime.service import CampaignService
    from repro.runtime.transport import serve_tcp
    from repro.suite import load_spec

    spec = load_spec(str(SPEC_PATH))
    workdir = Path(tempfile.mkdtemp(prefix="repro-suite-smoke-"))
    try:
        plain_dir = workdir / "plain"
        tcp_dir = workdir / "tcp"

        plain = run_suite(spec, str(plain_dir))
        with CampaignService(workers=2) as service:
            with serve_tcp(service) as server:
                remote = run_suite(spec, str(tcp_dir), connect=server.url)

        plain_files = sink_files(plain_dir)
        tcp_files = sink_files(tcp_dir)
        if set(plain_files) != set(tcp_files):
            only_plain = sorted(set(plain_files) - set(tcp_files))
            only_tcp = sorted(set(tcp_files) - set(plain_files))
            raise SystemExit(
                f"suite smoke: sink file sets differ "
                f"(plain-only: {only_plain}, tcp-only: {only_tcp})"
            )
        different = [
            name for name, blob in plain_files.items() if tcp_files[name] != blob
        ]
        if different:
            raise SystemExit(
                f"suite smoke: sink outputs differ across transports: {different}"
            )

        print(
            f"suite smoke OK: {len(plain_files)} sink files byte-identical "
            f"between the plain session ({plain.total_measured} measurements) "
            f"and the loopback-TCP service session "
            f"({remote.total_measured} client-side measurements)"
        )
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
