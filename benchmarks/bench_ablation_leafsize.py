"""Ablation — maximum unrolled codelet size available to the DP search.

The paper observes that the DP-best algorithm "utilizes larger base cases
(unrolled code) than used by the canonical algorithms".  This ablation runs
the DP search with the maximum leaf exponent restricted to 1, 2, 4 and 8 and
reports how much performance the larger codelets buy.
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.search.costs import MeasuredCyclesCost
from repro.util.tables import format_table
from repro.wht.dp_search import DPSearch


def test_ablation_dp_max_leaf_size(benchmark, suite):
    machine = suite.machine
    n = min(suite.scale.large_size, 12)

    def run():
        rows = []
        for max_leaf in (1, 2, 4, 8):
            cost = MeasuredCyclesCost(machine)
            searcher = DPSearch(cost, max_leaf=max_leaf, max_children=2)
            result = searcher.search(n)
            best = result.best(n)
            rows.append(
                [
                    max_leaf,
                    result.best_costs[n],
                    max(best.leaf_exponents()),
                    str(best)[:60],
                    cost.evaluations,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["max leaf", "best cycles", "largest leaf used", "best plan", "evaluations"],
            rows,
            title=f"Ablation: DP search vs maximum codelet size, size 2^{n}",
        )
    )

    cycles_by_leaf = {row[0]: row[1] for row in rows}
    # Larger available codelets never hurt and give a clear improvement over
    # the radix-2-only search (the paper's observation about the best plans).
    assert cycles_by_leaf[8] <= cycles_by_leaf[1]
    assert cycles_by_leaf[8] < 0.95 * cycles_by_leaf[1]
    # The unrestricted search actually uses the larger codelets.
    assert rows[-1][2] >= 4
