"""Figure 5 — histograms of cycles, instructions and cache misses (large size).

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
The paper's observation: at size 2^18 the cycle histogram acquires a skew that
the instruction histogram does not have, and attributes it to the skew of the
cache-miss distribution — the first hint that a model of large-size
performance needs both quantities.
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments.report import render_histogram_figure


def test_figure5_large_size_histograms(benchmark, suite_run, scale):
    figure = suite_unit(suite_run, "figure5", benchmark).figure
    print()
    print(render_histogram_figure(figure))

    assert figure.metric_names() == ("cycles", "instructions", "l1_misses")
    assert figure.n == scale.large_size
    cycles = figure.summaries["cycles"]
    instructions = figure.summaries["instructions"]
    misses = figure.summaries["l1_misses"]
    # The miss distribution is strongly asymmetric and contributes shape to the
    # cycle distribution that the instruction distribution alone lacks.
    assert misses.coefficient_of_variation > instructions.coefficient_of_variation
    assert abs(cycles.skewness - instructions.skewness) > 0.0  # shapes no longer identical
