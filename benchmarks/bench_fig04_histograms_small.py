"""Figure 4 — histograms of cycles and instructions for the small (in-L1) size.

Thin wrapper over the committed suite spec (``benchmarks/suites/paper.json``).
The paper bins 10,000 RSU samples of size 2^9 into 50 bins after removing
outer-fence outliers and observes that the cycle and instruction histograms
have essentially the same shape (which is why the instruction count alone
predicts performance well in cache).
"""

from __future__ import annotations

from _bench_utils import suite_unit

from repro.experiments.report import render_histogram_figure


def test_figure4_small_size_histograms(benchmark, suite_run, scale):
    figure = suite_unit(suite_run, "figure4", benchmark).figure
    print()
    print(render_histogram_figure(figure))

    assert figure.metric_names() == ("cycles", "instructions")
    assert figure.n == scale.small_size
    cycles = figure.summaries["cycles"]
    instructions = figure.summaries["instructions"]
    # In cache the two distributions have very similar shape: their skewness
    # agrees to well within one unit and their coefficients of variation are
    # close.
    assert abs(cycles.skewness - instructions.skewness) < 0.75
    assert abs(cycles.coefficient_of_variation - instructions.coefficient_of_variation) < 0.15
