"""Ablation — cache associativity (direct-mapped vs 2-way vs reference LRU).

The published cache-miss analysis ([8]) assumes a direct-mapped cache; the
Opteron's L1 is 2-way.  This ablation measures how much the associativity
choice changes the simulated miss counts of the canonical algorithms and of a
random plan set, and confirms that the vectorised simulators agree exactly
with the reference LRU simulator (correctness is covered by unit tests; here
we also record the timing difference).
"""

from __future__ import annotations

from _bench_utils import run_once

from repro.machine.cache import CacheConfig, make_cache
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.trace import trace_from_nests
from repro.util.tables import format_table
from repro.wht.canonical import canonical_plans
from repro.wht.interpreter import PlanInterpreter
from repro.wht.random_plans import RSUSampler


def _misses_for(plan, associativity, size_bytes=16 * 1024, line_size=64):
    interpreter = PlanInterpreter()
    _, nests = interpreter.profile(plan, record_trace=True)
    trace = trace_from_nests(nests)
    config = CacheConfig(size_bytes, line_size, associativity, name=f"{associativity}-way")
    hierarchy = MemoryHierarchy(config, None)
    return hierarchy.process_trace(trace).l1_misses


def test_ablation_l1_associativity(benchmark, suite):
    n = suite.scale.large_size
    plans = dict(canonical_plans(n))
    plans.update(
        {f"random{i}": RSUSampler().sample(n, rng=100 + i) for i in range(3)}
    )

    def run():
        rows = []
        for name, plan in plans.items():
            direct = _misses_for(plan, 1)
            two_way = _misses_for(plan, 2)
            four_way = _misses_for(plan, 4)
            rows.append([name, direct, two_way, four_way, direct / max(two_way, 1)])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["plan", "direct-mapped", "2-way", "4-way", "DM / 2-way"],
            rows,
            title=f"Ablation: L1 associativity, size 2^{n} (misses per run)",
        )
    )

    by_name = {row[0]: row for row in rows}
    # Higher associativity never increases conflict misses for these traces.
    for name, _, two_way, four_way, _ in rows:
        assert four_way <= two_way * 1.05, name
    # The direct-mapped assumption of [8] over-counts misses for the strided
    # canonical algorithms relative to the Opteron-like 2-way L1.
    assert by_name["left"][1] >= by_name["left"][2]


def test_ablation_vectorised_vs_reference_lru_timing(benchmark):
    plan = RSUSampler().sample(12, rng=5)
    _, nests = PlanInterpreter().profile(plan, record_trace=True)
    trace = trace_from_nests(nests)
    config = CacheConfig(16 * 1024, 64, 2)

    reference_misses = make_cache(config, vectorized=False).simulate(trace.addresses).sum()

    def run():
        return make_cache(config, vectorized=True).simulate(trace.addresses).sum()

    vectorised_misses = benchmark(run)
    assert int(vectorised_misses) == int(reference_misses)
