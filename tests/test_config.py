"""Tests for the experiment-scale configuration."""

import pytest

from repro.config import ExperimentScale, ci_scale, default_scale, paper_scale, scale_from_env


class TestExperimentScale:
    def test_defaults(self):
        scale = default_scale()
        assert scale.small_size == 9
        assert scale.large_size == 13
        assert scale.sample_count >= 100

    def test_paper_scale_matches_paper(self):
        scale = paper_scale()
        assert scale.small_size == 9
        assert scale.large_size == 18
        assert scale.canonical_max_size == 20
        assert scale.sample_count == 10_000

    def test_ci_scale_is_small(self):
        scale = ci_scale()
        assert scale.sample_count <= 100
        assert scale.large_size <= 8

    def test_small_must_be_less_than_large(self):
        with pytest.raises(ValueError):
            ExperimentScale(small_size=10, large_size=10)

    def test_with_samples(self):
        assert default_scale().with_samples(7).sample_count == 7

    def test_describe(self):
        assert "2^9" in default_scale().describe()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ExperimentScale(sample_count=0)


class TestScaleFromEnv:
    def test_no_overrides(self, monkeypatch):
        for name in (
            "REPRO_SMALL_SIZE",
            "REPRO_LARGE_SIZE",
            "REPRO_CANONICAL_MAX_SIZE",
            "REPRO_SAMPLE_COUNT",
            "REPRO_SEED",
        ):
            monkeypatch.delenv(name, raising=False)
        assert scale_from_env() == default_scale()

    def test_overrides_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_COUNT", "123")
        monkeypatch.setenv("REPRO_LARGE_SIZE", "12")
        scale = scale_from_env()
        assert scale.sample_count == 123
        assert scale.large_size == 12

    def test_invalid_override_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_COUNT", "lots")
        with pytest.raises(ValueError):
            scale_from_env()
