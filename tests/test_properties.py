"""Cross-module property-based tests (hypothesis).

These properties tie the layers together: any plan drawn from the RSU
distribution must round-trip through every representation, be computed
correctly by the interpreter, be counted identically by the analytic models,
and produce cache-miss counts bounded by physical invariants of its trace.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheConfig, SetAssociativeLRUCache, make_cache
from repro.machine.configs import tiny_machine
from repro.machine.trace import trace_from_nests
from repro.models.cache_misses import CacheMissModel
from repro.models.instruction_count import analytic_stats, instruction_count
from repro.wht.grammar import parse_plan, plan_to_string
from repro.wht.interpreter import PlanInterpreter
from repro.wht.plan import Plan, Small, Split
from repro.wht.random_plans import random_plan
from repro.wht.transform import apply_plan, random_input, wht_reference

plan_strategy = st.builds(
    random_plan,
    n=st.integers(min_value=1, max_value=8),
    rng=st.integers(0, 10**6),
)


class TestPlanRepresentationProperties:
    @given(plan=plan_strategy)
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, plan):
        assert Plan.from_dict(plan.to_dict()) == plan

    @given(plan=plan_strategy)
    @settings(max_examples=60, deadline=None)
    def test_grammar_round_trip(self, plan):
        assert parse_plan(plan_to_string(plan)) == plan

    @given(plan=plan_strategy)
    @settings(max_examples=60, deadline=None)
    def test_mirror_is_involution_and_preserves_counts(self, plan):
        mirrored = plan.mirrored()
        assert mirrored.mirrored() == plan
        assert mirrored.n == plan.n
        assert sorted(mirrored.leaf_exponents()) == sorted(plan.leaf_exponents())

    @given(plan=plan_strategy)
    @settings(max_examples=60, deadline=None)
    def test_structure_metrics_consistent(self, plan):
        assert plan.num_nodes() >= plan.num_leaves()
        assert sum(leaf.n for leaf in plan.leaves()) >= plan.n  # leaves partition >= once
        assert plan.depth() < plan.num_nodes()


class TestExecutionProperties:
    @given(seed=st.integers(0, 10**5), n=st.integers(min_value=1, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_any_plan_computes_the_wht(self, seed, n):
        plan = random_plan(n, rng=seed)
        x = random_input(n, seed=seed)
        assert np.allclose(apply_plan(plan, x), wht_reference(x))

    @given(plan=plan_strategy)
    @settings(max_examples=40, deadline=None)
    def test_analytic_stats_equal_interpreter_stats(self, plan):
        measured, _ = PlanInterpreter().profile(plan)
        assert analytic_stats(plan).as_dict() == measured.as_dict()

    @given(plan=plan_strategy)
    @settings(max_examples=40, deadline=None)
    def test_arithmetic_work_is_plan_independent(self, plan):
        stats = analytic_stats(plan)
        assert stats.arithmetic_ops == plan.n * plan.size
        assert stats.loads == stats.stores == plan.size * plan.num_leaves()

    @given(plan=plan_strategy)
    @settings(max_examples=30, deadline=None)
    def test_splitting_a_leaf_never_reduces_instruction_count(self, plan):
        # Replacing any leaf of exponent >= 2 by a two-way split of the same
        # exponent adds loop/call overhead while keeping the arithmetic, so the
        # modelled instruction count cannot drop.
        leaves = [leaf for leaf in plan.leaves() if leaf.n >= 2]
        if not leaves:
            return
        target = leaves[0]
        replaced = [False]

        def replace(leaf):
            if leaf is target and not replaced[0]:
                replaced[0] = True
                return Split((Small(1), Small(leaf.n - 1)))
            return leaf

        deeper = plan.map_leaves(replace)
        assert instruction_count(deeper) >= instruction_count(plan)


class TestCacheProperties:
    @given(
        seed=st.integers(0, 10**6),
        size_kb=st.sampled_from([1, 2, 4]),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_misses_bounded_by_accesses_and_footprint(self, seed, size_kb, assoc):
        plan = random_plan(7, rng=seed)
        _, nests = PlanInterpreter().profile(plan, record_trace=True)
        trace = trace_from_nests(nests)
        config = CacheConfig(size_kb * 1024, 64, assoc)
        misses = int(make_cache(config).simulate(trace.addresses).sum())
        cold = trace.footprint_bytes // config.line_size
        assert cold <= misses <= trace.accesses

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_larger_cache_never_misses_more_lru(self, seed):
        # LRU inclusion: doubling the associativity at a fixed set count can
        # only remove misses.
        plan = random_plan(7, rng=seed)
        _, nests = PlanInterpreter().profile(plan, record_trace=True)
        trace = trace_from_nests(nests)
        small = SetAssociativeLRUCache(CacheConfig(1024, 64, 1))
        large = SetAssociativeLRUCache(CacheConfig(2048, 64, 2))
        assert large.simulate(trace.addresses).sum() <= small.simulate(trace.addresses).sum()

    @given(plan=plan_strategy)
    @settings(max_examples=40, deadline=None)
    def test_analytic_miss_model_respects_physical_bounds(self, plan):
        model = CacheMissModel(capacity_elements=64, line_elements=8, associativity=2)
        misses = model.misses(plan)
        cold = -(-plan.size // 8)
        total_line_touches = plan.size * plan.num_leaves()
        assert cold <= misses <= 2 * total_line_touches

    @given(seed=st.integers(0, 10**6), n=st.integers(min_value=4, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_measurement_invariants(self, seed, n):
        machine = tiny_machine(noise_sigma=0.0)
        plan = random_plan(n, rng=seed)
        m = machine.measure(plan)
        assert m.instructions >= m.arithmetic_ops + m.loads + m.stores
        assert m.l1_misses <= m.l1_accesses
        assert m.l2_misses <= m.l1_misses
        assert m.cycles >= m.instructions  # every instruction costs at least a cycle
