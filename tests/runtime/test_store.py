"""Tests for campaign stores and content-addressed keys."""

import dataclasses

import pytest

from repro.machine.cache import CacheConfig
from repro.machine.configs import tiny_machine, tiny_machine_config
from repro.runtime.campaigns import campaign_key, run_campaign
from repro.runtime.store import (
    CampaignKey,
    DiskStore,
    MemoryStore,
    NullStore,
    default_memory_store,
    machine_config_hash,
    resolve_store,
)


class TestMachineConfigHash:
    def test_stable_for_equal_configs(self):
        assert machine_config_hash(tiny_machine_config()) == machine_config_hash(
            tiny_machine_config()
        )

    def test_name_collision_does_not_collide_keys(self):
        """Two machines sharing a name but differing in cache geometry must
        not share cached tables (the historical ``_cache_key`` collision)."""
        base = tiny_machine_config()
        bigger_l1 = dataclasses.replace(
            base, l1=CacheConfig(size_bytes=512, line_size=32, associativity=2, name="L1d")
        )
        assert base.name == bigger_l1.name
        assert machine_config_hash(base) != machine_config_hash(bigger_l1)

    def test_instruction_weights_contribute(self):
        base = tiny_machine_config()
        reweighted = dataclasses.replace(
            base,
            instruction_model=dataclasses.replace(
                base.instruction_model, codelet_call_base=99
            ),
        )
        assert machine_config_hash(base) != machine_config_hash(reweighted)

    def test_noise_level_contributes(self):
        base = tiny_machine_config()
        assert machine_config_hash(base) != machine_config_hash(base.with_noise(0.5))


class TestCampaignKey:
    def test_token_is_filesystem_safe_and_stable(self):
        key = CampaignKey("abc", n=5, count=10, seed=1, max_leaf=8, max_children=None)
        token = key.token()
        assert token == key.token()
        assert "/" not in token and " " not in token

    def test_distinct_settings_distinct_tokens(self):
        key = CampaignKey("abc", n=5, count=10, seed=1, max_leaf=8, max_children=None)
        other = dataclasses.replace(key, seed=2)
        assert key.token() != other.token()

    def test_campaign_key_uses_full_config_hash(self, machine):
        key = campaign_key(machine, 5, 10, seed=1)
        assert key.machine_hash == machine_config_hash(machine.config)


class TestMemoryStore:
    def test_get_put_clear(self, machine):
        store = MemoryStore()
        key = campaign_key(machine, 4, 5, seed=3)
        assert store.get(key) is None
        table = run_campaign(machine, 4, 5, seed=3, store=store)
        assert store.get(key) is table
        store.clear()
        assert store.get(key) is None

    def test_default_memory_store_is_shared(self):
        assert default_memory_store() is default_memory_store()


class TestDiskStore:
    def test_persists_and_reloads(self, tmp_path, machine):
        store = DiskStore(tmp_path / "campaigns")
        table = run_campaign(machine, 4, 6, seed=9, store=store)
        key = campaign_key(machine, 4, 6, seed=9)
        reloaded = store.get(key)
        assert reloaded is not table  # re-read from disk, not memoised
        assert table.equals(reloaded)
        assert list(store.entries())

    def test_fresh_instance_sees_existing_files(self, tmp_path, machine):
        path = tmp_path / "campaigns"
        run_campaign(machine, 4, 6, seed=9, store=DiskStore(path))
        key = campaign_key(machine, 4, 6, seed=9)
        assert DiskStore(path).get(key) is not None

    def test_miss_on_other_machine(self, tmp_path, machine):
        store = DiskStore(tmp_path)
        run_campaign(machine, 4, 6, seed=9, store=store)
        other = tiny_machine(noise_sigma=0.3)
        assert store.get(campaign_key(other, 4, 6, seed=9)) is None

    def test_clear_removes_entries(self, tmp_path, machine):
        store = DiskStore(tmp_path)
        run_campaign(machine, 4, 6, seed=9, store=store)
        store.clear()
        assert store.get(campaign_key(machine, 4, 6, seed=9)) is None

    def test_incompatible_version_is_a_miss(self, tmp_path, machine):
        import json

        store = DiskStore(tmp_path)
        run_campaign(machine, 4, 6, seed=9, store=store)
        key = campaign_key(machine, 4, 6, seed=9)
        file = next(iter(store.entries()))
        payload = json.loads(file.read_text())
        payload["version"] = 999
        file.write_text(json.dumps(payload))
        assert store.get(key) is None

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path, machine):
        store = DiskStore(tmp_path)
        run_campaign(machine, 4, 6, seed=9, store=store)
        key = campaign_key(machine, 4, 6, seed=9)
        file = next(iter(store.entries()))
        file.write_text('{"version": 1, "table": {"n"')  # truncated write
        assert store.get(key) is None
        # and the campaign transparently re-measures and re-stores
        table = run_campaign(machine, 4, 6, seed=9, store=store)
        assert store.get(key) is not None
        assert len(table) == 6

    def test_concurrent_unlink_is_a_miss(self, tmp_path, machine):
        store = DiskStore(tmp_path)
        run_campaign(machine, 4, 6, seed=9, store=store)
        key = campaign_key(machine, 4, 6, seed=9)
        next(iter(store.entries())).unlink()  # e.g. a concurrent clear()
        assert store.get(key) is None


class TestResolveStore:
    def test_memory_resolves_to_shared_store(self):
        assert resolve_store("memory") is default_memory_store()

    def test_none_resolves_to_null(self):
        assert isinstance(resolve_store(None), NullStore)
        assert isinstance(resolve_store("none"), NullStore)

    def test_path_resolves_to_disk(self, tmp_path):
        store = resolve_store(tmp_path / "c")
        assert isinstance(store, DiskStore)

    def test_string_path_resolves_to_disk(self, tmp_path):
        store = resolve_store(str(tmp_path / "c"))
        assert isinstance(store, DiskStore)

    def test_instance_passes_through(self):
        store = MemoryStore()
        assert resolve_store(store) is store

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_store(42)

    def test_bare_string_typo_raises_instead_of_creating_a_directory(self):
        with pytest.raises(ValueError, match="memroy"):
            resolve_store("memroy")  # typo of "memory" must not become a DiskStore
