"""Durability tests for the append-log cost record store.

Covers the three contracts the log format makes: a truncated trailing record
(crash mid-append) loses only itself on reopen, compaction is read-equivalent
to the original log, and pre-append-log single-metric JSON cost tables are
migrated transparently — an engine over a store holding only the old format
resumes with zero re-measurements.
"""

import json

import pytest

from repro.machine.configs import tiny_machine_config
from repro.machine.machine import SimulatedMachine
from repro.runtime.cost_engine import CostEngine
from repro.runtime.store import (
    LOG_FORMAT_VERSION,
    CostLogKey,
    CostTableKey,
    DiskStore,
    MemoryStore,
    NullStore,
    machine_config_hash,
)
from repro.search.costs import MeasuredCyclesCost
from repro.search.dp import dp_search
from repro.wht.encoding import plan_key
from repro.wht.random_plans import random_plan, random_plans

KEY = CostLogKey(machine_hash="abc", seed=3)


def _log_file(store: DiskStore, key: CostLogKey = KEY):
    return store.path / f"{key.token()}.jsonl"


class TestAppendLogBasics:
    def test_append_and_read_roundtrip(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {"small[1]": {"cycles": 2.5}})
        store.append_cost_records(
            KEY, {"small[1]": {"instructions": 7.0}, "small[2]": {"cycles": 9.0}}
        )
        records = store.get_cost_records(KEY)
        assert records == {
            "small[1]": {"cycles": 2.5, "instructions": 7.0},
            "small[2]": {"cycles": 9.0},
        }

    def test_appends_are_appends_not_rewrites(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {f"small[{i}]": {"cycles": float(i)} for i in range(1, 5)})
        size_before = _log_file(store).stat().st_size
        store.append_cost_records(KEY, {"small[5]": {"cycles": 5.0}})
        grown = _log_file(store).stat().st_size - size_before
        # One record appended: the file grows by one line, not by a rewrite.
        assert 0 < grown < size_before

    def test_empty_append_is_a_noop(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {})
        assert not _log_file(store).exists()
        assert store.get_cost_records(KEY) == {}

    def test_keys_partition_logs(self, tmp_path):
        store = DiskStore(tmp_path)
        other = CostLogKey(machine_hash="abc", seed=4)
        store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0}})
        assert store.get_cost_records(other) == {}
        assert KEY.token() != other.token()

    def test_later_record_wins_per_metric(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0, "instructions": 3.0}})
        store.append_cost_records(KEY, {"small[1]": {"cycles": 2.0}})
        record = store.get_cost_records(KEY)["small[1]"]
        assert record == {"cycles": 2.0, "instructions": 3.0}

    def test_memory_store_parity(self):
        store = MemoryStore()
        store.append_cost_records(KEY, {"small[1]": {"cycles": 2.5}})
        store.append_cost_records(KEY, {"small[1]": {"instructions": 7.0}})
        assert store.get_cost_records(KEY) == {
            "small[1]": {"cycles": 2.5, "instructions": 7.0}
        }
        returned = store.get_cost_records(KEY)
        returned["small[1]"]["cycles"] = 99.0  # mutating the copy is safe
        assert store.get_cost_records(KEY)["small[1]"]["cycles"] == 2.5

    def test_null_store_never_retains(self):
        store = NullStore()
        store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0}})
        assert store.get_cost_records(KEY) == {}
        store.compact_cost_records(KEY)


class TestTruncatedTail:
    def test_truncated_trailing_record_keeps_durable_prefix(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0}})
        store.append_cost_records(KEY, {"small[2]": {"cycles": 2.0}})
        file = _log_file(store)
        raw = file.read_text()
        # Simulate a crash mid-append: cut the last record in half.
        file.write_text(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
        records = DiskStore(tmp_path).get_cost_records(KEY)
        assert records == {"small[1]": {"cycles": 1.0}}

    def test_appends_after_a_crash_are_recovered(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0}})
        file = _log_file(store)
        with open(file, "a", encoding="utf-8") as handle:
            handle.write('{"p": "small[2]", "v": {"cyc')  # partial line, no newline
        # The partial tail is ignored on read...
        assert DiskStore(tmp_path).get_cost_records(KEY) == {"small[1]": {"cycles": 1.0}}
        # ...and a later append must NOT glue onto it: the appender
        # terminates the partial line, so only the crashed record is lost.
        fresh = DiskStore(tmp_path)
        fresh.append_cost_records(KEY, {"small[3]": {"cycles": 3.0}})
        assert fresh.get_cost_records(KEY) == {
            "small[1]": {"cycles": 1.0},
            "small[3]": {"cycles": 3.0},
        }
        # Compaction drops the dead partial line for good.
        fresh.compact_cost_records(KEY)
        assert fresh.get_cost_records(KEY) == {
            "small[1]": {"cycles": 1.0},
            "small[3]": {"cycles": 3.0},
        }

    def test_corrupt_line_mid_file_loses_only_itself(self, tmp_path):
        store = DiskStore(tmp_path)
        store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0}})
        with open(_log_file(store), "a", encoding="utf-8") as handle:
            handle.write("###damaged###\n")
        store.append_cost_records(KEY, {"small[2]": {"cycles": 2.0}})
        assert store.get_cost_records(KEY) == {
            "small[1]": {"cycles": 1.0},
            "small[2]": {"cycles": 2.0},
        }

    def test_batches_are_written_as_single_appends(self, tmp_path):
        # Each batch must land whole (one os.write), so two batches can
        # never interleave mid-line; observable contract: every line of the
        # log is independently parseable JSON.
        store = DiskStore(tmp_path)
        big_batch = {f"plan-{i}": {"cycles": float(i)} for i in range(5000)}
        store.append_cost_records(KEY, big_batch)
        store.append_cost_records(KEY, {"tail": {"cycles": -1.0}})
        for line in _log_file(store).read_text().splitlines():
            json.loads(line)
        assert len(store.get_cost_records(KEY)) == 5001

    def test_incompatible_log_version_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        file = _log_file(store)
        file.write_text(
            json.dumps({"version": LOG_FORMAT_VERSION + 1, "key": KEY.as_dict()})
            + "\n"
            + json.dumps({"p": "small[1]", "v": {"cycles": 1.0}})
            + "\n"
        )
        assert store.get_cost_records(KEY) == {}

    def test_garbage_log_file_is_a_miss_not_a_crash(self, tmp_path):
        store = DiskStore(tmp_path)
        _log_file(store).write_text("not json at all\n")
        assert store.get_cost_records(KEY) == {}


class TestCompaction:
    def test_compaction_is_read_equivalent_and_smaller(self, tmp_path):
        store = DiskStore(tmp_path)
        # Many overlapping appends: per-metric updates to the same plans.
        for round_index in range(10):
            store.append_cost_records(
                KEY,
                {
                    f"small[{i}]": {"cycles": float(i), "round": float(round_index)}
                    for i in range(1, 8)
                },
            )
        before = store.get_cost_records(KEY)
        size_before = _log_file(store).stat().st_size
        store.compact_cost_records(KEY)
        assert store.get_cost_records(KEY) == before
        assert _log_file(store).stat().st_size < size_before
        # Compaction is idempotent.
        store.compact_cost_records(KEY)
        assert store.get_cost_records(KEY) == before

    def test_compacting_a_missing_log_is_a_noop(self, tmp_path):
        DiskStore(tmp_path).compact_cost_records(KEY)
        assert not _log_file(DiskStore(tmp_path)).exists()


def _log_lines(store: DiskStore, key: CostLogKey = KEY) -> int:
    """Record lines in the log (excluding the version header)."""
    raw = _log_file(store, key).read_text().strip().splitlines()
    return sum(1 for line in raw if "version" not in json.loads(line))


class TestAutoCompaction:
    def test_off_by_default(self, tmp_path):
        store = DiskStore(tmp_path)
        for _ in range(20):
            store.append_cost_records(KEY, {"small[1]": {"cycles": 1.0}})
        assert _log_lines(store) == 20

    def test_rejects_ratio_below_one(self, tmp_path):
        with pytest.raises(ValueError):
            DiskStore(tmp_path, auto_compact=0.5)

    def test_triggers_when_lines_exceed_the_ratio(self, tmp_path):
        store = DiskStore(tmp_path, auto_compact=3.0)
        # Re-append the same two plans: distinct stays at 2, lines grow.
        records = {"small[1]": {"cycles": 1.0}, "small[2]": {"cycles": 2.0}}
        for _ in range(3):
            store.append_cost_records(KEY, records)
        assert _log_lines(store) == 6  # 6 lines, 2 plans: 6 <= 3.0 * 2 keeps it
        store.append_cost_records(KEY, records)
        # 8 > 3.0 * 2 triggered a compaction down to one line per plan.
        assert _log_lines(store) == 2
        assert store.get_cost_records(KEY) == {
            "small[1]": {"cycles": 1.0},
            "small[2]": {"cycles": 2.0},
        }

    def test_reads_stay_equivalent_across_many_rounds(self, tmp_path):
        store = DiskStore(tmp_path, auto_compact=2.0)
        mirror = DiskStore(tmp_path / "mirror")  # no auto-compaction
        for round_index in range(12):
            batch = {
                f"small[{i}]": {"cycles": float(i * round_index)}
                for i in range(1, 5)
            }
            store.append_cost_records(KEY, batch)
            mirror.append_cost_records(KEY, batch)
        assert store.get_cost_records(KEY) == mirror.get_cost_records(KEY)
        assert _log_lines(store) < _log_lines(mirror)

    def test_counters_seed_from_an_existing_log(self, tmp_path):
        plain = DiskStore(tmp_path)
        records = {"small[1]": {"cycles": 1.0}}
        for _ in range(9):
            plain.append_cost_records(KEY, records)
        # A fresh store over the same directory sees the 9 existing lines and
        # compacts on its very first over-ratio append.
        compacting = DiskStore(tmp_path, auto_compact=4.0)
        compacting.append_cost_records(KEY, records)
        assert _log_lines(compacting) == 1
        assert compacting.get_cost_records(KEY) == records

    def test_distinct_plan_growth_does_not_trigger(self, tmp_path):
        store = DiskStore(tmp_path, auto_compact=2.0)
        for index in range(30):
            store.append_cost_records(
                KEY, {f"small[{index}]": {"cycles": float(index)}}
            )
        # Every line is a distinct plan: ratio stays 1, nothing compacts.
        assert _log_lines(store) == 30


class TestLegacyMigration:
    """Pre-append-log stores held one JSON table per (machine, metric, seed)."""

    def _write_v1_table(self, path, table_key: CostTableKey, costs: dict) -> None:
        payload = {"version": 1, "key": table_key.as_dict(), "costs": costs}
        (path / f"{table_key.token()}.json").write_text(json.dumps(payload))

    def test_old_format_tables_load_transparently(self, tmp_path):
        machine_hash = "m" * 8
        table_key = CostTableKey(machine_hash=machine_hash, metric="cycles", seed=5)
        self._write_v1_table(tmp_path, table_key, {"small[1]": 10.0, "small[2]": 20.0})
        store = DiskStore(tmp_path)
        records = store.get_cost_records(CostLogKey(machine_hash=machine_hash, seed=5))
        assert records == {
            "small[1]": {"cycles": 10.0},
            "small[2]": {"cycles": 20.0},
        }
        # The other seed's log is unaffected.
        assert store.get_cost_records(CostLogKey(machine_hash=machine_hash, seed=6)) == {}

    def test_log_records_override_migrated_values(self, tmp_path):
        machine_hash = "m" * 8
        key = CostLogKey(machine_hash=machine_hash, seed=0)
        self._write_v1_table(
            tmp_path, CostTableKey(machine_hash=machine_hash), {"small[1]": 10.0}
        )
        store = DiskStore(tmp_path)
        store.append_cost_records(key, {"small[1]": {"cycles": 11.0}})
        assert store.get_cost_records(key)["small[1]"]["cycles"] == 11.0

    def test_corrupt_legacy_file_is_skipped(self, tmp_path):
        table_key = CostTableKey(machine_hash="abc")
        (tmp_path / f"{table_key.token()}.json").write_text("{not json")
        assert DiskStore(tmp_path).get_cost_records(table_key.log_key()) == {}

    def test_engine_resumes_from_v1_table_with_zero_measurements(self, tmp_path):
        """Acceptance: automatic migration of a pre-PR-4 JSON cost table with
        zero re-measurements."""
        config = tiny_machine_config(noise_sigma=0.0)
        # Produce ground-truth costs the old engine would have persisted.
        reference_engine = CostEngine(SimulatedMachine(config), store=MemoryStore())
        plans = random_plans(6, 6, rng=9)
        values = reference_engine.batch(plans)
        machine_hash = machine_config_hash(config)
        self._write_v1_table(
            tmp_path,
            CostTableKey(machine_hash=machine_hash, metric="cycles", seed=0),
            {plan_key(plan): value for plan, value in zip(plans, values)},
        )
        migrated = CostEngine(SimulatedMachine(config), store=DiskStore(tmp_path))
        assert migrated.batch(plans) == values
        assert migrated.measured == 0
        # Adding a *model* metric to the migrated campaign still measures
        # nothing on the hardware side.
        migrated.records(plans, ("model_instructions", "model_combined"))
        assert migrated.measured == 0
        # But the DP search over the same space resumes from the cache too.
        scalar = dp_search(6, MeasuredCyclesCost(SimulatedMachine(config)))
        resumed = dp_search(6, CostEngine(SimulatedMachine(config), store=DiskStore(tmp_path)))
        assert resumed.best_costs[6] == scalar.best_costs[6]

    def test_compaction_folds_migrated_values_and_retires_legacy_files(self, tmp_path):
        machine_hash = "m" * 8
        key = CostLogKey(machine_hash=machine_hash, seed=0)
        legacy = CostTableKey(machine_hash=machine_hash)
        self._write_v1_table(tmp_path, legacy, {"small[1]": 10.0})
        # A legacy table for a *different* machine must survive compaction.
        other = CostTableKey(machine_hash="other-machine")
        self._write_v1_table(tmp_path, other, {"small[9]": 90.0})
        store = DiskStore(tmp_path)
        store.compact_cost_records(key)
        # The matching legacy file was retired; the log alone carries its
        # value now, and the foreign table is untouched.
        assert not (tmp_path / f"{legacy.token()}.json").exists()
        assert (tmp_path / f"{other.token()}.json").exists()
        assert store.get_cost_records(key) == {"small[1]": {"cycles": 10.0}}
        assert store.get_cost_records(other.log_key()) == {"small[9]": {"cycles": 90.0}}


class TestLegacyTableView:
    def test_put_get_roundtrip_through_the_log(self, tmp_path):
        for store in (DiskStore(tmp_path), MemoryStore()):
            table_key = CostTableKey(machine_hash="abc", metric="cycles", seed=1)
            assert store.get_cost_table(table_key) is None
            store.put_cost_table(table_key, {"small[2]": 10.0})
            assert store.get_cost_table(table_key) == {"small[2]": 10.0}
            # The view projects one metric out of the shared log.
            other_metric = CostTableKey(machine_hash="abc", metric="instructions", seed=1)
            assert store.get_cost_table(other_metric) is None
            store.put_cost_table(other_metric, {"small[2]": 4.0})
            merged = store.get_cost_records(table_key.log_key())
            assert merged["small[2]"] == {"cycles": 10.0, "instructions": 4.0}


class TestNondeterministicMetrics:
    def test_wall_time_is_memoised_but_never_persisted(self, tmp_path):
        config = tiny_machine_config(noise_sigma=0.0)
        store = DiskStore(tmp_path)
        engine = CostEngine(SimulatedMachine(config), store=store)
        plan = random_plan(5, rng=20)
        first = engine.records([plan], ("wall_time",))[0]["wall_time"]
        # Memoised within the engine's lifetime...
        assert engine.records([plan], ("wall_time",))[0]["wall_time"] == first
        assert engine.measured == 1
        # ...but absent from the store: another host's timing must never be
        # served as a cache hit.
        for values in store.get_cost_records(engine.key).values():
            assert "wall_time" not in values
        resumed = CostEngine(SimulatedMachine(config), store=store)
        resumed.records([plan], ("wall_time",))
        assert resumed.measured == 1  # re-measured, not served stale

    def test_foreign_wall_time_records_are_scrubbed_on_load(self, tmp_path):
        config = tiny_machine_config(noise_sigma=0.0)
        store = DiskStore(tmp_path)
        seeded = CostEngine(SimulatedMachine(config), store=store)
        plan = random_plan(5, rng=21)
        cycles = seeded(plan)
        # A foreign writer (or an older build) persisted a wall_time value.
        store.append_cost_records(
            seeded.key, {plan_key(plan): {"wall_time": 123.456}}
        )
        engine = CostEngine(SimulatedMachine(config), store=store)
        assert engine(plan) == cycles and engine.measured == 0  # cycles cached
        record = engine.records([plan], ("wall_time",))[0]
        assert record["wall_time"] != 123.456  # freshly measured, not foreign
        assert engine.measured == 1


class TestEngineDurability:
    def test_costs_survive_mid_search_abandonment(self, tmp_path):
        """Every value an engine ever returned is on disk, even without any
        explicit flush/close — the append happens before records() returns."""
        config = tiny_machine_config(noise_sigma=0.0)
        engine = CostEngine(SimulatedMachine(config), store=DiskStore(tmp_path))
        plan = random_plan(6, rng=11)
        value = engine(plan)
        del engine  # no shutdown hook involved
        resumed = CostEngine(SimulatedMachine(config), store=DiskStore(tmp_path))
        assert resumed(plan) == value
        assert resumed.measured == 0

    def test_engine_compact_shrinks_disk_log(self, tmp_path):
        config = tiny_machine_config(noise_sigma=0.0)
        store = DiskStore(tmp_path)
        engine = CostEngine(SimulatedMachine(config), store=store)
        plans = random_plans(6, 5, rng=12)
        engine.batch(plans)
        engine.records(plans, ("model_instructions",))
        engine.records(plans, ("wall_time",))
        log = store.path / f"{engine.key.token()}.jsonl"
        size_before = log.stat().st_size
        before = store.get_cost_records(engine.key)
        engine.compact()
        assert store.get_cost_records(engine.key) == before
        assert log.stat().st_size <= size_before


@pytest.mark.parametrize("store_factory", [MemoryStore, NullStore])
def test_protocol_members_exist(store_factory):
    store = store_factory()
    assert callable(store.get_cost_records)
    assert callable(store.append_cost_records)
    assert callable(store.compact_cost_records)
