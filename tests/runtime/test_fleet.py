"""The fleet client: many servers, one record space, chaos-tolerant.

The load-bearing guarantee (ISSUE 10 acceptance, DESIGN.md §15): a DP
search striped over a 3-server fleet whose members share one record
space **completes bit-identically to a serial engine** even when one
member is SIGKILLed — or partitioned — mid-search, with zero duplicate
measurements and zero conflicting persisted shard records.

``REPRO_CHAOS_SEED`` selects the fault schedule (and the SIGKILL victim)
so CI can run a seed matrix; every test must hold for any seed.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.machine.configs import tiny_machine_config
from repro.machine.machine import SimulatedMachine
from repro.runtime.backends import BatchedBackend
from repro.runtime.cost_engine import CostEngine
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.fleet import (
    DEAD,
    DRAINING,
    HEALTHY,
    PARTITIONED,
    FleetClient,
    MembershipRegistry,
    ring_assign,
    ring_owner,
    ring_weight,
)
from repro.runtime.service import CampaignService, ServiceError
from repro.runtime.session import Session, session
from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.store import MemoryStore, machine_config_hash
from repro.runtime.transport import (
    RemoteServiceClient,
    RemoteServiceError,
    serve_tcp,
)
from repro.wht.canonical import iterative_plan
from repro.wht.encoding import plan_key
from repro.wht.random_plans import RSUSampler

#: The CI chaos matrix sets this; locally it defaults to schedule 0.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _private_engine(config, seed=0):
    """A fault-free serial reference engine with an explicit noise seed."""
    return CostEngine(
        SimulatedMachine(config),
        backend=BatchedBackend(),
        store=MemoryStore(),
        seed=seed,
    )


class CountingBackend:
    """A backend wrapper recording every unit it actually executes."""

    name = "counting"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.executed = []  # (machine_hash, plan_key, noise_seed)

    def measure_units(self, machine, units):
        with self.lock:
            digest = machine_config_hash(machine.config)
            self.executed.extend(
                (digest, plan_key(unit.plan), unit.noise_seed) for unit in units
            )
        return self.inner.measure_units(machine, units)

    def close(self):
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


def _duplicates(*countings):
    """Units executed more than once across every member's backend."""
    seen, duplicates = set(), []
    for counting in countings:
        for item in counting.executed:
            if item in seen:
                duplicates.append(item)
            seen.add(item)
    return duplicates


class Fleet:
    """Test helper: N in-process servers joined into one fleet."""

    def __init__(self, tmp_path, size=3, workers=2):
        self.countings = [CountingBackend() for _ in range(size)]
        self.services = [
            CampaignService(
                store=ShardedRecordStore(tmp_path / "campaigns", auto_compact=None),
                backend=counting,
                workers=workers,
                shared_store=True,
            )
            for counting in self.countings
        ]
        self.servers = [serve_tcp(service) for service in self.services]
        self.urls = [server.url for server in self.servers]
        for server in self.servers:
            server.join_fleet(self.urls, self_url=server.url)

    def close(self):
        for server in self.servers:
            server.close()
        for service in self.services:
            service.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


@pytest.fixture
def config():
    return tiny_machine_config()


@pytest.fixture
def plans():
    return RSUSampler().sample_many(8, count=12, rng=3)


# -- the rendezvous ring -------------------------------------------------------


class TestRendezvousRing:
    MEMBERS = ("tcp://a:1", "tcp://b:1", "tcp://c:1")

    def test_owner_is_deterministic_and_order_independent(self):
        keys = [plan_key(p) for p in RSUSampler().sample_many(6, count=20, rng=1)]
        for key in keys:
            owner = ring_owner(self.MEMBERS, "mh", key)
            assert owner in self.MEMBERS
            assert owner == ring_owner(tuple(reversed(self.MEMBERS)), "mh", key)
            assert owner == ring_owner(self.MEMBERS, "mh", key)

    def test_keys_spread_over_every_member(self):
        keys = [f"key-{i}" for i in range(240)]
        groups = ring_assign(self.MEMBERS, "mh", keys)
        assert set(groups) == set(self.MEMBERS)
        # Rendezvous hashing is roughly uniform; no member starves.
        assert all(len(group) > 40 for group in groups.values())
        # Assignment partitions the keys and preserves per-group order.
        merged = [key for group in groups.values() for key in group]
        assert sorted(merged) == sorted(keys)
        for group in groups.values():
            assert group == [key for key in keys if key in set(group)]

    def test_removing_a_member_moves_only_its_keys(self):
        keys = [f"key-{i}" for i in range(200)]
        before = {key: ring_owner(self.MEMBERS, "mh", key) for key in keys}
        survivors = tuple(m for m in self.MEMBERS if m != "tcp://b:1")
        after = {key: ring_owner(survivors, "mh", key) for key in keys}
        for key in keys:
            if before[key] != "tcp://b:1":
                assert after[key] == before[key]
            else:
                assert after[key] in survivors

    def test_weight_depends_on_every_component(self):
        base = ring_weight("m", "mh", "k")
        assert ring_weight("m2", "mh", "k") != base
        assert ring_weight("m", "mh2", "k") != base
        assert ring_weight("m", "mh", "k2") != base

    def test_empty_ring_raises(self):
        with pytest.raises(ServiceError):
            ring_owner((), "mh", "k")


# -- membership ----------------------------------------------------------------


class TestMembershipRegistry:
    def test_starts_healthy_and_dedupes_urls(self):
        registry = MembershipRegistry(["tcp://a:1", "tcp://b:1", "tcp://a:1"])
        assert registry.members() == ("tcp://a:1", "tcp://b:1")
        assert registry.alive() == ("tcp://a:1", "tcp://b:1")
        assert all(state == HEALTHY for state in registry.snapshot().values())

    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError):
            MembershipRegistry([])

    def test_partition_heals_after_its_duration(self):
        registry = MembershipRegistry(["tcp://a:1", "tcp://b:1"])
        assert registry.mark_partitioned("tcp://a:1", duration=0.05)
        assert registry.alive() == ("tcp://b:1",)
        assert registry.state("tcp://a:1") == PARTITIONED
        heal = registry.earliest_heal()
        assert heal is not None and heal <= 0.05
        time.sleep(0.06)
        assert registry.alive() == ("tcp://a:1", "tcp://b:1")
        assert registry.state("tcp://a:1") == HEALTHY

    def test_dead_is_terminal_and_drain_is_one_way(self):
        registry = MembershipRegistry(["tcp://a:1", "tcp://b:1"])
        assert registry.mark("tcp://a:1", DEAD)
        assert not registry.mark("tcp://a:1", HEALTHY)
        assert not registry.mark_partitioned("tcp://a:1", duration=0.01)
        assert registry.state("tcp://a:1") == DEAD
        assert registry.mark("tcp://b:1", DRAINING)
        assert not registry.mark("tcp://b:1", HEALTHY)
        assert registry.alive() == ()

    def test_add_rejoins_a_dead_member(self):
        registry = MembershipRegistry(["tcp://a:1"])
        registry.mark("tcp://a:1", DEAD)
        version = registry.version
        assert registry.add("tcp://a:1")
        assert registry.state("tcp://a:1") == HEALTHY
        assert registry.version > version
        assert registry.add("tcp://b:1")
        assert registry.members() == ("tcp://a:1", "tcp://b:1")


# -- the engine surface --------------------------------------------------------


class TestFleetClientEngineSurface:
    def test_a_url_string_is_rejected(self, config):
        with pytest.raises(TypeError):
            FleetClient("tcp://127.0.0.1:1", config)

    def test_records_are_bit_identical_and_striped(self, config, plans, tmp_path):
        expected = _private_engine(config, seed=9).records(
            plans, ("cycles", "instructions")
        )
        with Fleet(tmp_path) as fleet:
            with FleetClient(fleet.urls, config, seed=9) as client:
                records = client.records(plans, ("cycles", "instructions"))
                assert [r.values for r in records] == [r.values for r in expected]
                assert client.evaluations == len(plans)
                assert client.measured > 0
                # One record space: replaying the batch is all store hits.
                again = client.records(plans, ("cycles", "instructions"))
                assert [r.values for r in again] == [r.values for r in records]
            # The work striped over more than one member...
            busy = [c for c in fleet.countings if c.executed]
            assert len(busy) >= 2
            # ...and nothing was measured twice, fleet-wide.
            assert _duplicates(*fleet.countings) == []

    def test_full_engine_surface(self, config, plans, tmp_path):
        reference = _private_engine(config, seed=4)
        with Fleet(tmp_path, size=2) as fleet:
            with FleetClient(fleet.urls, config, seed=4) as client:
                assert client.batch(plans) == reference.batch(plans)
                assert client(plans[0]) == reference(plans[0])
                cost = client.cost("instructions")
                assert cost(plans[0]) == reference.cost("instructions")(plans[0])
                client.flush()
                client.compact()
                assert "2 members" in repr(client)

    def test_session_connect_list_builds_a_fleet_engine(self, config, tmp_path):
        with Fleet(tmp_path, size=2) as fleet:
            sess = Session.connect(fleet.urls, machine=config, scale="ci")
            try:
                assert isinstance(sess.cost_engine(), FleetClient)
            finally:
                sess.close()

    def test_single_url_list_collapses_to_a_remote_client(self, config, tmp_path):
        with Fleet(tmp_path, size=1) as fleet:
            sess = Session.connect([fleet.urls[0]], machine=config)
            try:
                assert isinstance(sess.cost_engine(), RemoteServiceClient)
            finally:
                sess.close()

    def test_bad_connect_lists_are_rejected(self, config):
        with pytest.raises(TypeError):
            Session.connect([], machine=config)
        with pytest.raises(TypeError):
            Session.connect([42], machine=config)

    def test_fleet_dp_search_is_bit_identical(self, config, tmp_path):
        expected = session(machine=config, scale="ci", store=MemoryStore()).search(
            10, use_engine=True
        )
        with Fleet(tmp_path) as fleet:
            sess = Session.connect(fleet.urls, machine=config, scale="ci")
            try:
                result = sess.search(10, use_engine=True)
                assert plan_key(result.best_plan) == plan_key(expected.best_plan)
                assert result.best_cost == expected.best_cost
                assert _duplicates(*fleet.countings) == []
            finally:
                sess.close()


# -- failover and membership change --------------------------------------------


class TestFailover:
    def test_killed_member_fails_over_to_survivors(self, config, plans, tmp_path):
        expected = _private_engine(config, seed=6).records(plans, ("cycles",))
        with Fleet(tmp_path) as fleet:
            client = FleetClient(
                fleet.urls,
                config,
                seed=6,
                max_attempts=2,
                backoff_base=0.01,
                backoff_cap=0.05,
                partition_duration=0.05,
                heartbeat_interval=None,
            )
            try:
                # Kill one member outright before any work reaches it.
                victim = CHAOS_SEED % len(fleet.servers)
                fleet.servers[victim].close()
                fleet.services[victim].shutdown()
                records = client.records(plans, ("cycles",))
                assert [r.values for r in records] == [r.values for r in expected]
                assert client.failovers >= 1
                assert _duplicates(*fleet.countings) == []
                # Keep submitting: once the partition heals, the victim
                # rejoins the ring, fails again, and the second consecutive
                # failure escalates to permanent death — a dead member must
                # not cost a rehash round forever.
                deadline = time.monotonic() + 20.0
                rng = 20
                while (
                    client.registry.state(fleet.urls[victim]) != DEAD
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.06)  # past partition_duration: heal, rejoin
                    more = RSUSampler().sample_many(7, count=8, rng=rng)
                    rng += 1
                    client.records(more, ("cycles",))
                assert client.registry.state(fleet.urls[victim]) == DEAD
            finally:
                client.close()

    def test_drain_mid_search_hands_off_bit_identically(self, config, tmp_path):
        """Satellite: a member drains mid-DP-search; keys hand off and the
        final result is bit-identical to a single-server run."""
        expected = session(machine=config, scale="ci", store=MemoryStore()).search(
            10, use_engine=True
        )
        with Fleet(tmp_path) as fleet:
            victim = CHAOS_SEED % len(fleet.servers)
            sess = Session.connect(
                fleet.urls,
                machine=config,
                scale="ci",
                heartbeat_interval=0.2,
                partition_duration=0.05,
            )
            drainer = threading.Timer(
                0.3, lambda: fleet.servers[victim].drain(timeout=60.0)
            )
            drainer.start()
            try:
                result = sess.search(10, use_engine=True)
                drainer.join()
                assert plan_key(result.best_plan) == plan_key(expected.best_plan)
                assert result.best_cost == expected.best_cost
                assert _duplicates(*fleet.countings) == []
                engine = sess.cost_engine()
                assert engine.registry.state(fleet.urls[victim]) in (
                    HEALTHY,  # the drain landed after the search finished
                    DRAINING,
                )
            finally:
                drainer.cancel()
                sess.close()

    def test_all_members_dead_degrades_with_fallback(self, config, plans, tmp_path):
        expected = _private_engine(config, seed=2).records(plans, ("cycles",))
        with Fleet(tmp_path, size=2) as fleet:
            client = FleetClient(
                fleet.urls,
                config,
                seed=2,
                fallback=True,
                max_attempts=1,
                backoff_base=0.01,
                backoff_cap=0.02,
                partition_duration=0.01,
                heartbeat_interval=None,
            )
            try:
                for url in fleet.urls:
                    client.registry.mark(url, DEAD)
                records = client.records(plans, ("cycles",))
                assert [r.values for r in records] == [r.values for r in expected]
                assert client.fallbacks == 1
            finally:
                client.close()

    def test_all_members_dead_without_fallback_raises(self, config, plans, tmp_path):
        with Fleet(tmp_path, size=2) as fleet:
            client = FleetClient(fleet.urls, config, heartbeat_interval=None)
            try:
                for url in fleet.urls:
                    client.registry.mark(url, DEAD)
                with pytest.raises(RemoteServiceError):
                    client.records(plans[:2], ("cycles",))
            finally:
                client.close()

    def test_add_member_joins_the_ring_at_runtime(self, config, plans, tmp_path):
        with Fleet(tmp_path) as fleet:
            client = FleetClient(fleet.urls[:2], config, heartbeat_interval=None)
            try:
                assert client.registry.members() == tuple(fleet.urls[:2])
                assert client.add_member(fleet.urls[2])
                assert not client.add_member(fleet.urls[2])  # already in
                assert client.registry.members() == tuple(fleet.urls)
                records = client.records(plans, ("cycles",))
                assert len(records) == len(plans)
            finally:
                client.close()


# -- gossip, redirects, observability ------------------------------------------


class TestGossipAndRedirects:
    def test_probe_learns_draining_from_gossip(self, config, tmp_path):
        with Fleet(tmp_path, size=2) as fleet:
            client = FleetClient(fleet.urls, config, heartbeat_interval=None)
            try:
                fleet.servers[0].drain(timeout=10.0)
                states = client.probe()
                assert states[fleet.urls[0]] == DRAINING
                assert states[fleet.urls[1]] == HEALTHY
            finally:
                client.close()

    def test_probe_partitions_an_unreachable_member(self, config, tmp_path):
        with Fleet(tmp_path, size=2) as fleet:
            client = FleetClient(
                fleet.urls,
                config,
                heartbeat_interval=None,
                max_attempts=1,
                backoff_base=0.01,
                backoff_cap=0.02,
                connect_timeout=0.5,
            )
            try:
                fleet.servers[0].close()
                states = client.probe(timeout=1.0)
                assert states[fleet.urls[0]] == PARTITIONED
            finally:
                client.close()

    def test_misdirected_submit_is_redirected_to_the_owner(
        self, config, plans, tmp_path
    ):
        """A plain remote client pointed at one member of a fleet still gets
        correct records: the server forwards peer-owned keys one hop."""
        expected = _private_engine(config, seed=3).records(plans, ("cycles",))
        with Fleet(tmp_path) as fleet:
            client = RemoteServiceClient(fleet.urls[0], config, seed=3)
            try:
                records = client.records(plans, ("cycles",))
                assert [r.values for r in records] == [r.values for r in expected]
            finally:
                client.close()
            redirects = sum(s.stats().redirects for s in fleet.services)
            assert redirects > 0
            assert _duplicates(*fleet.countings) == []

    def test_stats_and_health_expose_fleet_fields(self, config, plans, tmp_path):
        with Fleet(tmp_path) as fleet:
            stats = fleet.services[0].stats()
            assert stats.members == 3
            assert stats.members_healthy == 3
            health = fleet.services[0].health()
            assert health.members == 3
            assert health.members_healthy == 3
            client = FleetClient(fleet.urls, config, heartbeat_interval=None)
            try:
                client.records(plans[:4], ("cycles",))
                fstats = client.fleet_stats()
                assert fstats["members"] == 3
                assert fstats["members_healthy"] == 3
                remote = client.server_stats()
                assert set(remote) == set(fleet.urls)
                for payload in remote.values():
                    assert payload["members"] == 3
                    assert payload["members_healthy"] == 3
                    assert "redirects" in payload and "failovers" in payload
            finally:
                client.close()

    def test_standalone_service_reports_zero_members(self, config):
        with CampaignService(backend=BatchedBackend(), workers=1) as service:
            assert service.stats().members == 0
            assert service.health().members == 0


# -- the fault plan's fleet axis -----------------------------------------------


class TestFleetFaultAxis:
    def test_fleet_sites_draw_from_the_fleet_spec(self):
        fplan = FaultPlan(seed=3, fleet=FaultSpec(error_rate=1.0))
        assert fplan.decide("fleet-tcp://a:1").error
        assert not fplan.decide("net-send").error
        assert not fplan.decide("backend").error

    def test_injected_kills_are_permanent_member_death(self, config, plans, tmp_path):
        expected = _private_engine(config, seed=5).records(plans, ("cycles",))
        fplan = FaultPlan(seed=CHAOS_SEED, fleet=FaultSpec(kill_rate=1.0))
        with Fleet(tmp_path, size=2) as fleet:
            client = FleetClient(
                fleet.urls,
                config,
                seed=5,
                fallback=True,
                fault_plan=fplan,
                heartbeat_interval=None,
            )
            try:
                records = client.records(plans, ("cycles",))
                assert [r.values for r in records] == [r.values for r in expected]
                assert client.injected_kills == 2
                assert all(
                    state == DEAD for state in client.registry.snapshot().values()
                )
                assert client.fallbacks == 1
            finally:
                client.close()

    def test_injected_partitions_heal_and_the_batch_completes(
        self, config, plans, tmp_path
    ):
        expected = _private_engine(config, seed=7).records(plans, ("cycles",))
        fplan = FaultPlan(seed=CHAOS_SEED, fleet=FaultSpec(error_rate=0.4))
        with Fleet(tmp_path) as fleet:
            client = FleetClient(
                fleet.urls,
                config,
                seed=7,
                fault_plan=fplan,
                partition_duration=0.05,
                heartbeat_interval=None,
            )
            try:
                records = client.records(plans, ("cycles",))
                assert [r.values for r in records] == [r.values for r in expected]
                assert _duplicates(*fleet.countings) == []
                assert sum(
                    fplan.calls(f"fleet-{url}") for url in fleet.urls
                ) >= len(fleet.urls)
            finally:
                client.close()

    def test_fault_schedule_is_seed_deterministic(self, config, plans, tmp_path):
        """Same seed + same member set → the same injection schedule.

        (The schedule keys on ``fleet-<url>`` sites, so it is deterministic
        *per member set* — exactly what a CI seed-matrix rerun replays.)
        """
        with Fleet(tmp_path, size=2) as fleet:

            def run():
                fplan = FaultPlan(seed=CHAOS_SEED, fleet=FaultSpec(error_rate=0.3))
                client = FleetClient(
                    fleet.urls,
                    config,
                    seed=8,
                    fault_plan=fplan,
                    partition_duration=0.02,
                    heartbeat_interval=None,
                    client_id="determinism",
                )
                try:
                    values = [
                        r.values for r in client.records(plans, ("cycles",))
                    ]
                    return values, client.injected_partitions, client.failovers
                finally:
                    client.close()

            first = run()
            second = run()
            assert first == second


# -- satellite: no thread leak on connect/close cycles -------------------------


class TestTransportThreadHygiene:
    def test_100_connect_close_cycles_leak_no_threads(self, config):
        with CampaignService(backend=BatchedBackend(), workers=1) as service:
            with serve_tcp(service) as server:
                plan = [iterative_plan(3)]
                baseline = threading.active_count()
                for index in range(100):
                    client = RemoteServiceClient(
                        server.url, config, heartbeat_interval=0.05
                    )
                    if index % 25 == 0:
                        client.records(plan, ("cycles",))
                    client.close()
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    leaked = [
                        t.name
                        for t in threading.enumerate()
                        if t.name.startswith(("remote-client-reader", "remote-heartbeat"))
                    ]
                    if not leaked:
                        break
                    time.sleep(0.05)
                assert leaked == [], f"leaked transport threads: {leaked}"
                assert threading.active_count() <= baseline + 2


# -- suite integration ---------------------------------------------------------


class TestSuiteConnectList:
    SPEC = {
        "name": "fleet-suite",
        "machines": ["default"],
        "scale": "ci",
        "experiments": ["figure1"],
    }

    def test_spec_accepts_a_connect_list(self):
        from repro.suite.spec import SuiteSpec

        spec = SuiteSpec.from_dict(
            {**self.SPEC, "connect": ["tcp://a:1", "tcp://b:1"]}
        )
        assert spec.connect == ("tcp://a:1", "tcp://b:1")
        assert spec.to_dict()["connect"] == ["tcp://a:1", "tcp://b:1"]
        assert "connect=" in spec.describe()
        single = SuiteSpec.from_dict({**self.SPEC, "connect": "tcp://a:1"})
        assert single.connect == ("tcp://a:1",)

    def test_connect_free_specs_hash_as_before(self):
        from repro.suite.spec import SuiteSpec

        spec = SuiteSpec.from_dict(self.SPEC)
        assert spec.connect == ()
        assert "connect" not in spec.to_dict()

    def test_bad_connect_values_are_rejected(self):
        from repro.suite.spec import SpecError, SuiteSpec

        with pytest.raises(SpecError):
            SuiteSpec.from_dict({**self.SPEC, "connect": [1, 2]})
        with pytest.raises(SpecError):
            SuiteSpec.from_dict({**self.SPEC, "connect": {"url": "tcp://a:1"}})
        with pytest.raises(SpecError):
            SuiteSpec.from_dict(
                {**self.SPEC, "connect": ["tcp://a:1", "tcp://a:1"]}
            )

    def test_suite_defaults_connect_from_the_spec(self, tmp_path):
        run = repro.suite({**self.SPEC, "connect": ["tcp://a:1", "tcp://b:1"]})
        assert run.connect == ("tcp://a:1", "tcp://b:1")
        override = repro.suite(
            {**self.SPEC, "connect": ["tcp://a:1", "tcp://b:1"]},
            connect="tcp://c:1",
        )
        assert override.connect == "tcp://c:1"

    def test_cli_describe_prints_resolved_targets(self, tmp_path, capsys):
        from repro.suite.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps({**self.SPEC, "connect": ["tcp://a:1", "tcp://b:1"]}),
            encoding="utf-8",
        )
        assert main(["describe", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "fleet of 2 member(s)" in out
        assert "tcp://a:1" in out and "tcp://b:1" in out

        assert main(["describe", str(spec_path), "--connect", "tcp://x:9"]) == 0
        out = capsys.readouterr().out
        assert "tcp://x:9 (remote session)" in out

        plain = tmp_path / "plain.json"
        plain.write_text(json.dumps(self.SPEC), encoding="utf-8")
        assert main(["describe", str(plain)]) == 0
        assert "(none — in-process sessions)" in capsys.readouterr().out

    def test_suite_runs_against_a_live_fleet(self, config, tmp_path):
        spec = {
            "name": "fleet-live",
            "machines": ["tiny"],
            "scale": "ci",
            "experiments": [
                {"id": "search", "kind": "search", "options": {"n": 6}}
            ],
        }
        with Fleet(tmp_path) as fleet:
            run = repro.suite({**spec, "connect": list(fleet.urls)})
            result = run.run()
            assert result.ok, [r.error for r in result.results]
            assert _duplicates(*fleet.countings) == []


# -- the acceptance criterion ---------------------------------------------------


CHILD_SERVER = """
import json
import sys
import threading

from repro.machine.configs import tiny_machine_config  # noqa: F401 (warms imports)
from repro.runtime.backends import BatchedBackend
from repro.runtime.service import CampaignService
from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.transport import serve_tcp

service = CampaignService(
    store=ShardedRecordStore(sys.argv[1], auto_compact=None),
    backend=BatchedBackend(),
    workers=2,
    shared_store=True,
)
server = serve_tcp(service, host="127.0.0.1", port=0)
print(server.url, flush=True)
members = json.loads(sys.stdin.readline())
server.join_fleet(members, self_url=server.url)
print("ready", flush=True)
threading.Event().wait()
"""


def _assert_one_record_space(store_dir):
    """Every persisted shard line is unique per plan and conflict-free."""
    lines_per_key = {}
    values_per_key = {}
    with ShardedRecordStore(store_dir, auto_compact=None) as reopened:
        for log in reopened.shard_paths():
            for line in Path(log).read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn tail from the SIGKILL is legal
                if "p" not in payload:
                    continue  # header
                lines_per_key[payload["p"]] = lines_per_key.get(payload["p"], 0) + 1
                for metric, value in payload["v"].items():
                    seen = values_per_key.setdefault((payload["p"], metric), value)
                    assert seen == value, (
                        f"conflicting persisted values for {payload['p']}:{metric}"
                    )
    assert lines_per_key, "the search persisted no records"
    duplicated = {key: n for key, n in lines_per_key.items() if n > 1}
    assert duplicated == {}, f"duplicate persisted measurements: {duplicated}"


class TestFleetChaosInvariant:
    """DP n=14 on a 3-server fleet surviving one member's death mid-search."""

    N = 14

    def _reference(self, config):
        return session(machine=config, scale="ci", store=MemoryStore()).search(
            self.N, use_engine=True
        )

    def test_sigkilled_member_mid_search_is_bit_identical(self, config, tmp_path):
        expected = self._reference(config)
        store_dir = tmp_path / "campaigns"
        script = tmp_path / "fleet_member.py"
        script.write_text(CHILD_SERVER, encoding="utf-8")
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(store_dir)],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(3)
        ]
        try:
            urls = [proc.stdout.readline().strip() for proc in procs]
            assert all(url.startswith("tcp://") for url in urls)
            membership = json.dumps(urls) + "\n"
            for proc in procs:
                proc.stdin.write(membership)
                proc.stdin.flush()
            for proc in procs:
                assert proc.stdout.readline().strip() == "ready"

            victim = CHAOS_SEED % len(procs)
            killed = threading.Event()

            def kill_once_progressed():
                deadline = time.monotonic() + 60.0
                shards = store_dir / "shards"
                while time.monotonic() < deadline:
                    lines = 0
                    if shards.is_dir():
                        for log in shards.glob("*/costlog-*.jsonl"):
                            try:
                                lines += sum(
                                    1 for _ in log.open("r", encoding="utf-8")
                                )
                            except OSError:
                                pass
                    if lines >= 5:
                        os.kill(procs[victim].pid, signal.SIGKILL)
                        killed.set()
                        return
                    time.sleep(0.01)

            killer = threading.Thread(target=kill_once_progressed, daemon=True)
            killer.start()

            sess = Session.connect(
                urls,
                machine=config,
                scale="ci",
                heartbeat_interval=0.5,
                max_attempts=3,
                backoff_base=0.01,
                backoff_cap=0.1,
                partition_duration=0.1,
            )
            try:
                result = sess.search(self.N, use_engine=True)
                killer.join(timeout=60.0)

                # 1. The member really died mid-run...
                assert killed.is_set(), "the victim was never killed"
                assert procs[victim].poll() is not None
                # 2. ...and the search completed bit-identically anyway.
                assert plan_key(result.best_plan) == plan_key(expected.best_plan)
                assert result.best_cost == expected.best_cost
                # 3. The client noticed and failed the victim's keys over.
                engine = sess.cost_engine()
                assert engine.failovers >= 1
                assert engine.registry.state(urls[victim]) in (PARTITIONED, DEAD)
            finally:
                sess.close()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10.0)

        # 4. One record space, zero duplicate measurements, zero conflicts.
        _assert_one_record_space(store_dir)

    def test_partitioned_member_mid_search_is_bit_identical(self, config, tmp_path):
        expected = self._reference(config)
        fplan = FaultPlan(seed=CHAOS_SEED, fleet=FaultSpec(error_rate=0.2))
        with Fleet(tmp_path) as fleet:
            sess = Session.connect(
                fleet.urls,
                machine=config,
                scale="ci",
                fault_plan=fplan,
                partition_duration=0.05,
                heartbeat_interval=0.5,
            )
            try:
                result = sess.search(self.N, use_engine=True)

                assert plan_key(result.best_plan) == plan_key(expected.best_plan)
                assert result.best_cost == expected.best_cost
                # Partitions were really injected (any seed: the schedule
                # consumes hundreds of fleet-site decisions at 20%).
                assert sum(fplan.calls(f"fleet-{u}") for u in fleet.urls) > 0
                engine = sess.cost_engine()
                assert engine.failovers == engine.injected_partitions >= 0
                assert _duplicates(*fleet.countings) == []
            finally:
                sess.close()
        _assert_one_record_space(tmp_path / "campaigns")
