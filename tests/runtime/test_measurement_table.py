"""Tests for the runtime measurement table, including serialisation."""

import numpy as np
import pytest

from repro.runtime.table import TABLE_COLUMNS, MeasurementTable
from repro.wht.canonical import canonical_plans


@pytest.fixture
def table(machine):
    return MeasurementTable.from_measurements(
        [machine.measure(p) for p in canonical_plans(6).values()]
    )


@pytest.fixture
def noisy_table(noisy_machine):
    return MeasurementTable.from_measurements(
        [noisy_machine.measure(p) for p in canonical_plans(6).values()]
    )


class TestRoundTrip:
    def test_from_dict_inverts_as_dict(self, table):
        rebuilt = MeasurementTable.from_dict(table.as_dict())
        assert rebuilt.n == table.n
        assert rebuilt.machine == table.machine
        assert rebuilt.plans == table.plans
        assert set(rebuilt.columns) == set(TABLE_COLUMNS)
        for name in TABLE_COLUMNS:
            assert np.array_equal(rebuilt.columns[name], table.columns[name])
        assert table.equals(rebuilt)

    def test_round_trip_survives_json(self, noisy_table):
        # The DiskStore path: as_dict -> JSON text -> from_dict must be exact
        # even for noisy (non-integral) cycle counts.
        import json

        payload = json.loads(json.dumps(noisy_table.as_dict()))
        rebuilt = MeasurementTable.from_dict(payload)
        assert noisy_table.equals(rebuilt)
        assert rebuilt.cycles.dtype == float

    def test_from_dict_rejects_missing_keys(self):
        with pytest.raises(ValueError):
            MeasurementTable.from_dict({"n": 3})

    def test_from_dict_rejects_mismatched_plan_size(self, table):
        payload = table.as_dict()
        payload["n"] = table.n + 1
        with pytest.raises(ValueError):
            MeasurementTable.from_dict(payload)


class TestEquals:
    def test_equal_tables(self, table):
        assert table.equals(MeasurementTable.from_dict(table.as_dict()))

    def test_unequal_columns_detected(self, table):
        other = MeasurementTable.from_dict(table.as_dict())
        other.columns["cycles"][0] += 1.0
        assert not table.equals(other)
