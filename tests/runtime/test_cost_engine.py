"""Tests for the batched cost engine and the store-backed cost cache."""

import pytest

from repro.machine.configs import tiny_machine, tiny_machine_config
from repro.machine.machine import PreparedPlanCache, SimulatedMachine
from repro.runtime.backends import MultiprocessBackend, SerialBackend
from repro.runtime.cost_engine import CostEngine
from repro.runtime.objectives import WeightedObjective
from repro.runtime.store import CostTableKey, DiskStore, MemoryStore, NullStore
from repro.search.costs import MeasuredCyclesCost
from repro.search.dp import dp_search
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.encoding import plan_key
from repro.wht.random_plans import random_plan


class TestCostEngine:
    def test_matches_measured_cost_on_noise_free_machine(self):
        engine = CostEngine(tiny_machine(noise_sigma=0.0))
        cost = MeasuredCyclesCost(tiny_machine(noise_sigma=0.0))
        for seed in range(4):
            plan = random_plan(7, rng=seed)
            assert engine(plan) == cost(plan)

    def test_batch_order_and_duplicates(self):
        engine = CostEngine(tiny_machine(noise_sigma=0.0))
        a, b = iterative_plan(6), right_recursive_plan(6)
        values = engine.batch([a, b, a, a])
        assert values[0] == values[2] == values[3]
        assert engine.evaluations == 4
        assert engine.measured == 2  # one prepare per distinct plan

    def test_cache_hits_skip_measurement(self):
        engine = CostEngine(tiny_machine(noise_sigma=0.0))
        plan = iterative_plan(6)
        first = engine(plan)
        assert engine.measured == 1
        assert engine(plan) == first
        assert engine.measured == 1
        assert engine.evaluations == 2

    def test_noisy_costs_are_order_independent(self):
        config = tiny_machine_config(noise_sigma=0.05)
        plans = [random_plan(6, rng=seed) for seed in range(5)]
        forward = CostEngine(SimulatedMachine(config), seed=11).batch(plans)
        backward = CostEngine(SimulatedMachine(config), seed=11).batch(plans[::-1])
        assert forward == backward[::-1]
        # A different engine seed draws different noise.
        other = CostEngine(SimulatedMachine(config), seed=12).batch(plans)
        assert other != forward

    def test_dp_search_parity_scalar_vs_engine_vs_multiprocess(self):
        config = tiny_machine_config(noise_sigma=0.0)
        scalar = dp_search(8, MeasuredCyclesCost(SimulatedMachine(config)))
        serial = dp_search(8, CostEngine(SimulatedMachine(config)))
        multi = dp_search(
            8,
            CostEngine(
                SimulatedMachine(config),
                backend=MultiprocessBackend(max_workers=2),
            ),
        )
        assert serial.best_plans == scalar.best_plans
        assert serial.best_costs == scalar.best_costs
        assert multi.best_plans == scalar.best_plans
        assert multi.best_costs == scalar.best_costs

    def test_warm_store_resumes_with_zero_measurements(self):
        config = tiny_machine_config(noise_sigma=0.0)
        store = MemoryStore()
        cold_engine = CostEngine(SimulatedMachine(config), store=store)
        cold = dp_search(8, cold_engine)
        assert cold_engine.measured == cold_engine.evaluations

        warm_engine = CostEngine(SimulatedMachine(config), store=store)
        warm = dp_search(8, warm_engine)
        assert warm_engine.measured == 0
        assert warm_engine.evaluations > 0
        assert warm.best_plans == cold.best_plans
        assert warm.best_costs == cold.best_costs

    def test_disk_store_persists_across_engines(self, tmp_path):
        config = tiny_machine_config(noise_sigma=0.0)
        store = DiskStore(tmp_path / "costs")
        plan = right_recursive_plan(7)
        value = CostEngine(SimulatedMachine(config), store=store)(plan)

        resumed = CostEngine(SimulatedMachine(config), store=store)
        assert resumed.cached_costs >= 1
        assert resumed(plan) == value
        assert resumed.measured == 0

    def test_different_machines_do_not_share_costs(self):
        store = MemoryStore()
        plan = iterative_plan(6)
        CostEngine(tiny_machine(noise_sigma=0.0), store=store)(plan)
        other_config = tiny_machine_config(noise_sigma=0.25)
        other = CostEngine(SimulatedMachine(other_config), store=store)
        assert other.cached_costs == 0

    def test_concurrent_writers_both_survive_in_the_log(self):
        # The append log makes concurrent engines additive by construction:
        # neither writer can clobber the other's records.
        config = tiny_machine_config(noise_sigma=0.0)
        store = MemoryStore()
        first = CostEngine(SimulatedMachine(config), store=store)
        second = CostEngine(SimulatedMachine(config), store=store)
        plan_a, plan_b = iterative_plan(6), right_recursive_plan(6)
        first(plan_a)
        second(plan_b)
        merged = store.get_cost_records(first.key)
        assert set(merged) >= {plan_key(plan_a), plan_key(plan_b)}

    def test_attaches_prepared_cache(self):
        machine = tiny_machine(noise_sigma=0.0)
        assert machine.prepared_cache is None
        CostEngine(machine)
        assert isinstance(machine.prepared_cache, PreparedPlanCache)

    def test_null_store_keeps_engine_local_cache(self):
        engine = CostEngine(tiny_machine(noise_sigma=0.0), store=NullStore())
        plan = iterative_plan(5)
        engine(plan)
        engine(plan)
        assert engine.measured == 1


class TestCostTableStores:
    def test_memory_store_roundtrip_and_isolation(self):
        store = MemoryStore()
        key = CostTableKey(machine_hash="abc", seed=3)
        store.put_cost_table(key, {"small[1]": 2.5})
        table = store.get_cost_table(key)
        assert table == {"small[1]": 2.5}
        table["small[1]"] = 99.0  # mutating the copy must not affect the store
        assert store.get_cost_table(key) == {"small[1]": 2.5}
        store.clear()
        assert store.get_cost_table(key) is None

    def test_disk_store_roundtrip_and_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        key = CostTableKey(machine_hash="abc")
        assert store.get_cost_table(key) is None
        store.put_cost_table(key, {"small[2]": 10.0, "small[3]": 20.0})
        assert store.get_cost_table(key) == {"small[2]": 10.0, "small[3]": 20.0}
        store.clear()
        assert store.get_cost_table(key) is None

    def test_disk_store_ignores_corrupt_cost_file(self, tmp_path):
        store = DiskStore(tmp_path)
        key = CostTableKey(machine_hash="abc")
        (tmp_path / f"{key.token()}.json").write_text("{not json")
        assert store.get_cost_table(key) is None

    def test_null_store_never_retains(self):
        store = NullStore()
        key = CostTableKey(machine_hash="abc")
        store.put_cost_table(key, {"small[1]": 1.0})
        assert store.get_cost_table(key) is None

    def test_keys_distinguish_metric_and_seed(self):
        a = CostTableKey(machine_hash="abc", metric="cycles", seed=0)
        b = CostTableKey(machine_hash="abc", metric="cycles", seed=1)
        assert a.token() != b.token()
        assert a != b

    def test_campaign_files_are_not_cost_tables(self, tmp_path):
        # A cost table must never be readable as a campaign table and vice
        # versa: the token namespaces are disjoint.
        key = CostTableKey(machine_hash="abc")
        assert key.token().startswith("costs-")


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestSessionEngine:
    def _session(self, scale, store=None):
        from repro.runtime.session import Session

        return Session(
            machine=SimulatedMachine(tiny_machine_config(noise_sigma=0.0)),
            scale=scale,
            backend=SerialBackend(),
            store=store if store is not None else MemoryStore(),
        )

    def test_session_search_use_engine_matches_plain(self, scale):
        session = self._session(scale)
        plain = session.search(7)
        engine_result = session.search(7, use_engine=True)
        assert engine_result.best_plan == plain.best_plan
        assert engine_result.best_cost == plain.best_cost
        # The session memoises its engine, so a repeated engine search is
        # served from the cost cache.
        again = session.search(7, use_engine=True)
        assert again.best_cost == engine_result.best_cost
        assert session.cost_engine().measured < session.cost_engine().evaluations

    def test_objective_cycles_bit_identical_to_engine_path(self, scale):
        """Acceptance: session.search(use_engine=True, objective="cycles")
        must be bit-identical to the plain engine path."""
        store = MemoryStore()
        engine_path = self._session(scale, store=MemoryStore()).search(7, use_engine=True)
        objective_path = self._session(scale, store=store).search(
            7, use_engine=True, objective="cycles"
        )
        assert objective_path.best_plan == engine_path.best_plan
        assert objective_path.best_cost == engine_path.best_cost
        assert objective_path.evaluated == engine_path.evaluated
        assert [h for h in objective_path.history] == [h for h in engine_path.history]

    def test_objective_search_without_use_engine_flag(self, scale):
        session = self._session(scale)
        result = session.search(6, objective="l1_misses")
        # The best plan under the miss objective minimises measured misses.
        costs = dict(result.history)
        assert result.best_cost == min(costs.values())

    def test_objective_conflicting_with_explicit_cost_raises(self, scale):
        session = self._session(scale)
        with pytest.raises(ValueError, match="not both"):
            session.search(6, objective="l1_misses", cost=lambda plan: 0.0)

    def test_composite_model_objective_encodes_each_batch_once(self, scale, monkeypatch):
        import repro.runtime.cost_engine as cost_engine_module

        session = self._session(scale)
        encodings = 0
        original = cost_engine_module.encode_plans

        def counting(plans):
            nonlocal encodings
            encodings += 1
            return original(plans)

        monkeypatch.setattr(cost_engine_module, "encode_plans", counting)
        session.cost_engine().cost(WeightedObjective.model_combined()).batch(
            [random_plan(6, rng=seed) for seed in range(6)]
        )
        assert encodings == 1  # one shared encoding feeds both model metrics

    def test_objectives_share_the_session_record_cache(self, scale):
        session = self._session(scale)
        session.search(6, use_engine=True, objective="cycles")
        measured = session.cost_engine().measured
        # The combined objective over counter metrics re-measures nothing.
        session.search(6, use_engine=True, objective=WeightedObjective.combined())
        assert session.cost_engine().measured == measured
        # A model-metric objective stays measurement-free as well.
        session.search(6, use_engine=True, objective="model_instructions")
        assert session.cost_engine().measured == measured

    def test_random_and_exhaustive_accept_objectives(self, scale):
        session = self._session(scale)
        random_result = session.search(
            5, strategy="random", objective="model_instructions", samples=20
        )
        exhaustive_result = session.search(
            5, strategy="exhaustive", objective="model_instructions"
        )
        assert random_result.best_cost >= exhaustive_result.best_cost

    def test_session_close_is_idempotent(self, scale):
        session = self._session(scale)
        with session:
            session.search(5)
        session.close()
