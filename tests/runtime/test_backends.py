"""Backend parity: serial, multiprocess and batched must agree bit-for-bit."""

import numpy as np
import pytest

from repro.machine.configs import tiny_machine
from repro.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    WorkUnit,
    resolve_backend,
)
from repro.runtime.campaigns import run_campaign, sample_units
from repro.wht.canonical import iterative_plan


def _campaign(backend, noise_sigma=0.03):
    machine = tiny_machine(noise_sigma=noise_sigma)
    return run_campaign(machine, 5, 20, seed=77, backend=backend)


class TestParity:
    def test_batched_matches_serial(self):
        serial = _campaign(SerialBackend())
        batched = _campaign(BatchedBackend())
        assert serial.plans == batched.plans
        for name in serial.columns:
            assert np.array_equal(serial.columns[name], batched.columns[name])

    def test_multiprocess_matches_serial(self):
        serial = _campaign(SerialBackend())
        multi = _campaign(MultiprocessBackend(max_workers=2))
        assert serial.plans == multi.plans
        for name in serial.columns:
            assert np.array_equal(serial.columns[name], multi.columns[name])

    def test_all_backends_identical_with_noise_disabled(self):
        tables = [
            _campaign(backend, noise_sigma=0.0)
            for backend in (SerialBackend(), BatchedBackend(), MultiprocessBackend())
        ]
        assert tables[0].equals(tables[1])
        assert tables[0].equals(tables[2])


class TestWorkUnits:
    def test_sample_units_deterministic(self):
        a = sample_units(5, 10, seed=3)
        b = sample_units(5, 10, seed=3)
        assert [u.plan for u in a] == [u.plan for u in b]
        assert [u.noise_seed for u in a] == [u.noise_seed for u in b]

    def test_noise_seeds_are_per_index(self):
        units = sample_units(5, 10, seed=3)
        assert len({u.noise_seed for u in units}) == len(units)

    def test_empty_units_short_circuit(self, machine):
        assert MultiprocessBackend().measure_units(machine, []) == []
        assert SerialBackend().measure_units(machine, []) == []


class TestBatchedBackend:
    def test_prepares_each_distinct_plan_once(self, machine, monkeypatch):
        prepares = 0
        original = type(machine).prepare

        def counting(self, plan):
            nonlocal prepares
            prepares += 1
            return original(self, plan)

        monkeypatch.setattr(type(machine), "prepare", counting)
        plan = iterative_plan(5)
        units = [WorkUnit(plan=plan, noise_seed=i) for i in range(6)]
        out = BatchedBackend().measure_units(machine, units)
        assert prepares == 1
        assert len(out) == 6

    def test_noise_still_varies_within_a_batch(self):
        machine = tiny_machine(noise_sigma=0.05)
        plan = iterative_plan(5)
        units = [WorkUnit(plan=plan, noise_seed=i) for i in range(4)]
        cycles = [m.cycles for m in BatchedBackend().measure_units(machine, units)]
        assert len(set(cycles)) > 1


class TestResolveBackend:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("multiprocess"), MultiprocessBackend)
        assert isinstance(resolve_backend("batched"), BatchedBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")

    def test_protocol_check(self):
        assert isinstance(SerialBackend(), ExecutionBackend)
        assert not isinstance(object(), ExecutionBackend)
