"""Backend parity: serial, multiprocess and batched must agree bit-for-bit."""

import numpy as np
import pytest

from repro.machine.configs import tiny_machine
from repro.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    WorkUnit,
    resolve_backend,
)
from repro.runtime.campaigns import run_campaign, sample_units
from repro.wht.canonical import iterative_plan


def _campaign(backend, noise_sigma=0.03):
    machine = tiny_machine(noise_sigma=noise_sigma)
    return run_campaign(machine, 5, 20, seed=77, backend=backend)


class TestParity:
    def test_batched_matches_serial(self):
        serial = _campaign(SerialBackend())
        batched = _campaign(BatchedBackend())
        assert serial.plans == batched.plans
        for name in serial.columns:
            assert np.array_equal(serial.columns[name], batched.columns[name])

    def test_multiprocess_matches_serial(self):
        serial = _campaign(SerialBackend())
        multi = _campaign(MultiprocessBackend(max_workers=2))
        assert serial.plans == multi.plans
        for name in serial.columns:
            assert np.array_equal(serial.columns[name], multi.columns[name])

    def test_all_backends_identical_with_noise_disabled(self):
        tables = [
            _campaign(backend, noise_sigma=0.0)
            for backend in (SerialBackend(), BatchedBackend(), MultiprocessBackend())
        ]
        assert tables[0].equals(tables[1])
        assert tables[0].equals(tables[2])


class TestWorkUnits:
    def test_sample_units_deterministic(self):
        a = sample_units(5, 10, seed=3)
        b = sample_units(5, 10, seed=3)
        assert [u.plan for u in a] == [u.plan for u in b]
        assert [u.noise_seed for u in a] == [u.noise_seed for u in b]

    def test_noise_seeds_are_per_index(self):
        units = sample_units(5, 10, seed=3)
        assert len({u.noise_seed for u in units}) == len(units)

    def test_empty_units_short_circuit(self, machine):
        assert MultiprocessBackend().measure_units(machine, []) == []
        assert SerialBackend().measure_units(machine, []) == []


class TestBatchedBackend:
    def test_prepares_each_distinct_plan_once(self, machine, monkeypatch):
        prepares = 0
        original = type(machine).prepare

        def counting(self, plan):
            nonlocal prepares
            prepares += 1
            return original(self, plan)

        monkeypatch.setattr(type(machine), "prepare", counting)
        plan = iterative_plan(5)
        units = [WorkUnit(plan=plan, noise_seed=i) for i in range(6)]
        out = BatchedBackend().measure_units(machine, units)
        assert prepares == 1
        assert len(out) == 6

    def test_noise_still_varies_within_a_batch(self):
        machine = tiny_machine(noise_sigma=0.05)
        plan = iterative_plan(5)
        units = [WorkUnit(plan=plan, noise_seed=i) for i in range(4)]
        cycles = [m.cycles for m in BatchedBackend().measure_units(machine, units)]
        assert len(set(cycles)) > 1


class TestPersistentPool:
    def test_pool_survives_across_measure_units_calls(self):
        machine = tiny_machine(noise_sigma=0.0)
        units = sample_units(5, 4, seed=1)
        with MultiprocessBackend(max_workers=2) as backend:
            backend.measure_units(machine, units)
            first_pool = backend._pool
            assert first_pool is not None
            backend.measure_units(machine, units)
            assert backend._pool is first_pool

    def test_single_unit_short_circuits_without_a_pool(self):
        machine = tiny_machine(noise_sigma=0.0)
        backend = MultiprocessBackend(max_workers=2)
        out = backend.measure_units(machine, sample_units(5, 1, seed=2))
        assert len(out) == 1
        assert backend._pool is None

    def test_changing_machine_restarts_the_pool(self):
        units = sample_units(5, 4, seed=3)
        with MultiprocessBackend(max_workers=2) as backend:
            backend.measure_units(tiny_machine(noise_sigma=0.0), units)
            first_pool = backend._pool
            other = tiny_machine(noise_sigma=0.25)
            expected = SerialBackend().measure_units(other, units)
            got = backend.measure_units(other, units)
            assert backend._pool is not first_pool
            assert [m.cycles for m in got] == [m.cycles for m in expected]

    def test_close_is_idempotent_and_backend_stays_usable(self):
        machine = tiny_machine(noise_sigma=0.0)
        units = sample_units(5, 4, seed=4)
        backend = MultiprocessBackend(max_workers=2)
        backend.measure_units(machine, units)
        backend.close()
        backend.close()
        assert backend._pool is None
        # A closed backend transparently starts a fresh pool.
        out = backend.measure_units(machine, units)
        assert len(out) == 4
        backend.close()

    def test_repr_reports_pool_state(self):
        backend = MultiprocessBackend(max_workers=2)
        assert "idle" in repr(backend)


class TestResolveBackend:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("multiprocess"), MultiprocessBackend)
        assert isinstance(resolve_backend("batched"), BatchedBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")

    def test_protocol_check(self):
        assert isinstance(SerialBackend(), ExecutionBackend)
        assert not isinstance(object(), ExecutionBackend)


class TestBatchedDefault:
    """Campaigns route through the fused batched backend by default."""

    def test_default_campaign_is_bit_identical_to_serial(self):
        machine = tiny_machine(noise_sigma=0.03)
        default = run_campaign(machine, 5, 20, seed=77)  # no backend argument
        serial = _campaign(SerialBackend())
        assert default.plans == serial.plans
        for name in serial.columns:
            assert np.array_equal(default.columns[name], serial.columns[name])

    def test_default_plan_list_is_bit_identical_to_serial(self):
        from repro.runtime.campaigns import measure_plan_list

        from repro.wht.canonical import left_recursive_plan, right_recursive_plan

        plans = [
            iterative_plan(5),
            right_recursive_plan(5),
            left_recursive_plan(5),
        ]
        default = measure_plan_list(tiny_machine(noise_sigma=0.03), plans, seed=5)
        serial = measure_plan_list(
            tiny_machine(noise_sigma=0.03), plans, seed=5, backend=SerialBackend()
        )
        assert default.equals(serial)
