"""The campaign service: cross-session dedup, worker fleet, retry, shutdown.

The load-bearing guarantee is the acceptance criterion of the service design:
any number of concurrent client sessions issuing overlapping work trigger
exactly one real measurement per distinct ``(machine_hash, plan_key, seed)``
— counter-verified against the backend, not inferred from stats — with costs
bit-identical to a single serial session.
"""

import threading

import pytest

from repro.machine.configs import tiny_machine_config
from repro.runtime.backends import BatchedBackend, WorkUnit
from repro.runtime.campaigns import sample_units
from repro.runtime.service import (
    CampaignJob,
    CampaignService,
    ServiceBackend,
    ServiceError,
    ServiceStoreView,
    serve,
)
from repro.runtime.session import Session, session
from repro.runtime.store import machine_config_hash
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.encoding import plan_key
from repro.wht.random_plans import RSUSampler

import numpy as np


class CountingBackend:
    """A backend wrapper recording every unit it actually executes."""

    name = "counting"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.executed = []  # (machine_hash, plan_key, noise_seed)

    def measure_units(self, machine, units):
        with self.lock:
            digest = machine_config_hash(machine.config)
            self.executed.extend(
                (digest, plan_key(unit.plan), unit.noise_seed) for unit in units
            )
        return self.inner.measure_units(machine, units)

    def duplicate_executions(self):
        with self.lock:
            seen, duplicates = set(), []
            for item in self.executed:
                if item in seen:
                    duplicates.append(item)
                seen.add(item)
            return duplicates

    def close(self):
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


class FlakyBackend:
    """Fails its first ``failures`` calls, then delegates."""

    name = "flaky"

    def __init__(self, failures, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.remaining = failures
        self.calls = 0

    def measure_units(self, machine, units):
        with self.lock:
            self.calls += 1
            if self.remaining > 0:
                self.remaining -= 1
                raise RuntimeError("injected worker failure")
        return self.inner.measure_units(machine, units)


@pytest.fixture
def config():
    return tiny_machine_config()


@pytest.fixture
def plans():
    return [iterative_plan(n) for n in range(3, 7)]


class TestSubmit:
    def test_lookup_returns_records_in_order(self, config, plans):
        with CampaignService() as service:
            records = service.lookup(config, plans, metrics=("cycles", "instructions"))
            assert [record.plan_key for record in records] == [
                plan_key(plan) for plan in plans
            ]
            for record in records:
                assert record["cycles"] > 0
                assert record["instructions"] > 0

    def test_repeat_lookup_measures_nothing_new(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            service.lookup(config, plans)
            first = len(counting.executed)
            service.lookup(config, plans)
            assert len(counting.executed) == first
            assert service.stats().store_hits >= len(plans)

    def test_one_measurement_populates_all_counter_metrics(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            service.lookup(config, plans, metrics=("cycles",))
            first = len(counting.executed)
            records = service.lookup(
                config, plans, metrics=("instructions", "l1_misses")
            )
            assert len(counting.executed) == first  # same channel, already known
            assert all("l1_misses" in record for record in records)

    def test_model_metrics_never_touch_the_machine(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            records = service.lookup(config, plans, metrics=("model_instructions",))
            assert counting.executed == []
            assert all(record["model_instructions"] > 0 for record in records)

    def test_distinct_seeds_measure_separately(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            service.lookup(config, plans, seed=0)
            service.lookup(config, plans, seed=1)
            assert len(counting.executed) == 2 * len(plans)
            assert counting.duplicate_executions() == []

    def test_empty_job_rejected(self, config):
        with pytest.raises(ValueError):
            CampaignJob(config, ())
        with pytest.raises(ValueError):
            CampaignJob(config, (iterative_plan(3),), metrics=())

    def test_submit_after_shutdown_raises(self, config, plans):
        service = CampaignService()
        service.shutdown()
        with pytest.raises(ServiceError):
            service.lookup(config, plans)


class TestConcurrencyStress:
    """The acceptance criterion, counter-verified."""

    def test_eight_sessions_dp14_one_measurement_per_key(self, config):
        counting = CountingBackend()
        with serve(backend=counting, workers=4) as service:
            sessions = [
                Session.connect(service, machine=config) for _ in range(8)
            ]
            results = [None] * len(sessions)
            errors = []

            def run(index):
                try:
                    results[index] = sessions[index].search(14)
                except BaseException as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(index,))
                for index in range(len(sessions))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []

            # Counter-verified: the backend never executed any
            # (machine_hash, plan_key, noise_seed) twice.
            assert counting.duplicate_executions() == []

            # Bit-identical to one serial engine-backed session.
            serial = session(machine=config)
            reference = serial.search(14, use_engine=True)
            for result in results:
                assert str(result.best_plan) == str(reference.best_plan)
                assert result.best_cost == reference.best_cost

            # Exactly as many real measurements as the serial session needed.
            assert len(counting.executed) == serial.cost_engine().measured
            stats = service.stats()
            assert stats.measured == len(counting.executed)
            assert stats.dedup_savings + stats.store_hits > 0
            assert stats.failures == 0

    def test_concurrent_identical_jobs_single_measurement(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting, workers=4) as service:
            barrier = threading.Barrier(8)
            tickets = [None] * 8

            def submit(index):
                barrier.wait()
                tickets[index] = service.submit(
                    CampaignJob(config, tuple(plans), ("cycles",), seed=0)
                )

            threads = [
                threading.Thread(target=submit, args=(index,)) for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            all_records = [ticket.result(timeout=60) for ticket in tickets]
            assert counting.duplicate_executions() == []
            assert len(counting.executed) == len(plans)
            first = [(r.plan_key, r["cycles"]) for r in all_records[0]]
            for records in all_records[1:]:
                assert [(r.plan_key, r["cycles"]) for r in records] == first
            # 8 submitters, one owner per plan: everyone else attached.
            assert sum(ticket.owned_units for ticket in tickets) == len(plans)


class TestMeasureUnits:
    def test_campaign_units_dedupe_across_clients(self, config):
        counting = CountingBackend()
        with CampaignService(backend=counting, workers=3) as service:
            units = sample_units(5, 12, seed=9)
            backend = ServiceBackend(service)
            machine_a = session(machine=config).machine
            machine_b = session(machine=config).machine
            results = [None, None]

            def run(index, machine):
                results[index] = backend.measure_units(machine, units)

            threads = [
                threading.Thread(target=run, args=(0, machine_a)),
                threading.Thread(target=run, args=(1, machine_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert counting.duplicate_executions() == []
            assert len(counting.executed) == len(units)
            for left, right in zip(results[0], results[1]):
                assert left.cycles == right.cycles
                assert left.plan == right.plan

    def test_unseeded_units_run_direct(self, config, plans):
        with CampaignService() as service:
            units = [WorkUnit(plan=plan, noise_seed=None) for plan in plans]
            measured = service.measure_units(config, units)
            assert [m.plan for m in measured] == plans
            assert all(m.cycles > 0 for m in measured)

    def test_preserves_unit_order(self, config):
        with CampaignService(workers=3) as service:
            rng = np.random.default_rng(4)
            sampler = RSUSampler()
            units = [
                WorkUnit(plan=sampler.sample(5, rng), noise_seed=seed)
                for seed in (5, 3, 9, 1, 7)
            ]
            measured = service.measure_units(config, units)
            direct = BatchedBackend().measure_units(
                session(machine=config).machine, units
            )
            assert [m.cycles for m in measured] == [m.cycles for m in direct]


class TestRetryAndFailure:
    def test_worker_failure_is_retried(self, config, plans):
        flaky = FlakyBackend(failures=2)
        with CampaignService(backend=flaky, workers=1, max_attempts=3) as service:
            records = service.lookup(config, plans, timeout=60)
            assert len(records) == len(plans)
            stats = service.stats()
            assert stats.retries == 2
            assert stats.failures == 0

    def test_exhausted_retries_surface_as_service_error(self, config, plans):
        flaky = FlakyBackend(failures=100)
        with CampaignService(backend=flaky, workers=1, max_attempts=2) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans)))
            with pytest.raises(ServiceError):
                ticket.result(timeout=60)
            assert service.stats().failures == 1
            # The failed work is no longer in flight: a later submit retries
            # fresh rather than attaching to a dead entry.
            assert service.stats().in_flight == 0

    def test_failure_then_recovery(self, config, plans):
        flaky = FlakyBackend(failures=100)
        with CampaignService(backend=flaky, workers=1, max_attempts=2) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans)))
            with pytest.raises(ServiceError):
                ticket.result(timeout=60)
            with flaky.lock:
                flaky.remaining = 0  # backend heals
            records = service.lookup(config, plans, timeout=60)
            assert len(records) == len(plans)


class TestLifecycleAndStats:
    def test_graceful_shutdown_completes_accepted_work(self, config, plans):
        service = CampaignService(workers=2)
        ticket = service.submit(CampaignJob(config, tuple(plans)))
        service.shutdown(wait=True)
        assert ticket.done()
        assert len(ticket.result(timeout=1)) == len(plans)
        service.shutdown()  # idempotent

    def test_drain_blocks_until_queue_empty(self, config, plans):
        with CampaignService(workers=2) as service:
            service.submit(CampaignJob(config, tuple(plans)))
            service.drain()
            stats = service.stats()
            assert stats.queue_depth == 0
            assert stats.in_flight == 0

    def test_stats_report_dedup_and_sharding(self, config, plans, tmp_path):
        with serve(store=str(tmp_path / "svc"), workers=2) as service:
            service.lookup(config, plans, seed=0)
            service.lookup(config, plans, seed=1)
            stats = service.stats()
            assert stats.jobs == 2
            assert stats.measured == 2 * len(plans)
            assert len(stats.shards) == 2
            assert {shard.seed for shard in stats.shards} == {0, 1}
            assert all(
                shard.distinct_plans == len(plans) for shard in stats.shards
            )
            assert "measured" in stats.describe()

    def test_service_repr_mentions_fleet(self):
        with CampaignService(workers=3, name="svc") as service:
            assert "svc" in repr(service)
            assert service.stats().workers == 3

    def test_bad_worker_counts_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            CampaignService(workers=0)
        with pytest.raises((TypeError, ValueError)):
            CampaignService(max_attempts=0)


class TestServicePersistence:
    def test_records_survive_service_restart(self, config, plans, tmp_path):
        store_path = str(tmp_path / "svc")
        counting_a = CountingBackend()
        with serve(store=store_path, backend=counting_a) as service:
            service.lookup(config, plans)
            assert len(counting_a.executed) == len(plans)
        counting_b = CountingBackend()
        with serve(store=store_path, backend=counting_b) as service:
            records = service.lookup(config, plans)
            assert counting_b.executed == []  # all served from the shard log
            assert len(records) == len(plans)

    def test_wall_metrics_never_persist(self, config, tmp_path):
        store_path = str(tmp_path / "svc")
        plan = right_recursive_plan(4)
        with serve(store=store_path) as service:
            record = service.lookup(config, [plan], metrics=("wall_time",))[0]
            assert record["wall_time"] > 0
        with serve(store=store_path) as service:
            stored = service.store.get_cost_records(
                service.client(config).key
            )
            for values in stored.values():
                assert "wall_time" not in values


class TestSessionIntegration:
    def test_connected_session_uses_service_backend_and_store_view(self, config):
        with CampaignService() as service:
            sess = Session.connect(service, machine=config)
            assert isinstance(sess.backend, ServiceBackend)
            assert isinstance(sess.store, ServiceStoreView)
            assert sess.service is service

    def test_connected_campaign_matches_plain_session(self, config):
        with CampaignService() as service:
            connected = Session.connect(service, machine=config, scale="ci")
            plain = session(machine=config, scale="ci")
            assert connected.campaign(5, 10).equals(plain.campaign(5, 10))

    def test_two_connected_sessions_share_campaign_work(self, config):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            a = Session.connect(service, machine=config, scale="ci")
            b = Session.connect(service, machine=config, scale="ci")
            table_a = a.campaign(5, 10)
            executed = len(counting.executed)
            table_b = b.campaign(5, 10)
            assert len(counting.executed) == executed  # b measured nothing
            assert table_a.equals(table_b)

    def test_store_view_refuses_writes_and_clear(self, config, plans):
        with CampaignService() as service:
            view = ServiceStoreView(service.store)
            client = service.client(config)
            client.records(plans)
            before = view.get_cost_records(client.key)
            assert before
            view.append_cost_records(client.key, {"x": {"cycles": 1.0}})
            view.clear()
            assert view.get_cost_records(client.key) == before

    def test_client_counters_attribute_owned_work(self, config, plans):
        with CampaignService() as service:
            first = service.client(config, seed=0)
            second = service.client(config, seed=0)
            first.records(plans)
            second.records(plans)
            assert first.measured == len(plans)
            assert second.measured == 0
            assert second.evaluations == len(plans)

    def test_session_factory_accepts_service(self, config):
        with CampaignService() as service:
            sess = session(machine=config, service=service)
            assert sess.service is service
            assert isinstance(sess.backend, ServiceBackend)
