"""Tests for the Session façade: resolution, figures, persistence."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.config import ci_scale
from repro.machine.configs import tiny_machine, tiny_machine_config
from repro.machine.machine import SimulatedMachine
from repro.runtime.backends import MultiprocessBackend, SerialBackend
from repro.runtime.store import DiskStore, MemoryStore, NullStore


def _tiny_session(backend="serial", store=None, noise=0.02, rng=7):
    return repro.session(
        machine=tiny_machine(noise_sigma=noise, rng=rng),
        scale=ci_scale(),
        backend=backend,
        store=store if store is not None else MemoryStore(),
    )


class TestSessionFactory:
    def test_presets_resolve(self):
        sess = repro.session(machine="tiny", scale="ci", backend="serial", store="none")
        assert sess.machine.config.name == "tiny"
        assert sess.scale == ci_scale()
        assert isinstance(sess.backend, SerialBackend)
        assert isinstance(sess.store, NullStore)

    def test_concrete_objects_pass_through(self):
        machine = tiny_machine()
        store = MemoryStore()
        sess = repro.session(machine=machine, scale=ci_scale(), store=store)
        assert sess.machine is machine
        assert sess.store is store

    def test_machine_config_resolves(self):
        sess = repro.session(machine=tiny_machine_config(), scale="ci", store="none")
        assert isinstance(sess.machine, SimulatedMachine)

    def test_unknown_presets_raise(self):
        with pytest.raises(ValueError):
            repro.session(machine="cray")
        with pytest.raises(ValueError):
            repro.session(scale="galactic")
        with pytest.raises(ValueError):
            repro.session(backend="quantum")

    def test_describe_mentions_configuration(self):
        sess = repro.session(machine="tiny", scale="ci", backend="batched", store="none")
        text = sess.describe()
        assert "tiny" in text and "batched" in text


class TestSessionCampaigns:
    def test_tables_memoised_per_session(self):
        sess = _tiny_session()
        assert sess.small_table() is sess.small_table()
        assert sess.large_table() is sess.large_table()

    def test_campaign_count_defaults_to_scale(self):
        sess = _tiny_session()
        assert len(sess.small_table()) == sess.scale.sample_count

    def test_store_shared_across_sessions(self):
        store = MemoryStore()
        first = _tiny_session(store=store)
        table = first.campaign(5, 10)
        second = _tiny_session(store=store)
        assert second.campaign(5, 10) is table

    def test_campaign_forwards_sampler_settings(self):
        sess = _tiny_session()
        table = sess.campaign(6, 10, max_children=2)
        assert all(
            len(node.children) <= 2
            for plan in table.plans
            for node in plan.splits()
        )
        # distinct sampler settings get distinct memoisation slots
        assert sess.campaign(6, 10, max_children=2) is table
        assert sess.campaign(6, 10) is not table

    def test_measure_plans(self):
        sess = _tiny_session()
        from repro.wht.canonical import canonical_plans

        table = sess.measure_plans(list(canonical_plans(5).values()))
        assert len(table) == 3

    def test_search_strategies(self):
        sess = _tiny_session()
        dp = sess.search(5)
        assert dp.strategy == "dynamic-programming"
        rnd = sess.search(5, strategy="random", samples=20)
        assert rnd.best_plan is not None
        with pytest.raises(ValueError):
            sess.search(5, strategy="simulated-annealing")


class TestAllFiguresAcrossBackends:
    """Acceptance: all eleven figures end-to-end, serial vs multiprocess,
    identical numerical results."""

    @pytest.fixture(scope="class")
    def results(self):
        serial = _tiny_session(backend="serial")
        multi = _tiny_session(backend=MultiprocessBackend(max_workers=2))
        return serial, multi, serial.run_all(), multi.run_all()

    def test_every_figure_present(self, results):
        _, _, serial_results, multi_results = results
        expected = {f"figure{i}" for i in range(1, 12)} | {"correlations", "theory"}
        assert expected <= set(serial_results)
        assert expected <= set(multi_results)

    def test_campaign_tables_bit_identical(self, results):
        serial, multi, _, _ = results
        for getter in ("small_table", "large_table"):
            a, b = getattr(serial, getter)(), getattr(multi, getter)()
            assert a.plans == b.plans
            for name in a.columns:
                assert np.array_equal(a.columns[name], b.columns[name])

    def test_figure_numerics_identical(self, results):
        _, _, serial_results, multi_results = results
        assert serial_results["figure9"].best == multi_results["figure9"].best
        sc, mc = serial_results["correlations"], multi_results["correlations"]
        assert sc.rho_small_instructions == mc.rho_small_instructions
        assert sc.rho_large_instructions == mc.rho_large_instructions
        assert sc.rho_large_misses == mc.rho_large_misses
        assert sc.rho_large_combined == mc.rho_large_combined

    def test_sweep_identical(self, results):
        serial, multi, serial_results, multi_results = results
        assert serial_results["figure1"].sizes == multi_results["figure1"].sizes
        for name in serial_results["figure1"].measurements:
            a = serial_results["figure1"].metric(name, "cycles")
            b = multi_results["figure1"].metric(name, "cycles")
            assert a == b


class TestDiskStorePersistence:
    def test_second_session_hits_cache_with_zero_measure_calls(self, tmp_path, monkeypatch):
        path = tmp_path / "campaigns"
        first = repro.session(machine="tiny", scale="ci", backend="serial", store=path)
        table = first.campaign(5, 15)

        calls = 0
        original = SimulatedMachine.measure

        def counting(self, plan, rng=None):
            nonlocal calls
            calls += 1
            return original(self, plan, rng=rng)

        monkeypatch.setattr(SimulatedMachine, "measure", counting)
        second = repro.session(machine="tiny", scale="ci", backend="serial", store=path)
        reloaded = second.campaign(5, 15)
        assert calls == 0
        assert table.equals(reloaded)

    def test_cross_process_cache_hit(self, tmp_path, monkeypatch):
        """A real second process completes the campaign via DiskStore hit."""
        path = tmp_path / "campaigns"
        src_dir = Path(repro.__file__).resolve().parents[1]
        script = (
            "import repro; "
            f"sess = repro.session(machine='tiny', scale='ci', backend='serial', store={str(path)!r}); "
            "table = sess.campaign(5, 15); print(len(table))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "15"

        calls = 0
        original = SimulatedMachine.measure

        def counting(self, plan, rng=None):
            nonlocal calls
            calls += 1
            return original(self, plan, rng=rng)

        monkeypatch.setattr(SimulatedMachine, "measure", counting)
        sess = repro.session(machine="tiny", scale="ci", backend="serial", store=path)
        table = sess.campaign(5, 15)
        assert calls == 0
        assert len(table) == 15

    def test_different_backends_share_disk_entries(self, tmp_path):
        path = tmp_path / "campaigns"
        serial = repro.session(machine="tiny", scale="ci", backend="serial", store=path)
        a = serial.campaign(5, 12)
        batched = repro.session(machine="tiny", scale="ci", backend="batched", store=path)
        b = batched.campaign(5, 12)
        assert a.equals(b)
        assert len(list(DiskStore(path).entries())) == 1


class TestSuiteSessionIntegration:
    def test_suite_binds_to_session(self):
        sess = _tiny_session()
        suite = sess.suite()
        assert suite.session is sess
        assert suite.machine is sess.machine
        assert sess.suite() is suite

    def test_legacy_suite_builds_own_session(self):
        from repro.experiments.runner import ExperimentSuite

        suite = ExperimentSuite(machine=tiny_machine(), scale=ci_scale())
        assert suite.session is not None
        assert suite.session.machine is suite.machine
        assert isinstance(suite.session.backend, SerialBackend)

    def test_suite_rejects_conflicting_machine_and_session(self):
        from repro.experiments.runner import ExperimentSuite

        sess = _tiny_session()
        with pytest.raises(ValueError, match="conflicting"):
            ExperimentSuite(machine=tiny_machine(), session=sess)
        other_scale = ci_scale().with_samples(ci_scale().sample_count + 1)
        with pytest.raises(ValueError, match="conflicting"):
            ExperimentSuite(scale=other_scale, session=sess)
        # consistent values are fine
        suite = ExperimentSuite(machine=sess.machine, scale=sess.scale, session=sess)
        assert suite.session is sess

    def test_suite_tables_flow_through_session(self):
        sess = _tiny_session()
        suite = sess.suite()
        assert suite.small_table() is sess.small_table()
        assert suite.sweep() is sess.canonical_sweep()
