"""Fault injection and the service's failure discipline, end to end.

The load-bearing guarantee (ISSUE acceptance, DESIGN.md §12): under a
:class:`FaultPlan` injecting >= 20% backend failures and torn store tails,
a DP search through the service **completes**, is **bit-identical** to a
fault-free serial run, persists **zero conflicting records** per
``(machine_hash, plan_key, seed)``, and deterministic-poison jobs end in
**quarantine** instead of an infinite retry loop.

``REPRO_CHAOS_SEED`` selects the fault schedule so CI can run a seed
matrix; every test must hold for any seed.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.machine.configs import tiny_machine_config
from repro.runtime.backends import BatchedBackend
from repro.runtime.faults import (
    FaultDecision,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    FaultyStore,
    InjectedCrash,
    InjectedFault,
)
from repro.runtime.metrics import counter_metric_names
from repro.runtime.service import (
    CampaignJob,
    CampaignService,
    ServiceError,
    _Task,
)
from repro.runtime.session import Session, session
from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.store import CostLogKey, MemoryStore, machine_config_hash
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.encoding import plan_key
from repro.wht.grammar import parse_plan

#: The CI chaos matrix sets this; locally it defaults to schedule 0.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class CountingBackend:
    """A backend wrapper recording every unit it actually executes."""

    name = "counting"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.executed = []  # (machine_hash, plan_key, noise_seed)

    def measure_units(self, machine, units):
        with self.lock:
            digest = machine_config_hash(machine.config)
            self.executed.extend(
                (digest, plan_key(unit.plan), unit.noise_seed) for unit in units
            )
        return self.inner.measure_units(machine, units)

    def duplicate_executions(self):
        with self.lock:
            seen, duplicates = set(), []
            for item in self.executed:
                if item in seen:
                    duplicates.append(item)
                seen.add(item)
            return duplicates

    def close(self):
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


class FlakyBackend:
    """Fails its first ``failures`` calls, then delegates."""

    name = "flaky"

    def __init__(self, failures, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.remaining = failures
        self.calls = 0

    def measure_units(self, machine, units):
        with self.lock:
            self.calls += 1
            if self.remaining > 0:
                self.remaining -= 1
                raise RuntimeError("injected worker failure")
        return self.inner.measure_units(machine, units)


@pytest.fixture
def config():
    return tiny_machine_config()


@pytest.fixture
def plans():
    return [iterative_plan(4), right_recursive_plan(4)]


class GatedBackend:
    """Blocks every batch on an event — for deadline/timeout tests."""

    name = "gated"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else CountingBackend()
        self.gate = threading.Event()

    def measure_units(self, machine, units):
        if not self.gate.wait(timeout=30.0):
            raise RuntimeError("gate never opened")
        return self.inner.measure_units(machine, units)

    def close(self):
        self.gate.set()
        self.inner.close()


class DieOnceBackend:
    """Kills its calling thread on the first batch, then behaves."""

    name = "die-once"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.died = False

    def measure_units(self, machine, units):
        with self.lock:
            if not self.died:
                self.died = True
                raise InjectedCrash("simulated segfault")
        return self.inner.measure_units(machine, units)

    def close(self):
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


class TestFaultPlanDeterminism:
    def test_decide_sequence_is_a_pure_function_of_seed(self):
        spec = FaultSpec(error_rate=0.3, crash_rate=0.1, torn_tail_rate=0.2, delay_rate=0.1)
        first = FaultPlan(seed=CHAOS_SEED, backend=spec, store=spec)
        second = FaultPlan(seed=CHAOS_SEED, backend=spec, store=spec)
        for site in ("backend", "store"):
            assert [first.decide(site) for _ in range(64)] == [
                second.decide(site) for _ in range(64)
            ]

    def test_peek_never_consumes(self):
        plan = FaultPlan(seed=CHAOS_SEED, backend=FaultSpec(error_rate=0.5))
        previews = [plan.peek("backend", index) for index in range(32)]
        assert plan.calls("backend") == 0
        assert [plan.decide("backend") for _ in range(32)] == previews

    def test_sites_count_independently(self):
        plan = FaultPlan(seed=CHAOS_SEED)
        plan.decide("backend")
        plan.decide("backend")
        plan.decide("store")
        assert plan.calls("backend") == 2
        assert plan.calls("store") == 1

    def test_different_seeds_differ(self):
        spec = FaultSpec(error_rate=0.5)
        a = FaultPlan(seed=0, backend=spec)
        b = FaultPlan(seed=1, backend=spec)
        assert [a.decide("backend") for _ in range(64)] != [
            b.decide("backend") for _ in range(64)
        ]

    def test_extreme_rates(self):
        always = FaultPlan(seed=CHAOS_SEED, backend=FaultSpec(error_rate=1.0))
        never = FaultPlan(seed=CHAOS_SEED, backend=FaultSpec())
        assert all(always.decide("backend").error for _ in range(16))
        assert not any(never.decide("backend").fails for _ in range(16))
        assert always.injected("backend") == 16
        assert never.injected() == 0

    def test_empirical_rate_tracks_spec(self):
        # Fixed seed on purpose: the draw quality claim, not the matrix.
        plan = FaultPlan(seed=12345, backend=FaultSpec(error_rate=0.25))
        hits = sum(plan.decide("backend").error for _ in range(2000))
        assert 0.20 < hits / 2000 < 0.30

    def test_at_most_one_failure_mode_per_call(self):
        spec = FaultSpec(error_rate=0.9, crash_rate=0.9, torn_tail_rate=0.9, kill_rate=0.9)
        plan = FaultPlan(seed=CHAOS_SEED, backend=spec, store=spec)
        for _ in range(64):
            decision = plan.decide("backend")
            modes = [
                decision.error,
                decision.crash_fraction is not None,
                decision.torn,
                decision.kill,
            ]
            assert sum(modes) <= 1

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(error_rate=1.5)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(delay=-1.0)
        assert FaultSpec(error_rate=0.5, crash_rate=0.5).total_failure_rate == 0.75

    def test_decision_fails_property(self):
        assert not FaultDecision(index=0).fails
        assert FaultDecision(index=0, error=True).fails
        assert FaultDecision(index=0, crash_fraction=0.5).fails


class TestFaultyBackend:
    def test_error_injection_raises_before_work(self, config, plans):
        counting = CountingBackend()
        plan = FaultPlan(seed=CHAOS_SEED, backend=FaultSpec(error_rate=1.0))
        faulty = FaultyBackend(counting, plan)
        machine = repro.SimulatedMachine(config)
        units = [repro.runtime.WorkUnit(plan=p, noise_seed=1) for p in plans]
        with pytest.raises(InjectedFault):
            faulty.measure_units(machine, units)
        assert counting.executed == []

    def test_crash_executes_a_strict_prefix(self, config):
        counting = CountingBackend()
        plan = FaultPlan(seed=CHAOS_SEED, backend=FaultSpec(crash_rate=1.0))
        faulty = FaultyBackend(counting, plan)
        machine = repro.SimulatedMachine(config)
        units = [
            repro.runtime.WorkUnit(plan=iterative_plan(n), noise_seed=1)
            for n in (3, 4, 5, 6)
        ]
        with pytest.raises(InjectedFault, match="mid-batch"):
            faulty.measure_units(machine, units)
        # Partial progress happened, but the caller was told nothing.
        assert len(counting.executed) < len(units)

    def test_kill_is_not_an_exception(self, config, plans):
        plan = FaultPlan(seed=CHAOS_SEED, backend=FaultSpec(kill_rate=1.0))
        faulty = FaultyBackend(BatchedBackend(), plan)
        machine = repro.SimulatedMachine(config)
        units = [repro.runtime.WorkUnit(plan=plans[0], noise_seed=1)]
        with pytest.raises(InjectedCrash):
            faulty.measure_units(machine, units)
        assert not issubclass(InjectedCrash, Exception)

    def test_poison_overrides_clean_rates(self, config, plans):
        plan = FaultPlan(seed=CHAOS_SEED, poison_plans=[plans[0]])
        faulty = FaultyBackend(BatchedBackend(), plan)
        machine = repro.SimulatedMachine(config)
        units = [repro.runtime.WorkUnit(plan=p, noise_seed=1) for p in plans]
        with pytest.raises(InjectedFault, match="poison"):
            faulty.measure_units(machine, units)
        clean = [repro.runtime.WorkUnit(plan=plans[1], noise_seed=1)]
        assert len(faulty.measure_units(machine, clean)) == 1

    def test_zero_rates_are_bit_identical_to_inner(self, config, plans):
        plan = FaultPlan(seed=CHAOS_SEED)
        machine = repro.SimulatedMachine(config)
        units = [repro.runtime.WorkUnit(plan=p, noise_seed=7) for p in plans]
        faulty = FaultyBackend(BatchedBackend(), plan).measure_units(machine, units)
        direct = BatchedBackend().measure_units(repro.SimulatedMachine(config), units)
        assert [m.cycles for m in faulty] == [m.cycles for m in direct]


class TestFaultyStore:
    KEY = CostLogKey(machine_hash="f" * 64, seed=0)

    def test_error_raises_before_writing(self, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED, store=FaultSpec(error_rate=1.0))
        with ShardedRecordStore(tmp_path) as inner:
            store = FaultyStore(inner, plan)
            with pytest.raises(InjectedFault):
                store.append_cost_records(self.KEY, {"p": {"cycles": 1.0}})
            assert inner.get_cost_records(self.KEY) == {}

    def test_torn_tail_loses_at_most_the_last_record(self, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED, store=FaultSpec(torn_tail_rate=1.0))
        batch = {f"p{i}": {"cycles": float(i)} for i in range(4)}
        with ShardedRecordStore(tmp_path) as inner:
            store = FaultyStore(inner, plan)
            with pytest.raises(InjectedFault, match="torn"):
                store.append_cost_records(self.KEY, batch)
        # A fresh reader over the torn log: only complete lines survive.
        with ShardedRecordStore(tmp_path) as reopened:
            recovered = reopened.get_cost_records(self.KEY)
            assert len(recovered) >= len(batch) - 1
            for key, values in recovered.items():
                assert values == batch[key]
            [log] = reopened.shard_paths()
            lines = Path(log).read_text(encoding="utf-8").split("\n")
            torn = [line for line in lines if line.strip() and not _parses(line)]
            assert len(torn) <= 1

    def test_retry_after_torn_tail_merges_idempotently(self, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED, store=FaultSpec(torn_tail_rate=1.0))
        batch = {f"p{i}": {"cycles": float(i), "instructions": float(2 * i)} for i in range(3)}
        with ShardedRecordStore(tmp_path) as inner:
            store = FaultyStore(inner, plan)
            with pytest.raises(InjectedFault):
                store.append_cost_records(self.KEY, batch)
            plan.store = FaultSpec()  # heal, then retry the same append
            store.append_cost_records(self.KEY, batch)
            assert inner.get_cost_records(self.KEY) == batch

    def test_reads_and_clear_delegate(self, tmp_path):
        plan = FaultPlan(seed=CHAOS_SEED)
        with ShardedRecordStore(tmp_path) as inner:
            store = FaultyStore(inner, plan)
            store.append_cost_records(self.KEY, {"p": {"cycles": 1.0}})
            assert store.get_cost_records(self.KEY) == {"p": {"cycles": 1.0}}
            assert store.shard_stats()  # optional protocol passes through
            store.clear()
            assert store.get_cost_records(self.KEY) == {}


def _parses(line):
    try:
        json.loads(line)
        return True
    except ValueError:
        return False


class TestRetryDiscipline:
    def test_transient_failures_retried_with_counted_attempts(self, config, plans):
        flaky = FlakyBackend(failures=2)
        with CampaignService(backend=flaky, max_attempts=4, backoff_base=0.001) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans)))
            records = ticket.result(timeout=60)
            assert len(records) == len(plans)
            stats = service.stats()
            assert stats.retries == 2
            assert stats.failures == 0
            assert flaky.calls == 3  # 2 failures + 1 success, nothing more

    def test_attempts_bounded_exactly_by_max_attempts(self, config, plans):
        flaky = FlakyBackend(failures=10**6)
        with CampaignService(backend=flaky, max_attempts=3, backoff_base=0.001) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans)))
            with pytest.raises(ServiceError):
                ticket.result(timeout=60)
            service.drain()
            # No hot loop: the backend saw exactly max_attempts calls.
            assert flaky.calls == 3
            stats = service.stats()
            assert stats.retries == 2
            assert stats.failures == 1
            assert stats.quarantined == 1

    def test_backoff_is_exponential_bounded_and_deterministic(self, config, plans):
        def delays(retry_seed):
            service = CampaignService(
                backend=BatchedBackend(), backoff_base=0.1, backoff_cap=0.4,
                retry_seed=retry_seed,
            )
            try:
                task = _Task(
                    channel="counter",
                    config=config,
                    log_key=CostLogKey(machine_hash="a" * 64, seed=0),
                    plan_by_key={plan_key(plans[0]): plans[0]},
                )
                out = []
                for attempt in (1, 2, 3, 4, 5):
                    task.attempts = attempt
                    out.append(service._backoff_delay(task))
                return out
            finally:
                service.shutdown()

        first, second, other = delays(0), delays(0), delays(1)
        assert first == second
        assert first != other
        for attempt, delay in enumerate(first, start=1):
            ceiling = min(0.1 * 2.0 ** (attempt - 1), 0.4)
            assert 0.5 * ceiling <= delay < 1.5 * ceiling

    def test_zero_backoff_base_disables_delay(self, config, plans):
        with CampaignService(backend=BatchedBackend(), backoff_base=0.0) as service:
            task = _Task(
                channel="counter",
                config=config,
                log_key=CostLogKey(machine_hash="a" * 64, seed=0),
                plan_by_key={plan_key(plans[0]): plans[0]},
                attempts=3,
            )
            assert service._backoff_delay(task) == 0.0

    def test_backing_off_poison_does_not_starve_healthy_work(self, config):
        poison = iterative_plan(5)
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[poison])
        backend = FaultyBackend(BatchedBackend(), fplan)
        with CampaignService(
            backend=backend, workers=1, max_attempts=4, backoff_base=0.1, backoff_cap=0.2
        ) as service:
            poisoned = service.submit(CampaignJob(config, (poison,)))
            healthy = service.submit(CampaignJob(config, (right_recursive_plan(5),)))
            started = time.monotonic()
            assert len(healthy.result(timeout=60)) == 1
            # The healthy job did not wait out the poison job's retries.
            assert time.monotonic() - started < 5.0
            with pytest.raises(ServiceError):
                poisoned.result(timeout=60)


class TestDeadlinesAndWaiterLeak:
    def test_job_deadline_expires_and_detaches(self, config, plans):
        gated = GatedBackend()
        with CampaignService(backend=gated, workers=1) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans), deadline=0.15))
            with pytest.raises(ServiceError, match="deadline"):
                ticket.result()
            gated.gate.set()
            service.drain()
            assert service.stats().in_flight == 0

    def test_invalid_deadline_rejected(self, config, plans):
        with pytest.raises(ValueError, match="deadline"):
            CampaignJob(config, tuple(plans), deadline=0.0)

    def test_timed_out_ticket_does_not_wedge_later_submits(self, config, plans):
        gated = GatedBackend()
        with CampaignService(backend=gated, workers=1) as service:
            first = service.submit(CampaignJob(config, tuple(plans)))
            with pytest.raises(ServiceError, match="timed out"):
                first.result(timeout=0.05)
            # The abandoned waiter must not absorb this fresh submission.
            second = service.submit(CampaignJob(config, tuple(plans)))
            gated.gate.set()
            records = second.result(timeout=60)
            assert len(records) == len(plans)
            service.drain()
            assert service.stats().in_flight == 0
            # Idempotent execution: the retry-era double-submit measured
            # each unit exactly once for all that.
            assert gated.inner.duplicate_executions() == []

    def test_detach_is_idempotent(self, config, plans):
        gated = GatedBackend()
        with CampaignService(backend=gated, workers=1) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans)))
            ticket.detach()
            ticket.detach()
            gated.gate.set()
            service.drain()
            assert service.stats().in_flight == 0


class TestQuarantine:
    def test_poison_job_quarantined_not_looped(self, config):
        poison = iterative_plan(5)
        counting = CountingBackend()
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[poison])
        backend = FaultyBackend(counting, fplan)
        with CampaignService(backend=backend, max_attempts=3, backoff_base=0.001) as service:
            ticket = service.submit(CampaignJob(config, (poison,)))
            with pytest.raises(ServiceError):
                ticket.result(timeout=60)
            service.drain()
            entries = service.quarantined()
            assert len(entries) == 1
            entry = entries[0]
            assert entry.attempts == 3
            assert plan_key(poison) in entry.plan_keys
            assert entry.machine_hash == machine_config_hash(config)
            assert "poison" in entry.error
            assert counting.executed == []  # poison never reached the machine
            assert service.health().state == "degraded"

    def test_requeue_after_heal_serves_bit_identical_records(self, config):
        poison = iterative_plan(5)
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[poison])
        with CampaignService(
            backend=FaultyBackend(BatchedBackend(), fplan),
            max_attempts=2, backoff_base=0.001,
        ) as service:
            with pytest.raises(ServiceError):
                service.submit(CampaignJob(config, (poison,))).result(timeout=60)
            service.drain()
            fplan.poison_keys = frozenset()  # operator fixed the poison
            assert service.requeue_quarantined() == 1
            service.drain()
            assert service.quarantined() == ()
            revived = service.submit(CampaignJob(config, (poison,))).result(timeout=60)
            reference = session(machine=config, store=MemoryStore()).cost_engine().records([poison])
            assert revived[0].values["cycles"] == reference[0].values["cycles"]
            assert service.health().state == "ok"

    def test_requeue_filters_by_token(self, config):
        poison = iterative_plan(5)
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[poison])
        with CampaignService(
            backend=FaultyBackend(BatchedBackend(), fplan),
            max_attempts=2, backoff_base=0.001,
        ) as service:
            with pytest.raises(ServiceError):
                service.submit(CampaignJob(config, (poison,))).result(timeout=60)
            service.drain()
            assert service.requeue_quarantined(tokens=["no-such-token"]) == 0
            assert len(service.quarantined()) == 1

    def test_requeue_after_shutdown_raises(self, config):
        service = CampaignService()
        service.shutdown()
        with pytest.raises(ServiceError):
            service.requeue_quarantined()

    def test_fresh_submit_of_quarantined_key_gets_a_clean_budget(self, config):
        # Quarantine isolates tasks, it does not blacklist keys: a healed
        # backend plus a *new* submit succeeds without any requeue.
        poison = iterative_plan(5)
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[poison])
        with CampaignService(
            backend=FaultyBackend(BatchedBackend(), fplan),
            max_attempts=2, backoff_base=0.001,
        ) as service:
            with pytest.raises(ServiceError):
                service.submit(CampaignJob(config, (poison,))).result(timeout=60)
            service.drain()
            fplan.poison_keys = frozenset()
            fresh = service.submit(CampaignJob(config, (poison,))).result(timeout=60)
            assert fresh[0].values["cycles"] > 0


class TestSupervision:
    def test_dead_worker_is_respawned_and_task_retried(self, config, plans):
        backend = DieOnceBackend()
        with CampaignService(
            backend=backend, workers=1, supervision_interval=0.05, backoff_base=0.001
        ) as service:
            ticket = service.submit(CampaignJob(config, tuple(plans)))
            records = ticket.result(timeout=60)
            assert len(records) == len(plans)
            stats = service.stats()
            assert stats.respawns >= 1
            assert stats.retries >= 1
            health = service.health()
            assert health.ok
            assert health.alive_workers == health.expected_workers == 1

    def test_health_snapshot_states(self, config):
        service = CampaignService(workers=2)
        try:
            health = service.health()
            assert health.state == "ok"
            assert health.alive_workers == 2
            assert "workers=2/2" in health.describe()
        finally:
            service.shutdown()
        assert service.health().state == "closed"
        assert not service.health().ok


class TestGracefulDegradation:
    def test_fallback_covers_a_poisoned_batch_bit_identically(self, config, plans):
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[plans[0]])
        with CampaignService(
            backend=FaultyBackend(BatchedBackend(), fplan),
            max_attempts=2, backoff_base=0.001,
        ) as service:
            client = service.client(config, fallback=True)
            records = client.records(plans)
            assert client.fallbacks == 1
            reference = session(machine=config, store=MemoryStore()).cost_engine().records(plans)
            assert [r.values["cycles"] for r in records] == [
                r.values["cycles"] for r in reference
            ]

    def test_no_fallback_means_the_error_surfaces(self, config, plans):
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[plans[0]])
        with CampaignService(
            backend=FaultyBackend(BatchedBackend(), fplan),
            max_attempts=2, backoff_base=0.001,
        ) as service:
            client = service.client(config, fallback=False)
            with pytest.raises(ServiceError):
                client.records(plans)
            assert client.fallbacks == 0

    def test_fallback_routes_around_a_closed_service(self, config, plans):
        service = CampaignService()
        healthy = service.client(config, fallback=False)
        expected = [r.values["cycles"] for r in healthy.records(plans)]
        service.shutdown()
        degraded = service.client(config, fallback=True)
        records = degraded.records(plans)
        assert degraded.fallbacks == 1
        assert [r.values["cycles"] for r in records] == expected
        strict = service.client(config, fallback=False)
        with pytest.raises(ServiceError):
            strict.records(plans)

    def test_connected_session_fallback_flag_reaches_the_client(self, config):
        with CampaignService() as service:
            armed = Session.connect(service, machine=config, fallback=True)
            plain = Session.connect(service, machine=config)
            assert armed.cost_engine().fallback is True
            assert plain.cost_engine().fallback is False


class TestChaosInvariant:
    """The acceptance criterion, at the acceptance scale (DP n=14)."""

    N = 14

    def test_chaotic_search_is_bit_identical_with_poison_quarantined(
        self, config, tmp_path
    ):
        reference = session(machine=config, scale="ci", store=MemoryStore())
        expected = reference.search(self.N, use_engine=True)
        poison_key = plan_key(expected.best_plan)

        fplan = FaultPlan(
            seed=CHAOS_SEED,
            # ~22% of backend batches fail (error or mid-batch crash).
            backend=FaultSpec(error_rate=0.15, crash_rate=0.08),
            # ~19% of appends fail, most tearing the log's tail.
            store=FaultSpec(error_rate=0.04, torn_tail_rate=0.15),
            poison_plans=[poison_key],
        )
        inner_store = ShardedRecordStore(tmp_path / "campaigns")
        service = CampaignService(
            store=FaultyStore(inner_store, fplan),
            backend=FaultyBackend(BatchedBackend(), fplan),
            workers=3,
            max_attempts=6,
            backoff_base=0.002,
            backoff_cap=0.05,
        )
        try:
            sess = Session.connect(service, machine=config, scale="ci", fallback=True)
            result = sess.search(self.N, use_engine=True)

            # 1. The search completed and is bit-identical to fault-free.
            assert plan_key(result.best_plan) == poison_key
            assert result.best_cost == expected.best_cost

            # 2. Chaos actually happened (this is not a vacuous pass).  A
            #    per-site floor would be flaky — a seed can legitimately
            #    draw no failures for one site's ~16 calls — so the floor
            #    is across sites, plus the always-on poison failures.
            assert fplan.injected() > 0
            assert fplan.calls("backend") > 0 and fplan.calls("store") > 0
            assert service.stats().failures > 0  # the poison batch, at least

            # 3. The poison job is in quarantine, not looping: its batch
            #    failed exactly max_attempts times and was dead-lettered.
            tokens = [
                entry
                for entry in service.quarantined()
                if poison_key in entry.plan_keys
            ]
            assert tokens, "poison batch should be dead-lettered"
            assert all(entry.attempts == service.max_attempts for entry in tokens)

            # 4. The client degraded gracefully for the poisoned batches.
            client = sess.cost_engine()
            assert client.fallbacks >= 1

            service.drain()
            log_key = client.key
        finally:
            service.shutdown()
            inner_store.close()

        # 5. Zero duplicate records: a fresh reader sees one value set per
        #    plan, every line in the log agrees with every other line for
        #    its key (torn-tail retries may re-append, but only values
        #    bit-identical to what a fault-free run persists).
        with ShardedRecordStore(tmp_path / "campaigns") as reopened:
            persisted = reopened.get_cost_records(log_key)
            assert persisted  # the search did persist records
            by_key = {}
            for log in reopened.shard_paths():
                for line in Path(log).read_text(encoding="utf-8").splitlines():
                    if not line.strip() or not _parses(line):
                        continue
                    payload = json.loads(line)
                    if "p" not in payload:
                        continue  # header
                    for metric, value in payload["v"].items():
                        seen = by_key.setdefault((payload["p"], metric), value)
                        assert seen == value, (
                            f"conflicting persisted values for {payload['p']}:{metric}"
                        )

        # 6. Every persisted record is bit-identical to a fault-free
        #    serial engine's evaluation of the same plan.
        engine = session(machine=config, scale="ci", store=MemoryStore()).cost_engine()
        keys = sorted(persisted)
        clean = engine.records([parse_plan(key) for key in keys], counter_metric_names())
        for key, record in zip(keys, clean):
            for metric, value in persisted[key].items():
                if metric in record.values:
                    assert record.values[metric] == value, (
                        f"{key}:{metric} diverged from the fault-free run"
                    )


CHILD_APPEND = """
import sys
from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.store import CostLogKey

store = ShardedRecordStore(sys.argv[1], auto_compact=None)
key = CostLogKey(machine_hash="f" * 64, seed=0)
index = 0
while True:
    store.append_cost_records(
        key, {f"p{index}": {"cycles": float(index), "instructions": float(2 * index)}}
    )
    print(index, flush=True)
    index += 1
"""

CHILD_COMPACT = """
import sys
from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.store import CostLogKey

store = ShardedRecordStore(sys.argv[1], auto_compact=None)
key = CostLogKey(machine_hash="c" * 64, seed=0)
for index in range(60):
    store.append_cost_records(key, {f"p{index % 6}": {"cycles": float(index)}})
print("APPENDED", flush=True)
cycle = 0
while True:
    store.compact_cost_records(key)
    store.append_cost_records(key, {f"q{cycle}": {"cycles": float(cycle)}})
    print(f"C{cycle}", flush=True)
    cycle += 1
"""


def _spawn_writer(tmp_path, source, name):
    script = tmp_path / name
    script.write_text(source, encoding="utf-8")
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script), str(tmp_path / "store")],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _readline_or_fail(proc):
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(f"writer died early: {proc.stderr.read()}")
    return line.strip()


class TestSigkillRecovery:
    """A real process killed mid-write: the durability half of §12."""

    def test_sigkill_mid_append_loses_at_most_the_last_record(self, tmp_path):
        proc = _spawn_writer(tmp_path, CHILD_APPEND, "writer_append.py")
        try:
            confirmed = -1
            while confirmed < 39:
                confirmed = int(_readline_or_fail(proc))
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.kill()
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

        key = CostLogKey(machine_hash="f" * 64, seed=0)
        with ShardedRecordStore(tmp_path / "store") as store:
            records = store.get_cost_records(key)
            # Every confirmed append is durable...
            for index in range(confirmed + 1):
                assert records[f"p{index}"] == {
                    "cycles": float(index),
                    "instructions": float(2 * index),
                }
            # ...and at most the one in-flight append extends past it.
            assert len(records) <= confirmed + 2
            # Readers never see a partial line: at most one unparseable
            # line exists, and only as the log's final line.
            [log] = store.shard_paths()
            lines = [
                line
                for line in Path(log).read_text(encoding="utf-8").split("\n")
                if line.strip()
            ]
            torn = [i for i, line in enumerate(lines) if not _parses(line)]
            assert torn in ([], [len(lines) - 1])
            # The shard stays writable after recovery.
            store.append_cost_records(key, {"fresh": {"cycles": 1.0}})
            assert store.get_cost_records(key)["fresh"] == {"cycles": 1.0}

    def test_sigkill_mid_compaction_loses_no_confirmed_record(self, tmp_path):
        proc = _spawn_writer(tmp_path, CHILD_COMPACT, "writer_compact.py")
        try:
            assert _readline_or_fail(proc) == "APPENDED"
            cycles = -1
            while cycles < 5:
                cycles = int(_readline_or_fail(proc)[1:])
            # The child is now somewhere in compact-then-append; kill it
            # cold.  Compaction replaces the log atomically, so whatever
            # instant this lands at, confirmed records survive.
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.kill()
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

        key = CostLogKey(machine_hash="c" * 64, seed=0)
        with ShardedRecordStore(tmp_path / "store") as store:
            records = store.get_cost_records(key)
            # Last-write-wins values from the confirmed append phase.
            for k in range(6):
                assert records[f"p{k}"] == {"cycles": float(54 + k)}
            for c in range(cycles + 1):
                assert records[f"q{c}"] == {"cycles": float(c)}
            # At most the one unconfirmed in-flight append on top.
            assert len(records) <= 6 + (cycles + 1) + 1
            [log] = store.shard_paths()
            lines = [
                line
                for line in Path(log).read_text(encoding="utf-8").split("\n")
                if line.strip()
            ]
            torn = [i for i, line in enumerate(lines) if not _parses(line)]
            assert torn in ([], [len(lines) - 1])
