"""The multi-host transport: frames, supervision, idempotency, chaos.

The load-bearing guarantee (ISSUE 8 acceptance, DESIGN.md §13): a DP
search through a :class:`RemoteServiceClient` over a ~20%-faulty socket
(drops, delays, mid-frame disconnects, garbage) to a ~20%-faulty backend
**completes**, is **bit-identical** to a fault-free serial run, executes
**zero duplicate measurements** (counting backend), and persists **zero
conflicting records** — the wire extends the service's failure
discipline, it does not weaken it.

``REPRO_CHAOS_SEED`` selects the fault schedule so CI can run a seed
matrix; every test must hold for any seed.
"""

import dataclasses
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.machine.configs import tiny_machine_config
from repro.runtime.backends import BatchedBackend
from repro.runtime.faults import FaultPlan, FaultSpec, FaultyBackend
from repro.runtime.service import CampaignJob, CampaignService, ServiceError
from repro.runtime.session import Session, session
from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.store import MemoryStore, machine_config_hash
from repro.runtime.transport import (
    PROTOCOL_VERSION,
    FaultyTransport,
    FrameTransport,
    RemoteServiceClient,
    RemoteServiceError,
    RemoteTransport,
    TransportError,
    machine_config_from_wire,
    machine_config_to_wire,
    serve_tcp,
    serve_unix,
)
from repro.machine.machine import SimulatedMachine
from repro.runtime.cost_engine import CostEngine
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.encoding import plan_key
from repro.wht.random_plans import RSUSampler

#: The CI chaos matrix sets this; locally it defaults to schedule 0.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _private_engine(config, seed=0):
    """A fault-free serial reference engine with an explicit noise seed."""
    return CostEngine(
        SimulatedMachine(config),
        backend=BatchedBackend(),
        store=MemoryStore(),
        seed=seed,
    )


class CountingBackend:
    """A backend wrapper recording every unit it actually executes."""

    name = "counting"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.lock = threading.Lock()
        self.executed = []  # (machine_hash, plan_key, noise_seed)

    def measure_units(self, machine, units):
        with self.lock:
            digest = machine_config_hash(machine.config)
            self.executed.extend(
                (digest, plan_key(unit.plan), unit.noise_seed) for unit in units
            )
        return self.inner.measure_units(machine, units)

    def duplicate_executions(self):
        with self.lock:
            seen, duplicates = set(), []
            for item in self.executed:
                if item in seen:
                    duplicates.append(item)
                seen.add(item)
            return duplicates

    def close(self):
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


class GatedBackend:
    """Blocks every batch on an event — for backpressure/drain tests."""

    name = "gated"

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else BatchedBackend()
        self.gate = threading.Event()

    def measure_units(self, machine, units):
        if not self.gate.wait(timeout=30.0):
            raise RuntimeError("gate never opened")
        return self.inner.measure_units(machine, units)

    def close(self):
        self.gate.set()
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


@pytest.fixture
def config():
    return tiny_machine_config()


@pytest.fixture
def plans():
    return [iterative_plan(4), right_recursive_plan(4)]


def _frame_pair():
    left, right = socket.socketpair()
    return FrameTransport(left), FrameTransport(right)


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- frame codec ---------------------------------------------------------------


class TestFrameCodec:
    def test_round_trips_a_frame(self):
        tx, rx = _frame_pair()
        payload = {"type": "submit", "id": "c:1", "plans": ["small[4]"], "π": 3.25}
        tx.send(payload)
        assert rx.recv() == payload
        tx.close()
        rx.close()

    def test_clean_eof_between_frames_is_none(self):
        tx, rx = _frame_pair()
        tx.send({"type": "bye"})
        tx.close()
        assert rx.recv() == {"type": "bye"}
        assert rx.recv() is None
        rx.close()

    def test_mid_frame_eof_raises(self):
        tx, rx = _frame_pair()
        frame = FrameTransport.encode({"type": "ping", "id": "c:9"})
        tx.send_bytes(frame[: len(frame) // 2])
        tx.close()
        with pytest.raises(TransportError, match="mid-frame"):
            rx.recv()
        rx.close()

    def test_garbage_body_raises(self):
        tx, rx = _frame_pair()
        body = b"\x00\xffnot json at all"
        tx.send_bytes(len(body).to_bytes(4, "big") + body)
        with pytest.raises(TransportError, match="garbage"):
            rx.recv()
        tx.close()
        rx.close()

    def test_non_object_body_raises(self):
        tx, rx = _frame_pair()
        body = b"[1, 2, 3]"
        tx.send_bytes(len(body).to_bytes(4, "big") + body)
        with pytest.raises(TransportError, match="must be an object"):
            rx.recv()
        tx.close()
        rx.close()

    def test_oversize_length_prefix_raises(self):
        from repro.runtime.transport import MAX_FRAME_BYTES

        tx, rx = _frame_pair()
        tx.send_bytes((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(TransportError, match="exceeds"):
            rx.recv()
        tx.close()
        rx.close()


class TestMachineOnTheWire:
    def test_config_round_trips_exactly(self, config):
        payload = json.loads(json.dumps(machine_config_to_wire(config)))
        rebuilt = machine_config_from_wire(payload)
        assert rebuilt == config
        assert machine_config_hash(rebuilt) == machine_config_hash(config)

    def test_config_without_l2_round_trips(self, config):
        flat = dataclasses.replace(config, l2=None)
        payload = json.loads(json.dumps(machine_config_to_wire(flat)))
        assert machine_config_from_wire(payload) == flat


# -- fault injection at the frame layer ----------------------------------------


class TestFaultyTransport:
    def test_kill_disconnects_before_writing(self):
        tx, rx = _frame_pair()
        faulty = FaultyTransport(tx, FaultPlan(network=FaultSpec(kill_rate=1.0)))
        with pytest.raises(TransportError, match="abrupt disconnect"):
            faulty.send({"type": "ping"})
        assert rx.recv() is None  # nothing hit the wire: clean EOF
        rx.close()

    def test_drop_loses_the_frame_and_resets(self):
        tx, rx = _frame_pair()
        faulty = FaultyTransport(tx, FaultPlan(network=FaultSpec(error_rate=1.0)))
        with pytest.raises(TransportError, match="dropped frame"):
            faulty.send({"type": "ping"})
        assert rx.recv() is None
        rx.close()

    def test_crash_is_a_partial_write_then_disconnect(self):
        tx, rx = _frame_pair()
        faulty = FaultyTransport(tx, FaultPlan(network=FaultSpec(crash_rate=1.0)))
        with pytest.raises(TransportError, match="mid-frame disconnect"):
            faulty.send({"type": "submit", "id": "c:1", "plans": ["small[4]"] * 16})
        with pytest.raises(TransportError, match="mid-frame"):
            rx.recv()  # the peer sees a torn frame, never a short parse
        rx.close()

    def test_torn_sends_a_garbage_frame_the_receiver_rejects(self):
        tx, rx = _frame_pair()
        faulty = FaultyTransport(tx, FaultPlan(network=FaultSpec(torn_tail_rate=1.0)))
        faulty.send({"type": "ping", "id": "c:1"})  # sender believes it worked
        with pytest.raises(TransportError, match="garbage"):
            rx.recv()
        tx.close()
        rx.close()

    def test_recv_fault_consumes_the_real_response(self):
        tx, rx = _frame_pair()
        faulty = FaultyTransport(rx, FaultPlan(network=FaultSpec(error_rate=1.0)))
        tx.send({"type": "result", "id": "c:1"})
        with pytest.raises(TransportError, match="lost response"):
            faulty.recv()  # the work happened server-side; the answer is gone
        tx.close()

    def test_delay_is_latency_not_loss(self):
        tx, rx = _frame_pair()
        plan = FaultPlan(network=FaultSpec(delay_rate=1.0, delay=0.01))
        faulty = FaultyTransport(tx, plan)
        faulty.send({"type": "ping", "id": "c:1"})
        assert rx.recv() == {"type": "ping", "id": "c:1"}
        assert plan.calls("net-send") == 1
        assert plan.injected() == 0  # a delay is latency, not a failure
        tx.close()
        rx.close()

    def test_schedule_is_seed_deterministic(self):
        spec = FaultSpec(error_rate=0.3, crash_rate=0.2, delay_rate=0.2, delay=0.001)
        a = FaultPlan(seed=CHAOS_SEED, network=spec)
        b = FaultPlan(seed=CHAOS_SEED, network=spec)
        assert [a.decide("net-send") for _ in range(50)] == [
            b.decide("net-send") for _ in range(50)
        ]


# -- the remote engine surface -------------------------------------------------


class TestRemoteRoundTrip:
    def test_records_are_bit_identical_to_a_private_engine(self, config):
        plans = RSUSampler().sample_many(7, count=8, rng=3)
        with CampaignService() as service, serve_tcp(service) as server:
            with RemoteServiceClient(server.url, config, seed=11) as client:
                remote = client.records(plans, ("cycles", "instructions"))
                again = client.records(plans, ("cycles", "instructions"))
        reference = _private_engine(config, seed=11)
        local = reference.records(plans, ("cycles", "instructions"))
        assert [r.values for r in remote] == [r.values for r in local]
        assert [r.values for r in again] == [r.values for r in remote]

    def test_full_engine_surface(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            client = RemoteServiceClient(server.url, config, seed=0)
            costs = client.batch(plans)
            assert costs == [client(plan) for plan in plans]
            bound = client.cost("instructions")
            assert bound.batch(plans) == [bound(plan) for plan in plans]
            assert client.evaluations >= 2 * len(plans)
            assert client.measured > 0
            client.flush()  # compat no-ops must exist for engine drop-in
            client.compact()
            client.close()

    def test_unix_domain_socket_round_trip(self, config, plans, tmp_path):
        path = tmp_path / "service.sock"
        with CampaignService() as service:
            server = serve_unix(service, path)
            assert server.url == f"unix://{path}"
            with RemoteServiceClient(server.url, config) as client:
                values = [r.values["cycles"] for r in client.records(plans)]
            assert all(v > 0 for v in values)
            server.close()
        assert not path.exists()  # the socket file is cleaned up

    def test_server_stats_and_health_over_the_wire(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            with RemoteServiceClient(server.url, config) as client:
                client.records(plans)
                stats = client.server_stats()
                assert stats["jobs"] == 1
                assert stats["measured"] > 0
                assert stats["resubmits"] == 0
                health = client.server_health()
                assert health["state"] == "ok"

    def test_dedup_with_an_in_process_tenant(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            local = service.client(config, seed=5)
            local_values = [r.values for r in local.records(plans)]
            with serve_tcp(service) as server:
                with RemoteServiceClient(server.url, config, seed=5) as remote:
                    remote_values = [r.values for r in remote.records(plans)]
        assert remote_values == local_values
        assert counting.duplicate_executions() == []

    def test_server_repr_and_stats(self, config):
        with CampaignService() as service, serve_tcp(service) as server:
            assert "open" in repr(server)
            stats = server.stats()
            assert stats["open_connections"] == 0
            assert stats["draining"] is False


# -- robustness: reconnect, idempotency, backpressure, drain -------------------


def _handshake(url):
    host, _, port = url[len("tcp://") :].rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=5.0)
    frames = FrameTransport(sock)
    frames.send({"type": "hello", "id": "raw:0", "version": PROTOCOL_VERSION})
    reply = frames.recv()
    assert reply["type"] == "hello"
    return frames


class TestIdempotentResubmission:
    def test_resubmit_after_lost_response_reuses_the_work(self, config, plans):
        counting = CountingBackend()
        submit = None
        with CampaignService(backend=counting) as service:
            with serve_tcp(service) as server:
                submit = {
                    "type": "submit",
                    "id": "client-a:1",
                    "machine": machine_config_to_wire(config),
                    "plans": [plan_key(p) for p in plans],
                    "metrics": ["cycles", "instructions"],
                    "seed": 7,
                }
                first = _handshake(server.url)
                first.send(submit)
                reply_one = first.recv()
                assert reply_one["type"] == "result"
                first.close()  # the client "loses" the response and reconnects

                second = _handshake(server.url)
                second.send(submit)
                reply_two = second.recv()
                second.close()

            assert reply_two["type"] == "result"
            assert reply_two["records"] == reply_one["records"]
            assert reply_two["owned"] == reply_one["owned"]
            assert service.stats().resubmits == 1
        assert counting.duplicate_executions() == []
        executed = len(counting.executed)
        assert executed == len(set(counting.executed))  # each key measured once

    def test_distinct_request_ids_still_dedupe_by_key(self, config, plans):
        counting = CountingBackend()
        with CampaignService(backend=counting) as service:
            job = CampaignJob(config, tuple(plans), ("cycles",), seed=0)
            a = service.submit(job, request_id="x:1")
            b = service.submit(job, request_id="x:2")
            assert a is not b  # different requests...
            assert a.result() == b.result()  # ...same records, and
        assert counting.duplicate_executions() == []  # ...one measurement

    def test_service_resubmit_counter_in_stats(self, config, plans):
        with CampaignService() as service:
            job = CampaignJob(config, tuple(plans), ("cycles",), seed=0)
            first = service.submit(job, request_id="r:1")
            again = service.submit(job, request_id="r:1")
            assert again is first
            assert service.stats().resubmits == 1


class TestConnectionSupervision:
    def test_idle_connection_expires_and_client_redials(self, config, plans):
        with CampaignService() as service:
            with serve_tcp(service, idle_timeout=0.3) as server:
                client = RemoteServiceClient(
                    server.url, config, heartbeat_interval=None
                )
                before = [r.values for r in client.records(plans)]
                assert _wait_until(lambda: server.stats()["expired"] >= 1, timeout=5.0)
                after = [r.values for r in client.records(plans)]
                assert after == before
                assert client.transport.reconnects == 1
                client.close()

    def test_heartbeat_keeps_an_idle_connection_alive(self, config, plans):
        with CampaignService() as service:
            with serve_tcp(service, idle_timeout=0.6) as server:
                client = RemoteServiceClient(
                    server.url, config, heartbeat_interval=0.1
                )
                client.records(plans)
                time.sleep(1.5)  # several expiry windows, all crossed by pings
                client.records(plans)
                assert client.transport.reconnects == 0
                assert server.stats()["expired"] == 0
                client.close()

    def test_reconnect_backoff_is_deterministic(self):
        a = RemoteTransport("tcp://127.0.0.1:9", heartbeat_interval=None,
                            retry_seed=3, client_id="peer")
        b = RemoteTransport("tcp://127.0.0.1:9", heartbeat_interval=None,
                            retry_seed=3, client_id="peer")
        delays_a = [a._backoff_delay(k) for k in range(1, 8)]
        delays_b = [b._backoff_delay(k) for k in range(1, 8)]
        assert delays_a == delays_b
        # exponential shape: each delay is at most cap * 1.5 and grows until the cap
        assert all(d <= a.backoff_cap * 1.5 for d in delays_a)
        a.close()
        b.close()

    def test_connecting_to_a_dead_port_raises_transport_error(self, config, plans):
        client = RemoteServiceClient(
            "tcp://127.0.0.1:1", config,
            max_attempts=2, backoff_base=0.001, connect_timeout=0.5,
            heartbeat_interval=None,
        )
        with pytest.raises(TransportError, match="after 2 attempts"):
            client.records(plans)
        client.close()

    def test_dead_port_with_fallback_degrades_bit_identically(self, config, plans):
        client = RemoteServiceClient(
            "tcp://127.0.0.1:1", config, seed=4, fallback=True,
            max_attempts=2, backoff_base=0.001, connect_timeout=0.5,
            heartbeat_interval=None,
        )
        values = [r.values for r in client.records(plans)]
        assert client.fallbacks == 1
        expected = [r.values for r in _private_engine(config, seed=4).records(plans)]
        assert [v["cycles"] for v in values] == [v["cycles"] for v in expected]
        client.close()

    def test_protocol_version_mismatch_is_rejected(self, config):
        with CampaignService() as service, serve_tcp(service) as server:
            host, _, port = server.url[len("tcp://") :].rpartition(":")
            sock = socket.create_connection((host, int(port)), timeout=5.0)
            frames = FrameTransport(sock)
            frames.send({"type": "hello", "id": "raw:0", "version": 99})
            reply = frames.recv()
            assert reply["type"] == "error"
            assert "version mismatch" in reply["message"]
            frames.close()

    def test_unknown_frame_type_gets_an_error_reply(self, config):
        with CampaignService() as service, serve_tcp(service) as server:
            frames = _handshake(server.url)
            frames.send({"type": "frobnicate", "id": "raw:1"})
            reply = frames.recv()
            assert reply["type"] == "error"
            assert "frobnicate" in reply["message"]
            frames.close()

    def test_garbage_frame_drops_the_connection_not_the_server(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            frames = _handshake(server.url)
            frames.send_bytes(b"\x00\x00\x00\x04haha")
            assert frames.recv() is None  # server hung up on the vandal...
            frames.close()
            with RemoteServiceClient(server.url, config) as client:
                assert client.records(plans)  # ...and keeps serving others

    def test_bad_urls_are_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unsupported service URL"):
            RemoteTransport("http://example.com")
        with pytest.raises(ValueError, match="malformed tcp URL"):
            RemoteTransport("tcp://no-port")


class TestBackpressure:
    def test_busy_frames_bound_inflight_and_both_submits_finish(self, config):
        gated = GatedBackend(CountingBackend())
        with CampaignService(backend=gated, workers=2) as service:
            with serve_tcp(service, max_inflight=1) as server:
                client = RemoteServiceClient(
                    server.url, config, max_attempts=400,
                    backoff_base=0.005, backoff_cap=0.01,
                    heartbeat_interval=None,
                )
                batches = [[iterative_plan(4)], [right_recursive_plan(4)]]
                results = [None, None]

                def submit(slot):
                    results[slot] = client.records(batches[slot])

                threads = [
                    threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
                ]
                for thread in threads:
                    thread.start()
                # One submit occupies the connection's single slot; the other
                # must be told to back off rather than queue invisibly.
                assert _wait_until(lambda: client.transport.backpressure >= 1)
                gated.gate.set()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert all(result is not None for result in results)
                assert server.stats()["backpressure"] >= 1
                client.close()


class TestDrain:
    def test_drained_server_refuses_submits_with_a_draining_frame(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            assert server.drain(timeout=5.0) is True
            strict = RemoteServiceClient(server.url, config, heartbeat_interval=None)
            with pytest.raises(RemoteServiceError, match="draining"):
                strict.records(plans)
            strict.close()

    def test_draining_triggers_client_fallback_bit_identically(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            server.drain(timeout=5.0)
            armed = RemoteServiceClient(
                server.url, config, seed=2, fallback=True, heartbeat_interval=None
            )
            values = [r.values["cycles"] for r in armed.records(plans)]
            assert armed.fallbacks == 1
            reference = _private_engine(config, seed=2)
            expected = [r.values["cycles"] for r in reference.records(plans)]
            assert values == expected
            assert armed.server_health()["state"] == "draining"
            armed.close()

    def test_drain_waits_for_inflight_work(self, config, plans):
        gated = GatedBackend()
        with CampaignService(backend=gated, workers=2) as service:
            with serve_tcp(service) as server:
                client = RemoteServiceClient(
                    server.url, config, heartbeat_interval=None
                )
                result = {}

                def submit():
                    result["records"] = client.records(plans)

                worker = threading.Thread(target=submit)
                worker.start()
                assert _wait_until(
                    lambda: server.stats()["active_requests"] == 1
                )
                drained = {}

                def drain():
                    drained["quiet"] = server.drain(timeout=30.0)

                drainer = threading.Thread(target=drain)
                drainer.start()
                time.sleep(0.05)
                assert not drained  # in-flight work pins the drain...
                gated.gate.set()
                drainer.join(timeout=30.0)
                worker.join(timeout=30.0)
                assert drained["quiet"] is True
                assert result["records"]  # ...and still completes
                client.close()


# -- retry observability (satellite) -------------------------------------------


class TestRetryObservability:
    def test_stats_expose_retrying_and_eta_and_health_degrades(self, config, plans):
        fplan = FaultPlan(seed=CHAOS_SEED, poison_plans=[plans[0]])
        service = CampaignService(
            backend=FaultyBackend(BatchedBackend(), fplan),
            max_attempts=4,
            backoff_base=30.0,  # park the first retry far in the future
            backoff_cap=60.0,
        )
        try:
            service.submit(CampaignJob(config, (plans[0],), ("cycles",), seed=0))
            assert _wait_until(lambda: service.stats().retrying >= 1)
            stats = service.stats()
            assert stats.retrying == stats.scheduled_retries
            assert stats.next_retry_eta is not None
            assert 0.0 < stats.next_retry_eta <= 90.0
            health = service.health()
            assert health.state == "degraded"
            assert "retries_scheduled=1" in health.describe()
        finally:
            service.shutdown()

    def test_quiet_service_reports_no_retry_eta(self, config, plans):
        with CampaignService() as service:
            service.submit(CampaignJob(config, tuple(plans), ("cycles",))).result()
            stats = service.stats()
            assert stats.retrying == 0
            assert stats.next_retry_eta is None
            assert service.health().state == "ok"


# -- session integration (tentpole + close satellite) --------------------------


class TestRemoteSession:
    def test_remote_dp_search_is_bit_identical(self, config):
        reference = session(machine=config, scale="ci", store=MemoryStore())
        expected = reference.search(10, use_engine=True)
        with CampaignService() as service, serve_tcp(service) as server:
            sess = Session.connect(server.url, machine=config, scale="ci")
            result = sess.search(10, use_engine=True)
            assert plan_key(result.best_plan) == plan_key(expected.best_plan)
            assert result.best_cost == expected.best_cost
            sess.close()

    def test_session_close_closes_the_remote_transport(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            sess = Session.connect(server.url, machine=config)
            client = sess.cost_engine()
            client.records(plans)
            sess.close()
            assert client.transport.closed
            assert sess._cost_engine is None  # the next use redials
            sess.close()  # idempotent
            rebuilt = sess.cost_engine()
            assert rebuilt is not client
            assert rebuilt.records(plans)
            sess.close()

    def test_session_close_closes_a_service_clients_fallback_engine(
        self, config, plans
    ):
        service = CampaignService()
        service.shutdown()  # every submit will be refused
        sess = Session.connect(service, machine=config, fallback=True)
        client = sess.cost_engine()
        client.records(plans)  # degrades: builds the private fallback engine
        assert client.fallbacks == 1
        assert client._fallback_engine is not None
        sess.close()
        assert client._fallback_engine is None

    def test_session_close_keeps_a_plain_engine_memoised(self, config, plans):
        sess = session(machine=config, store=MemoryStore())
        engine = sess.cost_engine()
        engine.records(plans)
        sess.close()
        assert sess.cost_engine() is engine  # its record cache survives

    def test_context_manager_exit_closes_remote_session(self, config, plans):
        with CampaignService() as service, serve_tcp(service) as server:
            with Session.connect(server.url, machine=config) as sess:
                client = sess.cost_engine()
                client.records(plans)
            assert client.transport.closed

    def test_transport_options_require_a_url(self, config):
        with CampaignService() as service:
            with pytest.raises(TypeError, match="transport options"):
                Session.connect(service, machine=config, max_attempts=3)

    def test_remote_session_fallback_flag_reaches_the_client(self, config):
        with CampaignService() as service, serve_tcp(service) as server:
            armed = Session.connect(server.url, machine=config, fallback=True)
            plain = Session.connect(server.url, machine=config)
            assert armed.cost_engine().fallback is True
            assert plain.cost_engine().fallback is False
            armed.close()
            plain.close()


# -- concurrent remote clients dedupe across processes (satellite) -------------


CHILD_CLIENT = """
import json
import sys

from repro.machine.configs import tiny_machine_config
from repro.runtime.transport import RemoteServiceClient
from repro.wht.random_plans import RSUSampler

plans = RSUSampler().sample_many(8, count=10, rng=5)
client = RemoteServiceClient(sys.argv[1], tiny_machine_config(), seed=9)
records = client.records(plans, ("cycles", "instructions"))
client.close()
print(json.dumps([record.values for record in records], sort_keys=True), flush=True)
"""


class TestConcurrentRemoteClients:
    def test_four_processes_dedupe_to_one_measurement_per_key(self, tmp_path):
        script = tmp_path / "remote_client.py"
        script.write_text(CHILD_CLIENT, encoding="utf-8")
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        counting = CountingBackend()
        with CampaignService(backend=counting, workers=3) as service:
            with serve_tcp(service) as server:
                procs = [
                    subprocess.Popen(
                        [sys.executable, str(script), server.url],
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        env=env,
                        text=True,
                    )
                    for _ in range(4)
                ]
                outputs = []
                for proc in procs:
                    out, err = proc.communicate(timeout=120)
                    assert proc.returncode == 0, f"client failed: {err}"
                    outputs.append(out.strip())
            stats = service.stats()

        # Every process saw bit-identical records...
        assert len(set(outputs)) == 1
        # ...exactly one real measurement happened per distinct
        # (machine_hash, plan_key, seed, channel) key...
        assert counting.duplicate_executions() == []
        assert len(counting.executed) == len(set(counting.executed))
        # ...and the other three processes' work was deduped, not run.
        assert stats.jobs == 4
        assert stats.dedup_savings + stats.store_hits > 0


# -- the acceptance criterion --------------------------------------------------


class TestNetworkChaosInvariant:
    """DP n=14 over a ~20%-faulty wire to a ~20%-faulty backend."""

    N = 14

    def test_chaotic_remote_search_is_bit_identical_with_zero_duplicates(
        self, config, tmp_path
    ):
        reference = session(machine=config, scale="ci", store=MemoryStore())
        expected = reference.search(self.N, use_engine=True)

        fplan = FaultPlan(
            seed=CHAOS_SEED,
            # ~20% of backend batches fail before touching the machine.
            backend=FaultSpec(error_rate=0.20),
            # ~20% of frames misbehave: drops, abrupt and mid-frame
            # disconnects, garbage, plus independent delays.
            network=FaultSpec(
                error_rate=0.06,
                crash_rate=0.06,
                kill_rate=0.04,
                torn_tail_rate=0.05,
                delay_rate=0.08,
                delay=0.002,
            ),
        )
        counting = CountingBackend()
        inner_store = ShardedRecordStore(tmp_path / "campaigns")
        service = CampaignService(
            store=inner_store,
            backend=FaultyBackend(counting, fplan),
            workers=3,
            max_attempts=8,
            backoff_base=0.002,
            backoff_cap=0.05,
        )
        server = serve_tcp(service, idle_timeout=10.0)
        try:
            sess = Session.connect(
                server.url,
                machine=config,
                scale="ci",
                fallback=True,
                fault_plan=fplan,
                max_attempts=12,
                backoff_base=0.002,
                backoff_cap=0.05,
                heartbeat_interval=0.5,
            )
            result = sess.search(self.N, use_engine=True)

            # 1. The search completed, bit-identical to the fault-free run.
            assert plan_key(result.best_plan) == plan_key(expected.best_plan)
            assert result.best_cost == expected.best_cost

            # 2. Chaos actually happened — on the wire, not just the backend.
            assert fplan.injected() > 0
            assert fplan.calls("net-send") + fplan.calls("net-recv") > 0
            assert fplan.calls("backend") > 0

            # 3. Zero duplicate measurements, however many resubmits the
            #    faulty wire forced.
            assert counting.duplicate_executions() == []

            sess.close()
            server.drain(timeout=30.0)
        finally:
            server.close()
            service.shutdown()
            inner_store.close()

        # 4. Zero conflicting persisted records: every parseable line in
        #    every shard agrees with every other line for its key.
        with ShardedRecordStore(tmp_path / "campaigns") as reopened:
            by_key = {}
            for log in reopened.shard_paths():
                for line in Path(log).read_text(encoding="utf-8").splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if "p" not in payload:
                        continue  # header
                    for metric, value in payload["v"].items():
                        seen = by_key.setdefault((payload["p"], metric), value)
                        assert seen == value, (
                            f"conflicting persisted values for {payload['p']}:{metric}"
                        )
            assert by_key  # the search persisted records through the chaos
