"""Sharded record store: shard layout, migration, crash tolerance, compaction."""

import json
import threading

import pytest

from repro.runtime.sharded_store import ShardedRecordStore
from repro.runtime.store import CostLogKey, DiskStore


KEY_A = CostLogKey(machine_hash="a" * 64, seed=0)
KEY_B = CostLogKey(machine_hash="b" * 64, seed=0)
KEY_A1 = CostLogKey(machine_hash="a" * 64, seed=1)


def records(prefix, count, metric="cycles"):
    return {f"{prefix}{index}": {metric: float(index + 1)} for index in range(count)}


class TestShardLayout:
    def test_each_key_gets_its_own_shard(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, records("a", 3))
            store.append_cost_records(KEY_B, records("b", 2))
            store.append_cost_records(KEY_A1, records("c", 1))
            paths = list(store.shard_paths())
            assert len(paths) == 3
            assert len({path.parent for path in paths}) == 3
            assert store.get_cost_records(KEY_A) == records("a", 3)
            assert store.get_cost_records(KEY_B) == records("b", 2)
            assert store.get_cost_records(KEY_A1) == records("c", 1)

    def test_round_trip_merges_metrics(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, {"p": {"cycles": 1.0}})
            store.append_cost_records(KEY_A, {"p": {"instructions": 2.0}})
            assert store.get_cost_records(KEY_A) == {
                "p": {"cycles": 1.0, "instructions": 2.0}
            }

    def test_reopen_sees_existing_shards(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, records("a", 4))
        with ShardedRecordStore(tmp_path) as store:
            assert store.get_cost_records(KEY_A) == records("a", 4)
            assert len(store.shard_stats()) == 1

    def test_empty_append_is_a_no_op(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, {})
            assert list(store.shard_paths()) == []

    def test_campaign_tables_stay_at_root(self, tmp_path):
        from repro.machine.configs import tiny_machine
        from repro.runtime.campaigns import run_campaign

        machine = tiny_machine(noise_sigma=0.0)
        with ShardedRecordStore(tmp_path) as store:
            table = run_campaign(machine, 4, 5, seed=3, store=store)
            again = run_campaign(machine, 4, 5, seed=3, store=store)
            assert table.equals(again)
            assert list(tmp_path.glob("rsu-*.json"))  # tables stay at the root


class TestMigration:
    def test_flat_disk_store_logs_fold_into_shards(self, tmp_path):
        flat = DiskStore(tmp_path)
        flat.append_cost_records(KEY_A, records("a", 5))
        flat.append_cost_records(KEY_B, records("b", 2))
        with ShardedRecordStore(tmp_path) as store:
            assert store.get_cost_records(KEY_A) == records("a", 5)
            assert store.get_cost_records(KEY_B) == records("b", 2)
            # The flat logs are retired; the shard logs own the records now.
            assert not list(tmp_path.glob("costlog-*.jsonl"))
            assert len(list(store.shard_paths())) == 2

    def test_migration_happens_once(self, tmp_path):
        flat = DiskStore(tmp_path)
        flat.append_cost_records(KEY_A, {"p": {"cycles": 5.0}})
        with ShardedRecordStore(tmp_path) as store:
            assert store.get_cost_records(KEY_A)["p"] == {"cycles": 5.0}
            # New appends go to the shard; re-resolving must not double-merge.
            store.append_cost_records(KEY_A, {"q": {"cycles": 6.0}})
        with ShardedRecordStore(tmp_path) as store:
            assert store.get_cost_records(KEY_A) == {
                "p": {"cycles": 5.0},
                "q": {"cycles": 6.0},
            }

    def test_legacy_single_metric_tables_migrate(self, tmp_path):
        flat = DiskStore(tmp_path)
        from repro.runtime.store import CostTableKey

        legacy = CostTableKey(machine_hash=KEY_A.machine_hash, seed=0, metric="cycles")
        flat.put_cost_table(legacy, {"p": 7.0})
        with ShardedRecordStore(tmp_path) as store:
            assert store.get_cost_records(KEY_A) == {"p": {"cycles": 7.0}}


class TestCrashTolerance:
    def test_truncated_tail_is_ignored_on_reopen(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, records("a", 3))
            [log] = store.shard_paths()
        # Simulate a crash mid-append: a half-written last line.
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"p": "torn", "v": {"cyc')
        with ShardedRecordStore(tmp_path) as store:
            recovered = store.get_cost_records(KEY_A)
            assert recovered == records("a", 3)
            # The store remains appendable after recovery.
            store.append_cost_records(KEY_A, {"fresh": {"cycles": 9.0}})
        with ShardedRecordStore(tmp_path) as store:
            assert store.get_cost_records(KEY_A)["fresh"] == {"cycles": 9.0}

    def test_compaction_preserves_reads_exactly(self, tmp_path):
        with ShardedRecordStore(tmp_path, auto_compact=None) as store:
            for index in range(6):
                store.append_cost_records(KEY_A, {"p": {"cycles": float(index)}})
                store.append_cost_records(KEY_A, records("x", 3))
            before = store.get_cost_records(KEY_A)
            [log] = store.shard_paths()
            lines_before = sum(1 for _ in open(log, encoding="utf-8"))
            store.compact_cost_records(KEY_A)
            after = store.get_cost_records(KEY_A)
            lines_after = sum(1 for _ in open(log, encoding="utf-8"))
            assert after == before
            assert lines_after < lines_before

    def test_background_compaction_triggers_on_ratio(self, tmp_path):
        with ShardedRecordStore(tmp_path, auto_compact=2.0) as store:
            for _ in range(8):
                store.append_cost_records(KEY_A, {"p": {"cycles": 1.0}})
            store.drain_compactions()
            [log] = store.shard_paths()
            stats = store.shard_stats()[0]
            assert stats.record_lines <= 4  # compacted towards one line/plan
            assert store.get_cost_records(KEY_A) == {"p": {"cycles": 1.0}}

    def test_inline_compaction_mode(self, tmp_path):
        store = ShardedRecordStore(
            tmp_path, auto_compact=1.5, background_compaction=False
        )
        for _ in range(6):
            store.append_cost_records(KEY_A, {"p": {"cycles": 2.0}})
        stats = store.shard_stats()[0]
        assert stats.record_lines <= 3
        assert store.get_cost_records(KEY_A) == {"p": {"cycles": 2.0}}


class TestConcurrency:
    def test_concurrent_writers_lose_nothing(self, tmp_path):
        with ShardedRecordStore(tmp_path, auto_compact=3.0) as store:
            workers = 6
            per_worker = 20

            def write(worker):
                for index in range(per_worker):
                    store.append_cost_records(
                        KEY_A,
                        {f"w{worker}-{index}": {"cycles": float(index)}},
                    )

            threads = [
                threading.Thread(target=write, args=(worker,))
                for worker in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            store.drain_compactions()
            recovered = store.get_cost_records(KEY_A)
            assert len(recovered) == workers * per_worker

    def test_readers_race_compaction_safely(self, tmp_path):
        with ShardedRecordStore(tmp_path, auto_compact=None) as store:
            for index in range(50):
                store.append_cost_records(KEY_A, {f"p{index}": {"cycles": 1.0}})
            stop = threading.Event()
            failures = []

            def read():
                while not stop.is_set():
                    recovered = store.get_cost_records(KEY_A)
                    if len(recovered) < 50:
                        failures.append(len(recovered))

            reader = threading.Thread(target=read)
            reader.start()
            for _ in range(5):
                store.compact_cost_records(KEY_A)
            stop.set()
            reader.join()
            assert failures == []


class TestMaintenance:
    def test_clear_drops_everything_and_store_stays_usable(self, tmp_path):
        store = ShardedRecordStore(tmp_path)
        store.append_cost_records(KEY_A, records("a", 3))
        store.append_cost_records(KEY_B, records("b", 3))
        store.clear()
        assert list(store.shard_paths()) == []
        assert store.get_cost_records(KEY_A) == {}
        store.append_cost_records(KEY_A, {"p": {"cycles": 1.0}})
        assert store.get_cost_records(KEY_A) == {"p": {"cycles": 1.0}}
        store.close()

    def test_shard_stats_parse_headers(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, records("a", 4))
            store.append_cost_records(KEY_A1, records("c", 2))
            stats = {
                (shard.machine_hash, shard.seed): shard
                for shard in store.shard_stats()
            }
            assert stats[(KEY_A.machine_hash, 0)].distinct_plans == 4
            assert stats[(KEY_A1.machine_hash, 1)].distinct_plans == 2
            for shard in stats.values():
                assert shard.size_bytes > 0
                assert shard.record_lines >= shard.distinct_plans

    def test_close_is_idempotent_and_reentrant(self, tmp_path):
        store = ShardedRecordStore(tmp_path)
        store.append_cost_records(KEY_A, {"p": {"cycles": 1.0}})
        store.close()
        store.close()
        # Still readable and writable after close; only auto-compaction stops.
        assert store.get_cost_records(KEY_A) == {"p": {"cycles": 1.0}}
        store.append_cost_records(KEY_A, {"q": {"cycles": 2.0}})

    def test_bad_auto_compact_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedRecordStore(tmp_path, auto_compact=0.5)

    def test_shard_log_is_valid_jsonl_with_header(self, tmp_path):
        with ShardedRecordStore(tmp_path) as store:
            store.append_cost_records(KEY_A, records("a", 2))
            [log] = store.shard_paths()
            lines = [
                json.loads(line)
                for line in open(log, encoding="utf-8")
                if line.strip()
            ]
            assert lines[0].get("version")
            assert lines[0]["key"]["machine_hash"] == KEY_A.machine_hash
