"""Tests for the metric registry, cost records and objective algebra."""

import numpy as np
import pytest

from repro.machine.configs import tiny_machine, tiny_machine_config
from repro.machine.machine import SimulatedMachine
from repro.models.cache_misses import CacheMissModel
from repro.models.combined import CombinedModel
from repro.models.instruction_count import InstructionCountModel
from repro.runtime.cost_engine import CostEngine
from repro.runtime.metrics import (
    COUNTER_CHANNEL,
    DEFAULT_WALL_TIME_POLICY,
    CostRecord,
    MetricSpec,
    WallTimePolicy,
    available_metrics,
    counter_metric_names,
    hardware_metric_names,
    metric_spec,
    model_metric_names,
    set_wall_time_policy,
)
from repro.runtime.objectives import (
    CustomObjective,
    MetricObjective,
    Objective,
    WeightedObjective,
    resolve_objective,
)
from repro.runtime.store import MemoryStore
from repro.wht.enumeration import enumerate_plans
from repro.wht.random_plans import random_plan, random_plans


class TestRegistry:
    def test_builtin_metrics_present(self):
        names = set(available_metrics())
        assert {
            "cycles",
            "instructions",
            "l1_misses",
            "l2_misses",
            "l1_accesses",
            "wall_time",
            "model_instructions",
            "model_l1_misses",
            "model_combined",
        } <= names

    def test_counter_metrics_all_come_from_one_measurement(self):
        for name in counter_metric_names():
            spec = metric_spec(name)
            assert spec.channel == COUNTER_CHANNEL
            assert spec.from_measurement is not None

    def test_kind_partitions(self):
        assert set(hardware_metric_names()) & set(model_metric_names()) == set()
        assert "wall_time" in hardware_metric_names()
        assert "model_combined" in model_metric_names()

    def test_unknown_metric_raises_with_options(self):
        with pytest.raises(KeyError, match="cycles"):
            metric_spec("zyzzles")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="channel"):
            MetricSpec(name="x", kind="hardware", channel="psychic", description="")
        with pytest.raises(ValueError, match="acquisition"):
            MetricSpec(name="x", kind="hardware", channel=COUNTER_CHANNEL, description="")
        with pytest.raises(ValueError, match="kind"):
            MetricSpec(
                name="x",
                kind="quantum",
                channel=COUNTER_CHANNEL,
                description="",
                from_measurement=lambda m: 0.0,
            )

    def test_counter_extractors_match_measurement(self, machine):
        measurement = machine.measure(random_plan(6, rng=0))
        for name in counter_metric_names():
            assert metric_spec(name).from_measurement(measurement) == float(
                getattr(measurement, name)
            )


class TestCostRecord:
    def test_mapping_protocol(self):
        record = CostRecord(plan_key="small[2]", values={"cycles": 10.0})
        assert record["cycles"] == 10.0
        assert "cycles" in record and "instructions" not in record
        assert record.metrics() == ("cycles",)
        assert list(record) == ["cycles"]

    def test_missing_metric_names_known_ones(self):
        record = CostRecord(plan_key="small[2]", values={"cycles": 10.0})
        with pytest.raises(KeyError, match="cycles"):
            record["instructions"]


class TestObjectives:
    def test_metric_objective(self):
        objective = MetricObjective("cycles")
        assert objective.metrics == ("cycles",)
        assert objective.value({"cycles": 3.5}) == 3.5
        assert objective.describe() == "cycles"

    def test_metric_objective_rejects_unknown(self):
        with pytest.raises(KeyError):
            MetricObjective("warp_factor")

    def test_weighted_objective_value_and_order(self):
        objective = WeightedObjective({"instructions": 1.0, "l1_misses": 0.05})
        assert objective.metrics == ("instructions", "l1_misses")
        assert objective.value({"instructions": 100.0, "l1_misses": 10.0}) == (
            1.0 * 100.0 + 0.05 * 10.0
        )

    def test_weighted_combined_matches_combined_model(self):
        model = CombinedModel(alpha=0.7, beta=0.3)
        objective = WeightedObjective.from_model(model)
        values = {"instructions": 123.0, "l1_misses": 45.0}
        assert objective.value(values) == model.value(123.0, 45.0)

    def test_weighted_objective_rejects_empty_and_unknown(self):
        with pytest.raises(ValueError):
            WeightedObjective({})
        with pytest.raises(KeyError):
            WeightedObjective({"warp_factor": 1.0})

    def test_custom_objective(self):
        cpi = CustomObjective(
            metric_names=("cycles", "instructions"),
            reducer=lambda values: values["cycles"] / values["instructions"],
            name="cpi",
        )
        assert cpi.value({"cycles": 10.0, "instructions": 4.0}) == 2.5
        assert "cpi" in cpi.describe()

    def test_resolve_objective(self):
        assert isinstance(resolve_objective("cycles"), MetricObjective)
        objective = MetricObjective("l1_misses")
        assert resolve_objective(objective) is objective
        weighted = resolve_objective(CombinedModel(alpha=0.5, beta=0.5))
        assert isinstance(weighted, WeightedObjective)
        with pytest.raises(ValueError, match="unknown metric"):
            resolve_objective("warp_factor")
        with pytest.raises(TypeError):
            resolve_objective(42)

    def test_objective_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Objective().value({})


class TestEngineMultiMetric:
    def test_one_measurement_populates_every_counter_metric(self, machine):
        engine = CostEngine(machine)
        plan = random_plan(6, rng=1)
        records = engine.records([plan], counter_metric_names())
        assert engine.measured == 1
        reference = tiny_machine(noise_sigma=0.0).measure(plan)
        for name in counter_metric_names():
            assert records[0][name] == float(getattr(reference, name))
        # Any subset of already-measured metrics is free.
        engine.records([plan], ("instructions",))
        engine.records([plan], ("l2_misses", "cycles"))
        assert engine.measured == 1

    def test_new_counter_metric_on_measured_plan_is_free(self, machine):
        engine = CostEngine(machine)
        plan = random_plan(6, rng=2)
        engine(plan)  # default objective: cycles
        assert engine.measured == 1
        records = engine.records([plan], ("l1_misses", "l1_accesses"))
        assert engine.measured == 1
        assert set(records[0].metrics()) == {"l1_misses", "l1_accesses"}

    def test_model_metrics_never_touch_the_machine(self, machine):
        engine = CostEngine(machine)
        plans = random_plans(6, 8, rng=3)
        records = engine.records(
            plans, ("model_instructions", "model_l1_misses", "model_combined")
        )
        assert engine.measured == 0
        instruction_model = InstructionCountModel(machine.config.instruction_model)
        miss_model = CacheMissModel.from_machine_config(machine.config, level="l1")
        combined = CombinedModel()
        for plan, record in zip(plans, records):
            instructions = instruction_model.count(plan)
            misses = miss_model.misses(plan)
            assert record["model_instructions"] == float(instructions)
            assert record["model_l1_misses"] == float(misses)
            assert record["model_combined"] == combined.value(instructions, misses)

    def test_wall_time_metric_measures_on_its_own_channel(self, machine):
        engine = CostEngine(machine)
        plan = random_plan(5, rng=4)
        record = engine.records([plan], ("wall_time",))[0]
        assert record["wall_time"] > 0.0
        assert engine.measured == 1
        # Cached: a second request performs no further execution.
        again = engine.records([plan], ("wall_time",))[0]
        assert again["wall_time"] == record["wall_time"]
        assert engine.measured == 1

    def test_objective_costs_share_the_record_cache(self, machine):
        store = MemoryStore()
        engine = CostEngine(machine, store=store)
        plan = random_plan(6, rng=5)
        engine.cost("cycles")(plan)
        assert engine.measured == 1
        # A different objective over counter metrics re-measures nothing.
        engine.cost(WeightedObjective.combined())(plan)
        engine.cost("l2_misses")(plan)
        assert engine.measured == 1

    def test_known_metrics_introspection(self, machine):
        engine = CostEngine(machine)
        plan = random_plan(6, rng=6)
        assert engine.known_metrics(plan) == ()
        engine(plan)
        assert "cycles" in engine.known_metrics(plan)


class TestCompositeObjectiveRanking:
    def test_composite_reproduces_combined_model_ranking_enumerated(self, machine):
        """Acceptance: the model-metric composite objective must reproduce the
        combined-model ranking from repro.models.combined over the enumerated
        space (n <= 6 here; the CI perf-smoke gate covers n <= 8)."""
        engine = CostEngine(machine)
        objective = WeightedObjective.model_combined(alpha=1.0, beta=0.05)
        cost = engine.cost(objective)
        instruction_model = InstructionCountModel(machine.config.instruction_model)
        miss_model = CacheMissModel.from_machine_config(machine.config, level="l1")
        combined = CombinedModel(alpha=1.0, beta=0.05)
        for n in range(1, 7):
            plans = list(enumerate_plans(n))
            engine_values = cost.batch(plans)
            reference = [
                combined.value(instruction_model.count(plan), miss_model.misses(plan))
                for plan in plans
            ]
            assert engine_values == reference  # exact, hence same ranking
            assert list(np.argsort(engine_values, kind="stable")) == list(
                np.argsort(reference, kind="stable")
            )
        assert engine.measured == 0  # ranking needed zero hardware measurements


class TestWallTimePolicy:
    def test_default_policy_registered_on_the_spec(self):
        spec = metric_spec("wall_time")
        assert spec.policy == DEFAULT_WALL_TIME_POLICY
        assert spec.policy.repetitions == 5
        assert spec.policy.trim_fraction == 0.2
        assert not spec.deterministic

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            WallTimePolicy(repetitions=0)
        with pytest.raises(ValueError):
            WallTimePolicy(trim_fraction=0.5)
        with pytest.raises(ValueError):
            WallTimePolicy(trim_fraction=-0.1)

    def test_set_wall_time_policy_replaces_the_spec(self):
        original = metric_spec("wall_time")
        try:
            spec = set_wall_time_policy(WallTimePolicy(repetitions=1, trim_fraction=0.0))
            assert metric_spec("wall_time") is spec
            assert spec.policy.repetitions == 1
        finally:
            set_wall_time_policy(original.policy)
        assert metric_spec("wall_time").policy == DEFAULT_WALL_TIME_POLICY

    def test_set_wall_time_policy_rejects_non_policy(self):
        with pytest.raises(TypeError):
            set_wall_time_policy("median")

    def test_policy_measure_runs_the_plan(self, machine):
        value = WallTimePolicy(repetitions=3, trim_fraction=0.0).measure(
            machine, random_plan(5, rng=0)
        )
        assert value > 0.0

    def test_trimmed_mean_drops_outliers(self, machine, monkeypatch):
        """Five repetitions at 20% trim drop exactly the min and the max."""
        times = iter([0.0, 1.0, 2.0, 99.0, 100.0, 104.0, 105.0, 109.0, 110.0, 112.0])
        monkeypatch.setattr(
            "repro.machine.machine.time.perf_counter", lambda: next(times)
        )
        value = machine.measure_wall_time(
            random_plan(4, rng=1), repetitions=5, trim_fraction=0.2
        )
        # Deltas are 1, 97, 4, 4, 2 -> trimmed mean of (2, 4, 4) = 10/3.
        assert value == pytest.approx(10.0 / 3.0)

    def test_trim_none_keeps_the_median(self, machine, monkeypatch):
        times = iter([0.0, 1.0, 2.0, 99.0, 100.0, 105.0])
        monkeypatch.setattr(
            "repro.machine.machine.time.perf_counter", lambda: next(times)
        )
        value = machine.measure_wall_time(random_plan(4, rng=1), repetitions=3)
        # Deltas are 1, 97, 5 -> median 5.
        assert value == 5.0

    def test_wall_records_never_persist(self, machine):
        engine = CostEngine(machine, store=MemoryStore())
        plan = random_plan(5, rng=2)
        engine.records([plan], ("wall_time",))
        assert engine.store.get_cost_records(engine.key) == {}
