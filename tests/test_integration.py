"""End-to-end integration tests: the whole pipeline on the tiny machine.

These tests exercise the package the way a user following the README would:
build plans, measure them, evaluate the analytic models, run the searches, and
reproduce the paper's qualitative findings at miniature scale.
"""

import numpy as np
import pytest

import repro
from repro.analysis.pearson import pearson_correlation
from repro.experiments.campaign import SampleCampaign, clear_campaign_cache
from repro.models.cache_misses import CacheMissModel
from repro.models.instruction_count import InstructionCountModel
from repro.search.costs import InstructionModelCost, MeasuredCyclesCost
from repro.search.pruned import ModelPrunedSearch
from repro.wht.canonical import canonical_plans
from repro.wht.transform import apply_plan, random_input, wht_reference


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        plan = repro.right_recursive_plan(8)
        assert repro.parse_plan(str(plan)) == plan
        assert repro.instruction_count(plan) > 0
        machine = repro.machine.tiny_machine()
        measurement = machine.measure(plan)
        assert isinstance(measurement, repro.Measurement)

    def test_readme_quickstart_flow(self):
        machine = repro.machine.tiny_machine(noise_sigma=0.0)
        plan = repro.wht.random_plan(8, rng=0)
        x = random_input(8, seed=0)
        assert np.allclose(apply_plan(plan, x), wht_reference(x))
        measurement = machine.measure(plan)
        model = InstructionCountModel(machine.config.instruction_model)
        assert model.count(plan) == measurement.instructions


class TestPaperStoryAtMiniatureScale:
    """The paper's qualitative findings, verified end to end on the tiny machine."""

    @pytest.fixture(scope="class")
    def machine(self):
        return repro.machine.tiny_machine(noise_sigma=0.02, rng=3)

    @pytest.fixture(scope="class")
    def small_table(self, machine):
        clear_campaign_cache()
        return SampleCampaign(machine, seed=21, use_cache=False).run(4, 80)

    @pytest.fixture(scope="class")
    def large_table(self, machine):
        return SampleCampaign(machine, seed=21, use_cache=False).run(7, 80)

    def test_instruction_correlation_drops_out_of_cache(self, small_table, large_table):
        rho_small = pearson_correlation(small_table.instructions, small_table.cycles)
        rho_large = pearson_correlation(large_table.instructions, large_table.cycles)
        assert rho_small > 0.85
        assert rho_large < rho_small

    def test_combined_model_restores_correlation(self, large_table):
        from repro.models.combined import optimize_combined_model

        rho_instructions = pearson_correlation(large_table.instructions, large_table.cycles)
        surface = optimize_combined_model(
            large_table.instructions, large_table.l1_misses, large_table.cycles
        )
        _, _, rho_combined = surface.best
        assert rho_combined >= rho_instructions

    def test_model_pruning_keeps_a_fast_plan(self, machine, large_table):
        # Discarding the worst half by instruction count must keep a plan
        # within a few percent of the overall best of the sample.
        instructions = large_table.instructions
        cycles = large_table.cycles
        threshold = float(np.median(instructions))
        kept = cycles[instructions <= threshold]
        assert kept.min() <= cycles.min() * 1.05

    def test_analytic_models_track_measurements(self, machine, large_table):
        instruction_model = InstructionCountModel(machine.config.instruction_model)
        miss_model = CacheMissModel.from_machine_config(machine.config)
        modelled_instructions = np.array(
            [instruction_model.count(p) for p in large_table.plans], dtype=float
        )
        modelled_misses = np.array(
            [miss_model.misses(p) for p in large_table.plans], dtype=float
        )
        assert np.array_equal(modelled_instructions, large_table.instructions)
        assert pearson_correlation(modelled_misses, large_table.l1_misses) > 0.6

    def test_pruned_search_saves_measurements_without_losing_much(self, machine):
        report = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=60,
            keep_fraction=0.3,
        ).search(7, rng=5)
        assert report.measurement_savings > 0.4
        full = [
            machine.measure(plan).cycles
            for plan in ModelPrunedSearch(
                model_cost=InstructionModelCost(),
                measure_cost=MeasuredCyclesCost(machine),
                samples=60,
                keep_fraction=1.0,
            )
            .generate_candidates(7, rng=5)
        ]
        assert report.result.best_cost <= min(full) * 1.1

    def test_canonical_story(self, machine):
        # In cache: iterative wins (lowest instruction count).  Out of cache:
        # the right recursive plan overtakes it; the left recursive plan is the
        # slowest of the three.
        small_n = machine.config.l1_capacity_exponent() - 1
        large_n = machine.config.l2_capacity_exponent() + 2
        small = {k: machine.measure(p).cycles for k, p in canonical_plans(small_n).items()}
        large = {k: machine.measure(p).cycles for k, p in canonical_plans(large_n).items()}
        assert small["iterative"] < small["right"] < small["left"]
        assert large["right"] < large["iterative"]
        assert large["left"] > large["right"]
