"""Tests for the reference WHT transforms and plan application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.random_plans import random_plan
from repro.wht.transform import (
    apply_plan,
    random_input,
    wht_inplace,
    wht_matrix,
    wht_reference,
)


class TestWHTMatrix:
    def test_base_cases(self):
        assert np.array_equal(wht_matrix(0), [[1.0]])
        assert np.array_equal(wht_matrix(1), [[1.0, 1.0], [1.0, -1.0]])

    def test_entries_are_plus_minus_one(self):
        matrix = wht_matrix(4)
        assert set(np.unique(matrix)) == {-1.0, 1.0}

    def test_symmetric(self):
        matrix = wht_matrix(5)
        assert np.array_equal(matrix, matrix.T)

    def test_orthogonality(self):
        n = 4
        matrix = wht_matrix(n)
        assert np.allclose(matrix @ matrix.T, (1 << n) * np.eye(1 << n))

    def test_kronecker_structure(self):
        assert np.array_equal(wht_matrix(3), np.kron(wht_matrix(1), wht_matrix(2)))


class TestWHTReference:
    def test_matches_matrix_product(self):
        for n in range(0, 7):
            x = random_input(n, seed=n)
            assert np.allclose(wht_reference(x), wht_matrix(n) @ x)

    def test_does_not_modify_input(self):
        x = random_input(5, seed=1)
        original = x.copy()
        wht_reference(x)
        assert np.array_equal(x, original)

    def test_linearity(self):
        x = random_input(6, seed=2)
        y = random_input(6, seed=3)
        assert np.allclose(
            wht_reference(2.0 * x + y), 2.0 * wht_reference(x) + wht_reference(y)
        )

    def test_involution_up_to_scale(self):
        x = random_input(6, seed=4)
        assert np.allclose(wht_reference(wht_reference(x)), (1 << 6) * x)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            wht_reference(np.zeros(12))

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            wht_reference(np.zeros((4, 4)))

    def test_impulse_gives_constant_row(self):
        x = np.zeros(8)
        x[0] = 1.0
        assert np.allclose(wht_reference(x), np.ones(8))


class TestWHTInplace:
    def test_matches_reference(self):
        x = random_input(7, seed=5)
        work = x.copy()
        wht_inplace(work)
        assert np.allclose(work, wht_reference(x))

    def test_requires_ndarray(self):
        with pytest.raises(TypeError):
            wht_inplace([1.0, 2.0])

    def test_requires_contiguous(self):
        x = np.zeros(16)[::2]
        with pytest.raises(ValueError):
            wht_inplace(x)


class TestApplyPlan:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_canonical_plans_match_reference(self, n):
        x = random_input(n, seed=n)
        expected = wht_reference(x)
        assert np.allclose(apply_plan(iterative_plan(n), x), expected)
        assert np.allclose(apply_plan(right_recursive_plan(n), x), expected)

    def test_random_plans_match_reference(self):
        for seed in range(10):
            plan = random_plan(8, rng=seed)
            x = random_input(8, seed=seed)
            assert np.allclose(apply_plan(plan, x), wht_reference(x))

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_plan(iterative_plan(4), np.zeros(8))

    def test_input_not_modified(self):
        x = random_input(6, seed=9)
        original = x.copy()
        apply_plan(iterative_plan(6), x)
        assert np.array_equal(x, original)

    @given(seed=st.integers(0, 10**6), n=st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_property_any_rsu_plan_computes_wht(self, seed, n):
        plan = random_plan(n, rng=seed)
        x = random_input(n, seed=seed)
        assert np.allclose(apply_plan(plan, x), wht_reference(x))


class TestRandomInput:
    def test_deterministic_for_seed(self):
        assert np.array_equal(random_input(5, seed=3), random_input(5, seed=3))

    def test_length(self):
        assert random_input(6).shape == (64,)
