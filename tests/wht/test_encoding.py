"""Tests for plan keys and the structure-of-arrays plan encoder."""

import numpy as np
import pytest

from repro.wht.encoding import MAX_ENCODABLE_EXPONENT, encode_plans, plan_key
from repro.wht.enumeration import enumerate_plans
from repro.wht.grammar import parse_plan
from repro.wht.plan import Small, Split
from repro.wht.random_plans import random_plan


class TestPlanKey:
    def test_key_is_parseable_grammar(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        assert plan_key(plan) == "split[small[1],split[small[2],small[3]]]"
        assert parse_plan(plan_key(plan)) == plan

    def test_structural_equality_is_key_equality(self):
        a = Split((Small(2), Small(2)))
        b = Split((Small(2), Small(2)))
        assert a is not b
        assert plan_key(a) == plan_key(b)

    def test_distinct_plans_distinct_keys(self):
        plans = list(enumerate_plans(6))
        keys = {plan_key(p) for p in plans}
        assert len(keys) == len(plans)


class TestEncodePlans:
    def test_empty_batch(self):
        enc = encode_plans([])
        assert enc.num_plans == 0
        assert enc.num_nodes == 0
        assert enc.num_slots == 0

    def test_single_leaf(self):
        enc = encode_plans([Small(4)])
        assert enc.num_nodes == 1
        assert enc.num_slots == 0
        assert enc.node_exponent.tolist() == [4]
        assert enc.node_is_leaf.tolist() == [True]
        assert enc.root_index.tolist() == [0]

    def test_post_order_and_ranges(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        enc = encode_plans([plan, Small(2)])
        assert enc.num_plans == 2
        # Post-order: children precede parents, root is last in its segment.
        for slot in range(enc.num_slots):
            assert enc.slot_child[slot] < enc.slot_owner[slot]
        assert enc.node_exponent[enc.root_index].tolist() == [6, 2]
        # Node segments partition the node array.
        assert enc.plan_node_start.tolist() == [0, 5, 6]
        # Root split exponent is the sum of its children's.
        assert enc.node_exponent[enc.root_index[0]] == 6

    def test_suffix_exponents_match_triple_loop(self):
        # split[small[1], small[2], small[3]]: suffixes (right-to-left inner
        # products) are 5, 3, 0 read left to right.
        plan = Split((Small(1), Small(2), Small(3)))
        enc = encode_plans([plan])
        assert enc.slot_suffix_exponent.tolist() == [5, 3, 0]

    def test_node_multiplicity_telescopes(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        enc = encode_plans([plan])
        # Multiplicity of a node of exponent k under root n is 2^(n - k).
        expected = (1 << (6 - enc.node_exponent)).tolist()
        assert enc.node_multiplicity().tolist() == expected

    def test_slot_ranges_cover_children(self):
        plans = [random_plan(7, rng=seed) for seed in range(5)]
        enc = encode_plans(plans)
        first, count = enc.slot_ranges()
        assert int(count.sum()) == enc.num_slots
        assert count[enc.node_is_leaf].tolist() == [0] * int(enc.node_is_leaf.sum())
        for node in range(enc.num_nodes):
            owners = enc.slot_owner[first[node] : first[node] + count[node]]
            assert (owners == node).all()

    def test_node_plan_segments(self):
        plans = [Small(1), Split((Small(1), Small(1)))]
        enc = encode_plans(plans)
        assert enc.node_plan().tolist() == [0, 1, 1, 1]

    def test_segment_sums_exact(self):
        plans = [random_plan(8, rng=seed) for seed in range(4)]
        enc = encode_plans(plans)
        ones = np.ones(enc.num_nodes, dtype=np.int64)
        assert enc.segment_sum_nodes(ones).tolist() == np.diff(enc.plan_node_start).tolist()

    def test_rejects_non_plans_and_oversized(self):
        with pytest.raises(TypeError):
            encode_plans(["small[1]"])

        deep = Small(1)
        for _ in range(MAX_ENCODABLE_EXPONENT):
            deep = Split((Small(1), deep))
        with pytest.raises(ValueError):
            encode_plans([deep])


class TestMemoisedSegmentSplice:
    """encode_plans caches per-plan segments; splicing is bit-identical."""

    FIELDS = (
        "node_exponent",
        "node_is_leaf",
        "node_depth",
        "plan_node_start",
        "slot_owner",
        "slot_child",
        "slot_suffix_exponent",
        "plan_slot_start",
    )

    def assert_encodings_equal(self, a, b):
        for field in self.FIELDS:
            assert np.array_equal(getattr(a, field), getattr(b, field)), field

    def test_re_encoding_is_identical(self):
        plans = [random_plan(9, rng=seed) for seed in range(6)]
        self.assert_encodings_equal(encode_plans(plans), encode_plans(plans))

    def test_cached_segments_match_fresh_walks(self):
        from repro.wht.encoding import _SEGMENT_CACHE

        plans = [random_plan(8, rng=seed) for seed in range(4)]
        _SEGMENT_CACHE.clear()
        cold = encode_plans(plans)
        assert len(_SEGMENT_CACHE) == len({str(p) for p in plans})
        warm = encode_plans(plans)
        self.assert_encodings_equal(cold, warm)

    def test_order_and_duplicates_respected(self):
        a, b = random_plan(7, rng=0), random_plan(7, rng=1)
        encode_plans([a])  # prime the cache with a different batch shape
        enc = encode_plans([b, a, b, b])
        assert enc.num_plans == 4
        direct = encode_plans([b])
        ranges = list(zip(enc.plan_node_start[:-1], enc.plan_node_start[1:]))
        for plan_index in (0, 2, 3):
            low, high = ranges[plan_index]
            assert np.array_equal(
                enc.node_exponent[low:high], direct.node_exponent
            )

    def test_empty_batch(self):
        enc = encode_plans([])
        assert enc.num_plans == 0
        assert enc.num_nodes == 0
        assert enc.num_slots == 0
