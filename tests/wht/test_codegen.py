"""Tests for the unrolled-codelet source generator."""

import numpy as np
import pytest

from repro.wht.codegen import (
    compile_codelet,
    generate_codelet_source,
    unrolled_operation_counts,
)
from repro.wht.plan import MAX_UNROLLED
from repro.wht.transform import wht_reference


class TestGenerateSource:
    def test_source_defines_named_function(self):
        source = generate_codelet_source(3)
        assert source.startswith("def wht_codelet_3(")

    def test_custom_name(self):
        source = generate_codelet_source(2, name="my_kernel")
        assert "def my_kernel(" in source

    def test_statement_counts_match_declared_counts(self):
        import re

        butterfly = re.compile(r"^\s*t\d+_\d+ = t\d+_\d+ ([+-]) t\d+_\d+$")
        for k in range(1, 6):
            source = generate_codelet_source(k)
            counts = unrolled_operation_counts(k)
            adds = subs = 0
            for line in source.splitlines():
                match = butterfly.match(line)
                if match:
                    if match.group(1) == "+":
                        adds += 1
                    else:
                        subs += 1
            loads = sum(1 for line in source.splitlines() if "= x[" in line)
            stores = sum(1 for line in source.splitlines() if line.strip().startswith("x["))
            assert adds == counts["additions"]
            assert subs == counts["subtractions"]
            assert loads == counts["loads"]
            assert stores == counts["stores"]

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            generate_codelet_source(MAX_UNROLLED + 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_codelet_source(0)


class TestOperationCounts:
    def test_formula(self):
        counts = unrolled_operation_counts(4)
        assert counts["additions"] == 4 * 16 // 2
        assert counts["subtractions"] == 4 * 16 // 2
        assert counts["loads"] == 16
        assert counts["stores"] == 16

    def test_consistency_with_compiled(self):
        codelet = compile_codelet(3)
        assert codelet.arithmetic_ops == 3 * 8
        assert codelet.memory_ops == 16


class TestCompiledCodelet:
    @pytest.mark.parametrize("k", range(1, 6))
    def test_computes_wht(self, k):
        codelet = compile_codelet(k)
        rng = np.random.default_rng(k)
        x = rng.standard_normal(1 << k)
        work = x.copy()
        codelet.function(work)
        assert np.allclose(work, wht_reference(x))

    def test_source_is_stored(self):
        codelet = compile_codelet(2)
        assert "def wht_codelet_2(" in codelet.source

    def test_largest_supported_codelet_compiles(self):
        codelet = compile_codelet(MAX_UNROLLED)
        x = np.arange(1 << MAX_UNROLLED, dtype=float)
        work = x.copy()
        codelet.function(work)
        assert np.allclose(work, wht_reference(x))
