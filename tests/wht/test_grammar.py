"""Tests for the plan grammar (parser and printer)."""

import pytest

from repro.wht.grammar import PlanSyntaxError, parse_plan, plan_to_string
from repro.wht.plan import Small, Split
from repro.wht.random_plans import RSUSampler


class TestPrinter:
    def test_small(self):
        assert plan_to_string(Small(3)) == "small[3]"

    def test_split(self):
        plan = Split((Small(1), Small(2)))
        assert plan_to_string(plan) == "split[small[1],small[2]]"

    def test_nested(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        assert plan_to_string(plan) == "split[small[1],split[small[2],small[3]]]"

    def test_str_dunder_matches(self):
        plan = Split((Small(1), Small(2)))
        assert str(plan) == plan_to_string(plan)

    def test_rejects_non_plan(self):
        with pytest.raises(TypeError):
            plan_to_string("small[1]")


class TestParser:
    def test_small(self):
        assert parse_plan("small[4]") == Small(4)

    def test_split(self):
        assert parse_plan("split[small[1],small[2]]") == Split((Small(1), Small(2)))

    def test_whitespace_tolerated(self):
        text = " split[ small[1] ,\n small[2] ] "
        assert parse_plan(text) == Split((Small(1), Small(2)))

    def test_nested(self):
        text = "split[split[small[1],small[1]],small[2]]"
        plan = parse_plan(text)
        assert plan.n == 4
        assert plan.composition == (2, 2)

    def test_round_trip_random_plans(self):
        sampler = RSUSampler()
        for seed in range(25):
            plan = sampler.sample(9, seed)
            assert parse_plan(plan_to_string(plan)) == plan

    def test_error_on_garbage(self):
        with pytest.raises(PlanSyntaxError):
            parse_plan("medium[3]")

    def test_error_on_trailing_characters(self):
        with pytest.raises(PlanSyntaxError):
            parse_plan("small[3]garbage")

    def test_error_on_missing_bracket(self):
        with pytest.raises(PlanSyntaxError):
            parse_plan("split[small[1],small[2]")

    def test_error_on_single_child_split(self):
        with pytest.raises(PlanSyntaxError):
            parse_plan("split[small[3]]")

    def test_error_on_oversized_leaf(self):
        with pytest.raises(PlanSyntaxError):
            parse_plan("small[9]")

    def test_error_on_empty_string(self):
        with pytest.raises(PlanSyntaxError):
            parse_plan("")

    def test_error_on_non_string(self):
        with pytest.raises(TypeError):
            parse_plan(42)

    def test_error_position_reported(self):
        try:
            parse_plan("split[small[1],medium[2]]")
        except PlanSyntaxError as exc:
            assert exc.position > 0
        else:  # pragma: no cover
            pytest.fail("expected PlanSyntaxError")
