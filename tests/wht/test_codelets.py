"""Tests for base-case codelets and their operation counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wht.codelets import (
    apply_codelet,
    apply_codelet_unrolled,
    codelet_costs,
    codelet_working_set_bytes,
    get_unrolled,
)
from repro.wht.plan import MAX_UNROLLED
from repro.wht.transform import wht_matrix, wht_reference


class TestCodeletCosts:
    def test_arithmetic_count_formula(self):
        for k in range(1, MAX_UNROLLED + 1):
            costs = codelet_costs(k)
            assert costs.arithmetic_ops == k * (1 << k)
            assert costs.additions == costs.subtractions

    def test_memory_count_formula(self):
        for k in range(1, MAX_UNROLLED + 1):
            costs = codelet_costs(k)
            assert costs.loads == 1 << k
            assert costs.stores == 1 << k

    def test_total_includes_overhead(self):
        costs = codelet_costs(3)
        assert costs.total_instructions == (
            costs.arithmetic_ops + costs.memory_ops + costs.call_overhead
        )

    def test_overhead_grows_with_size(self):
        assert codelet_costs(8).call_overhead > codelet_costs(1).call_overhead

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            codelet_costs(MAX_UNROLLED + 1)

    def test_working_set_bytes(self):
        assert codelet_working_set_bytes(3) == 8 * 8
        assert codelet_working_set_bytes(3, element_size=4) == 8 * 4


class TestApplyCodelet:
    @pytest.mark.parametrize("k", range(1, 7))
    def test_matches_reference_unit_stride(self, k):
        rng = np.random.default_rng(k)
        x = rng.standard_normal(1 << k)
        expected = wht_reference(x)
        work = x.copy()
        apply_codelet(work, k)
        assert np.allclose(work, expected)

    @pytest.mark.parametrize("k", range(1, 5))
    @pytest.mark.parametrize("stride", [2, 3, 5])
    def test_strided_application(self, k, stride):
        rng = np.random.default_rng(10 * k + stride)
        size = 1 << k
        x = rng.standard_normal(size * stride + 3)
        original = x.copy()
        apply_codelet(x, k, base=1, stride=stride)
        # The strided sub-vector is transformed...
        sub = original[1 : 1 + size * stride : stride]
        assert np.allclose(x[1 : 1 + size * stride : stride], wht_reference(sub))
        # ...and everything else is untouched.
        mask = np.ones(x.shape[0], dtype=bool)
        mask[1 : 1 + size * stride : stride] = False
        assert np.array_equal(x[mask], original[mask])

    def test_out_of_bounds_raises(self):
        x = np.zeros(4)
        with pytest.raises(IndexError):
            apply_codelet(x, 3)

    def test_invalid_stride_raises(self):
        x = np.zeros(8)
        with pytest.raises(ValueError):
            apply_codelet(x, 2, stride=0)

    def test_matches_hadamard_matrix(self):
        for k in range(1, 5):
            size = 1 << k
            matrix = wht_matrix(k)
            for column in range(size):
                x = np.zeros(size)
                x[column] = 1.0
                apply_codelet(x, k)
                assert np.allclose(x, matrix[:, column])


class TestUnrolledCodelets:
    @pytest.mark.parametrize("k", range(1, 6))
    def test_unrolled_matches_vectorised(self, k):
        rng = np.random.default_rng(k)
        x = rng.standard_normal(1 << k)
        a = x.copy()
        b = x.copy()
        apply_codelet(a, k)
        apply_codelet_unrolled(b, k)
        assert np.allclose(a, b)

    def test_unrolled_with_stride(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(16)
        a = x.copy()
        b = x.copy()
        apply_codelet(a, 2, base=1, stride=3)
        apply_codelet_unrolled(b, 2, base=1, stride=3)
        assert np.allclose(a, b)

    def test_generated_codelet_is_cached(self):
        assert get_unrolled(4) is get_unrolled(4)

    @given(k=st.integers(min_value=1, max_value=5), seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_unrolled_equals_reference(self, k, seed):
        x = np.random.default_rng(seed).standard_normal(1 << k)
        work = x.copy()
        apply_codelet_unrolled(work, k)
        assert np.allclose(work, wht_reference(x))
