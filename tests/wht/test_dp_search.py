"""Tests for the dynamic-programming plan search."""

import pytest

from repro.models.instruction_count import InstructionCountModel
from repro.wht.dp_search import DPSearch
from repro.wht.enumeration import enumerate_plans
from repro.wht.plan import Small, validate_plan


@pytest.fixture
def instruction_cost():
    return InstructionCountModel()


class TestCandidateCompositions:
    def test_binary_candidates(self, instruction_cost):
        searcher = DPSearch(instruction_cost, max_children=2)
        comps = searcher.candidate_compositions(5)
        assert (1, 4) in comps and (4, 1) in comps
        # The iterative composition is appended even though it has 5 parts.
        assert tuple([1] * 5) in comps
        assert all(len(c) <= 2 or c == (1, 1, 1, 1, 1) for c in comps)

    def test_unrestricted_candidates(self, instruction_cost):
        searcher = DPSearch(instruction_cost, max_children=None)
        comps = searcher.candidate_compositions(4)
        assert len(comps) == 2**3 - 1

    def test_no_duplicate_candidates(self, instruction_cost):
        searcher = DPSearch(instruction_cost, max_children=4)
        comps = searcher.candidate_compositions(4)
        assert len(comps) == len(set(comps))

    def test_invalid_configuration(self, instruction_cost):
        with pytest.raises(ValueError):
            DPSearch(instruction_cost, max_children=1)
        with pytest.raises(ValueError):
            DPSearch(instruction_cost, max_leaf=99)
        with pytest.raises(TypeError):
            DPSearch("not callable")


class TestSearch:
    def test_best_plans_for_every_exponent(self, instruction_cost):
        result = DPSearch(instruction_cost, max_children=3).search(6)
        for m in range(1, 7):
            plan = result.best(m)
            validate_plan(plan)
            assert plan.n == m

    def test_small_exponents_prefer_single_codelet(self, instruction_cost):
        # A single unrolled codelet has no loop or recursion overhead, so the
        # instruction model always prefers it when one exists.
        result = DPSearch(instruction_cost, max_children=3).search(6)
        for m in range(1, 7):
            assert result.best(m) == Small(m)

    def test_unrestricted_dp_is_optimal_for_instruction_model(self, instruction_cost):
        # With unrestricted compositions the DP must find the global optimum of
        # the (context-independent) instruction-count model.
        n = 5
        result = DPSearch(instruction_cost, max_children=None).search(n)
        best_exhaustive = min(
            (instruction_cost(plan), plan) for plan in enumerate_plans(n)
        )
        assert result.best_costs[n] == pytest.approx(best_exhaustive[0])

    def test_costs_are_recorded(self, instruction_cost):
        result = DPSearch(instruction_cost).search(4)
        assert result.evaluations == len(result.candidates)
        assert result.evaluations > 4
        assert set(result.best_costs) == {1, 2, 3, 4}

    def test_candidates_for_filters_by_exponent(self, instruction_cost):
        result = DPSearch(instruction_cost).search(4)
        for record in result.candidates_for(3):
            assert record.exponent == 3

    def test_extend_reuses_existing_work(self, instruction_cost):
        searcher = DPSearch(instruction_cost)
        result = searcher.search(4)
        evaluations_before = result.evaluations
        searcher.extend(result, 6)
        assert 6 in result.best_plans
        assert result.evaluations > evaluations_before
        # Exponents 1..4 were not re-evaluated.
        assert len(result.candidates_for(4)) == len(
            [c for c in result.candidates[:evaluations_before] if c.exponent == 4]
        )

    def test_search_with_measured_cost(self, machine):
        from repro.search.costs import MeasuredCyclesCost

        cost = MeasuredCyclesCost(machine)
        result = DPSearch(cost, max_children=2).search(6)
        best = result.best(6)
        validate_plan(best)
        # The DP best is at least as good as the canonical plans it evaluated.
        iterative_cost = [
            record.cost
            for record in result.candidates_for(6)
            if record.plan.composition == (1,) * 6
        ]
        assert result.best_costs[6] <= min(iterative_cost)
