"""Tests for plan-space enumeration and counting."""

import pytest

from repro.wht.enumeration import count_plans, enumerate_plans, growth_ratios
from repro.wht.plan import validate_plan


class TestCountPlans:
    def test_known_small_counts(self):
        # With unrolled codelets up to 2^8 every exponent <= 8 may also stop
        # immediately, giving the sequence below (verified by enumeration).
        expected = {1: 1, 2: 2, 3: 6, 4: 24, 5: 112, 6: 568, 7: 3032, 8: 16768}
        for n, value in expected.items():
            assert count_plans(n) == value

    def test_count_matches_enumeration(self):
        for n in range(1, 7):
            assert count_plans(n) == len(list(enumerate_plans(n)))

    def test_max_leaf_one_counts(self):
        # With only small[1] leaves the count of plans for n=2 and n=3 shrinks.
        assert count_plans(1, max_leaf=1) == 1
        assert count_plans(2, max_leaf=1) == 1
        assert count_plans(3, max_leaf=1) == 3

    def test_monotone_in_max_leaf(self):
        for n in range(2, 9):
            assert count_plans(n, max_leaf=1) <= count_plans(n, max_leaf=4) <= count_plans(n)

    def test_growth_is_roughly_seven(self):
        ratios = growth_ratios(24)
        # The asymptotic growth constant of the WHT plan space is just below 7;
        # the ratios increase towards it.
        assert ratios[-1] > 6.0
        assert ratios[-1] < 7.2
        assert ratios[-1] >= ratios[10]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            count_plans(0)
        with pytest.raises(ValueError):
            growth_ratios(0)


class TestEnumeratePlans:
    def test_all_plans_distinct_and_valid(self):
        plans = list(enumerate_plans(5))
        assert len(plans) == len(set(plans)) == count_plans(5)
        for plan in plans:
            validate_plan(plan)
            assert plan.n == 5

    def test_max_leaf_filter(self):
        plans = list(enumerate_plans(4, max_leaf=2))
        assert all(max(p.leaf_exponents()) <= 2 for p in plans)
        assert len(plans) == count_plans(4, max_leaf=2)

    def test_limit_exceeded_raises(self):
        with pytest.raises(RuntimeError):
            list(enumerate_plans(6, limit=10))

    def test_limit_not_reached_is_fine(self):
        plans = list(enumerate_plans(3, limit=100))
        assert len(plans) == 6

    def test_deterministic_order(self):
        assert list(enumerate_plans(4)) == list(enumerate_plans(4))
