"""Tests for the split-tree plan representation."""

import pytest

from repro.wht.plan import (
    MAX_UNROLLED,
    Plan,
    Small,
    Split,
    plan_from_compositions,
    validate_plan,
)


class TestSmall:
    def test_size(self):
        assert Small(3).size == 8
        assert Small(1).size == 2

    def test_is_leaf(self):
        assert Small(2).is_leaf

    def test_composition_is_single_part(self):
        assert Small(4).composition == (4,)

    def test_rejects_zero_exponent(self):
        with pytest.raises(ValueError):
            Small(0)

    def test_rejects_exponent_above_unrolled_limit(self):
        with pytest.raises(ValueError):
            Small(MAX_UNROLLED + 1)

    def test_equality_and_hash(self):
        assert Small(3) == Small(3)
        assert Small(3) != Small(4)
        assert hash(Small(3)) == hash(Small(3))

    def test_leaves_and_depth(self):
        leaf = Small(5)
        assert leaf.leaves() == [leaf]
        assert leaf.depth() == 0
        assert leaf.num_nodes() == 1


class TestSplit:
    def test_exponent_is_sum_of_children(self):
        plan = Split((Small(2), Small(3)))
        assert plan.n == 5
        assert plan.size == 32

    def test_composition(self):
        plan = Split((Small(1), Small(2), Small(1)))
        assert plan.composition == (1, 2, 1)

    def test_requires_two_children(self):
        with pytest.raises(ValueError):
            Split((Small(3),))

    def test_rejects_non_plan_children(self):
        with pytest.raises(TypeError):
            Split((Small(1), 3))

    def test_nested_structure_metrics(self):
        inner = Split((Small(1), Small(2)))
        plan = Split((inner, Small(3)))
        assert plan.n == 6
        assert plan.num_leaves() == 3
        assert plan.num_nodes() == 5
        assert plan.depth() == 2
        assert plan.leaf_exponents() == [1, 2, 3]

    def test_equality_is_structural(self):
        a = Split((Small(1), Split((Small(2), Small(3)))))
        b = Split((Small(1), Split((Small(2), Small(3)))))
        assert a == b
        assert hash(a) == hash(b)

    def test_order_matters(self):
        assert Split((Small(1), Small(2))) != Split((Small(2), Small(1)))

    def test_walk_is_preorder(self):
        inner = Split((Small(1), Small(2)))
        plan = Split((inner, Small(3)))
        nodes = list(plan.walk())
        assert nodes[0] is plan
        assert nodes[1] is inner
        assert isinstance(nodes[-1], Small)

    def test_splits_iterator(self):
        inner = Split((Small(1), Small(2)))
        plan = Split((inner, Small(3)))
        assert list(plan.splits()) == [plan, inner]

    def test_usable_as_dict_key(self):
        table = {Split((Small(1), Small(1))): "a"}
        assert table[Split((Small(1), Small(1)))] == "a"


class TestTransformations:
    def test_mirrored_reverses_children_recursively(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        mirrored = plan.mirrored()
        assert mirrored.composition == (5, 1)
        assert mirrored.children[0].composition == (3, 2)

    def test_mirrored_twice_is_identity(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        assert plan.mirrored().mirrored() == plan

    def test_map_leaves_identity(self):
        plan = Split((Small(1), Small(2)))
        assert plan.map_leaves(lambda leaf: leaf) == plan

    def test_map_leaves_rejects_exponent_change(self):
        plan = Split((Small(1), Small(2)))
        with pytest.raises(ValueError):
            plan.map_leaves(lambda leaf: Small(leaf.n + 1))


class TestSerialisation:
    def test_round_trip(self):
        plan = Split((Small(1), Split((Small(2), Small(3)))))
        assert Plan.from_dict(plan.to_dict()) == plan

    def test_leaf_round_trip(self):
        assert Plan.from_dict(Small(4).to_dict()) == Small(4)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            Plan.from_dict({"kind": "mystery"})


class TestPlanFromCompositions:
    def test_leaf_when_chooser_returns_none(self):
        assert plan_from_compositions(4, lambda m: None) == Small(4)

    def test_binary_recursion(self):
        def chooser(m):
            if m <= 2:
                return None
            return (1, m - 1)

        plan = plan_from_compositions(5, chooser)
        assert plan.n == 5
        assert plan.composition == (1, 4)

    def test_bad_composition_sum_raises(self):
        with pytest.raises(ValueError):
            plan_from_compositions(4, lambda m: (1, 1))

    def test_single_part_composition_raises(self):
        with pytest.raises(ValueError):
            plan_from_compositions(4, lambda m: (4,))


class TestValidatePlan:
    def test_valid_plan_passes(self):
        validate_plan(Split((Small(1), Split((Small(2), Small(3))))))

    def test_detects_inconsistent_exponent(self):
        plan = Split((Small(1), Small(2)))
        object.__setattr__(plan, "n", 99)
        with pytest.raises(ValueError):
            validate_plan(plan)
