"""Tests for canonical plan constructors."""

import numpy as np
import pytest

from repro.wht.canonical import (
    balanced_plan,
    canonical_plans,
    iterative_plan,
    left_recursive_plan,
    mixed_radix_plan,
    right_recursive_plan,
)
from repro.wht.plan import MAX_UNROLLED, Small, Split, validate_plan
from repro.wht.transform import apply_plan, random_input, wht_reference


class TestIterativePlan:
    def test_structure(self):
        plan = iterative_plan(5)
        assert isinstance(plan, Split)
        assert plan.composition == (1, 1, 1, 1, 1)
        assert all(isinstance(c, Small) for c in plan.children)

    def test_small_n_collapses_to_leaf(self):
        assert iterative_plan(1) == Small(1)

    def test_radix_4(self):
        plan = iterative_plan(6, radix=2)
        assert plan.composition == (2, 2, 2)

    def test_radix_with_remainder(self):
        plan = iterative_plan(7, radix=3)
        assert plan.composition == (3, 3, 1)

    def test_radix_above_unrolled_limit_rejected(self):
        with pytest.raises(ValueError):
            iterative_plan(20, radix=MAX_UNROLLED + 1)

    def test_depth_is_one(self):
        assert iterative_plan(10).depth() == 1


class TestRecursivePlans:
    def test_right_recursive_structure(self):
        plan = right_recursive_plan(5)
        assert plan.composition == (1, 4)
        assert plan.children[0] == Small(1)
        assert plan.children[1].composition == (1, 3)

    def test_left_recursive_structure(self):
        plan = left_recursive_plan(5)
        assert plan.composition == (4, 1)
        assert plan.children[1] == Small(1)

    def test_left_is_mirror_of_right(self):
        assert right_recursive_plan(7).mirrored() == left_recursive_plan(7)

    def test_depth_grows_linearly(self):
        assert right_recursive_plan(8).depth() == 7

    def test_larger_leaf(self):
        plan = right_recursive_plan(9, leaf=3)
        assert plan.composition == (3, 6)
        assert plan.leaf_exponents() == [3, 3, 3]

    def test_terminates_in_single_leaf_when_small(self):
        assert right_recursive_plan(3, leaf=4) == Small(3)

    def test_oversized_leaf_rejected(self):
        with pytest.raises(ValueError):
            right_recursive_plan(10, leaf=MAX_UNROLLED + 1)
        with pytest.raises(ValueError):
            left_recursive_plan(10, leaf=MAX_UNROLLED + 1)


class TestBalancedPlan:
    def test_structure(self):
        plan = balanced_plan(8)
        assert plan.composition == (4, 4)
        assert plan.depth() == 3

    def test_leaf_max_controls_leaves(self):
        plan = balanced_plan(8, leaf_max=4)
        assert set(plan.leaf_exponents()) <= {3, 4}

    def test_small_exponent_is_leaf(self):
        assert balanced_plan(3, leaf_max=4) == Small(3)


class TestMixedRadixPlan:
    def test_structure(self):
        plan = mixed_radix_plan(7, (3, 2, 2))
        assert plan.composition == (3, 2, 2)

    def test_sum_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mixed_radix_plan(6, (2, 2))

    def test_oversized_radix_rejected(self):
        with pytest.raises(ValueError):
            mixed_radix_plan(12, (MAX_UNROLLED + 1, 3))

    def test_single_part(self):
        assert mixed_radix_plan(4, (4,)) == Small(4)


class TestCanonicalPlans:
    def test_contains_three_algorithms(self):
        plans = canonical_plans(6)
        assert set(plans) == {"iterative", "right", "left"}

    def test_all_valid_and_correct(self):
        for n in range(1, 9):
            for name, plan in canonical_plans(n).items():
                validate_plan(plan)
                assert plan.n == n
                x = random_input(n, seed=n)
                assert np.allclose(apply_plan(plan, x), wht_reference(x)), name
