"""Tests for the recursive split uniform sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wht.plan import MAX_UNROLLED, Small, validate_plan
from repro.wht.random_plans import RSUSampler, random_plan, random_plans


class TestSamplerConstruction:
    def test_rejects_oversized_max_leaf(self):
        with pytest.raises(ValueError):
            RSUSampler(max_leaf=MAX_UNROLLED + 1)

    def test_rejects_max_children_below_two(self):
        with pytest.raises(ValueError):
            RSUSampler(max_children=1)


class TestChoices:
    def test_exponent_one_has_single_choice(self):
        assert RSUSampler().choices(1) == [(1,)]

    def test_choice_count_matches_composition_count(self):
        sampler = RSUSampler()
        # For m <= max_leaf every composition (including the trivial one) is a choice.
        for m in range(1, 6):
            assert len(sampler.choices(m)) == 2 ** (m - 1)

    def test_large_exponent_excludes_leaf(self):
        sampler = RSUSampler(max_leaf=4)
        choices = sampler.choices(6)
        assert (6,) not in choices
        assert len(choices) == 2**5 - 1

    def test_max_children_restriction(self):
        sampler = RSUSampler(max_children=2)
        choices = sampler.choices(4)
        assert all(len(c) <= 2 for c in choices)
        assert (1, 1, 2) not in choices

    def test_no_trivial_leaf_option(self):
        sampler = RSUSampler(allow_trivial_leaf=False)
        assert (3,) not in sampler.choices(3)

    def test_choices_cached(self):
        sampler = RSUSampler(max_children=3)
        assert sampler.choices(5) is sampler.choices(5)


class TestSampling:
    def test_sample_has_requested_exponent(self, rng):
        for n in (1, 3, 6, 10):
            plan = RSUSampler().sample(n, rng)
            assert plan.n == n
            validate_plan(plan)

    def test_deterministic_for_seed(self):
        a = RSUSampler().sample_many(8, 10, rng=99)
        b = RSUSampler().sample_many(8, 10, rng=99)
        assert a == b

    def test_sample_many_count(self, rng):
        plans = RSUSampler().sample_many(6, 25, rng)
        assert len(plans) == 25

    def test_leaf_constraint_respected(self, rng):
        sampler = RSUSampler(max_leaf=3)
        for plan in sampler.sample_many(9, 30, rng):
            assert max(plan.leaf_exponents()) <= 3

    def test_max_children_respected(self, rng):
        sampler = RSUSampler(max_children=2)
        for plan in sampler.sample_many(9, 30, rng):
            for node in plan.splits():
                assert len(node.children) == 2

    def test_iter_samples_is_endless(self, rng):
        stream = RSUSampler().iter_samples(5, rng)
        plans = [next(stream) for _ in range(10)]
        assert len(plans) == 10

    def test_exponent_one_always_leaf(self, rng):
        assert RSUSampler().sample(1, rng) == Small(1)

    def test_distribution_of_root_composition_is_uniform(self):
        # For n = 3 there are 4 equally likely root choices:
        # (3,), (1,2), (2,1), (1,1,1).
        rng = np.random.default_rng(5)
        sampler = RSUSampler()
        counts = {}
        trials = 8000
        for _ in range(trials):
            plan = sampler.sample(3, rng)
            key = plan.composition if not plan.is_leaf else (3,)
            counts[key] = counts.get(key, 0) + 1
        assert set(counts) == {(3,), (1, 2), (2, 1), (1, 1, 1)}
        expected = trials / 4
        for value in counts.values():
            assert abs(value - expected) < 5 * np.sqrt(expected)

    def test_variety_of_samples(self, rng):
        plans = RSUSampler().sample_many(9, 50, rng)
        assert len(set(plans)) > 30  # overwhelmingly distinct at this size


class TestConvenienceWrappers:
    def test_random_plan(self):
        plan = random_plan(7, rng=3)
        assert plan.n == 7

    def test_random_plans(self):
        plans = random_plans(6, 5, rng=3)
        assert len(plans) == 5
        assert all(p.n == 6 for p in plans)

    @given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_property_samples_are_valid_plans(self, n, seed):
        plan = random_plan(n, rng=seed)
        validate_plan(plan)
        assert plan.n == n


class TestBufferedSampleMany:
    """The batched fast path must be draw-for-draw identical to the scalar
    recursion: ``sample_many(n, count, seed)`` returns exactly the plans a
    loop of ``sample(n, generator)`` over the same seeded generator would."""

    def _scalar_reference(self, sampler_kwargs, n, count, seed):
        sampler = RSUSampler(**sampler_kwargs)
        generator = np.random.default_rng(seed)
        return [sampler.sample(n, generator) for _ in range(count)]

    @pytest.mark.parametrize(
        "sampler_kwargs, n",
        [
            ({}, 1),
            ({}, 2),
            ({}, 3),
            ({}, 9),
            ({}, 14),
            ({"max_leaf": 3}, 10),  # forces the redraw (rejection) path
            ({"max_leaf": 1}, 6),
            ({"allow_trivial_leaf": False}, 8),  # no trivial leaves at all
            ({"max_leaf": 2, "allow_trivial_leaf": False}, 7),
        ],
    )
    def test_bit_identical_to_scalar_loop(self, sampler_kwargs, n):
        sampler = RSUSampler(**sampler_kwargs)
        fast = sampler.sample_many(n, 60, rng=202)
        assert fast == self._scalar_reference(sampler_kwargs, n, 60, 202)

    @given(
        n=st.integers(min_value=1, max_value=12),
        max_leaf=st.integers(min_value=1, max_value=MAX_UNROLLED),
        trivial=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_property(self, n, max_leaf, trivial, seed):
        kwargs = {"max_leaf": max_leaf, "allow_trivial_leaf": trivial}
        fast = RSUSampler(**kwargs).sample_many(n, 10, rng=seed)
        assert fast == self._scalar_reference(kwargs, n, 10, seed)

    def test_restricted_distribution_uses_scalar_path(self):
        kwargs = {"max_children": 2}
        fast = RSUSampler(**kwargs).sample_many(8, 30, rng=5)
        assert fast == self._scalar_reference(kwargs, 8, 30, 5)

    def test_samples_are_valid_plans(self):
        for plan in RSUSampler().sample_many(11, 50, rng=1):
            validate_plan(plan)
            assert plan.n == 11

    def test_buffer_refill_across_chunks(self):
        # A count large enough to exhaust the initial chunk several times.
        sampler = RSUSampler()
        fast = sampler.sample_many(6, 3000, rng=77)
        assert fast == self._scalar_reference({}, 6, 3000, 77)

    def test_rejects_invalid_counts(self):
        with pytest.raises(ValueError):
            RSUSampler().sample_many(5, 0)
        with pytest.raises(ValueError):
            RSUSampler().sample_many(0, 5)


class TestRestrictedBufferedSampling:
    """The restricted distribution's batched path replays the scalar draws."""

    @pytest.mark.parametrize("max_children", [2, 3, 5])
    def test_bit_identical_to_scalar(self, max_children):
        sampler = RSUSampler(max_children=max_children)
        generator = np.random.default_rng(2024)
        scalar = [sampler.sample(10, generator) for _ in range(500)]
        assert sampler.sample_many(10, 500, rng=2024) == scalar

    def test_bit_identical_with_restricted_leaf(self):
        sampler = RSUSampler(max_leaf=3, max_children=2)
        generator = np.random.default_rng(7)
        scalar = [sampler.sample(9, generator) for _ in range(300)]
        assert sampler.sample_many(9, 300, rng=7) == scalar

    def test_bit_identical_without_trivial_leaf(self):
        sampler = RSUSampler(max_children=3, allow_trivial_leaf=False)
        generator = np.random.default_rng(5)
        scalar = [sampler.sample(8, generator) for _ in range(300)]
        assert sampler.sample_many(8, 300, rng=5) == scalar

    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(1, 11),
        max_children=st.integers(2, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bit_identical(self, seed, n, max_children):
        sampler = RSUSampler(max_children=max_children)
        generator = np.random.default_rng(seed)
        scalar = [sampler.sample(n, generator) for _ in range(40)]
        assert sampler.sample_many(n, 40, rng=seed) == scalar

    def test_plans_validate_and_respect_the_restriction(self):
        sampler = RSUSampler(max_children=2)
        for plan in sampler.sample_many(9, 100, rng=1):
            validate_plan(plan)
            stack = [plan]
            while stack:
                node = stack.pop()
                assert len(node.children) <= 2
                stack.extend(node.children)

    def test_scalar_fallback_when_replay_unsupported(self, monkeypatch):
        import sys

        module = sys.modules["repro.wht.random_plans"]
        monkeypatch.setattr(module, "_REPLAY_SUPPORTED", False)
        sampler = RSUSampler(max_children=2)
        generator = np.random.default_rng(3)
        scalar = [sampler.sample(8, generator) for _ in range(50)]
        assert sampler.sample_many(8, 50, rng=3) == scalar

    def test_replay_probe_accepts_this_numpy(self):
        from repro.wht.random_plans import _integer_replay_supported

        assert _integer_replay_supported()
