"""Tests for the instrumented plan interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wht.canonical import (
    iterative_plan,
    left_recursive_plan,
    right_recursive_plan,
)
from repro.wht.codelets import codelet_costs
from repro.wht.interpreter import ExecutionStats, LeafNest, NestBlock, PlanInterpreter
from repro.wht.plan import Small, Split
from repro.wht.random_plans import random_plan
from repro.wht.transform import random_input, wht_reference


@pytest.fixture
def interpreter():
    return PlanInterpreter()


class TestExecute:
    def test_computes_wht(self, interpreter):
        plan = right_recursive_plan(7)
        x = random_input(7, seed=1)
        work = x.copy()
        interpreter.execute(plan, work)
        assert np.allclose(work, wht_reference(x))

    def test_rejects_wrong_length(self, interpreter):
        with pytest.raises(ValueError):
            interpreter.execute(iterative_plan(4), np.zeros(8))

    def test_rejects_non_array(self, interpreter):
        with pytest.raises(ValueError):
            interpreter.execute(iterative_plan(2), [0.0] * 4)

    def test_stats_match_profile(self, interpreter):
        for seed in range(5):
            plan = random_plan(8, rng=seed)
            profile_stats, _ = interpreter.profile(plan)
            x = np.zeros(plan.size)
            execute_stats = interpreter.execute(plan, x, collect_stats=True)
            assert profile_stats.as_dict() == execute_stats.as_dict()

    def test_no_stats_by_default(self, interpreter):
        assert interpreter.execute(iterative_plan(3), np.zeros(8)) is None


class TestProfileCounts:
    def test_bare_leaf(self, interpreter):
        stats, nests = interpreter.profile(Small(4), record_trace=True)
        assert stats.codelet_calls == {4: 1}
        assert stats.split_invocations == 0
        assert stats.child_calls == 0
        assert stats.loads == 16 and stats.stores == 16
        assert stats.arithmetic_ops == 4 * 16
        assert len(nests) == 1 and nests[0].calls == 1

    def test_single_split_of_two_leaves(self, interpreter):
        plan = Split((Small(1), Small(2)))  # size 8
        stats, _ = interpreter.profile(plan)
        # Children processed right to left: small[2] with R=2,S=1 then
        # small[1] with R=1,S=4.
        assert stats.split_invocations == 1
        assert stats.outer_iterations == 2
        assert stats.codelet_calls == {2: 2, 1: 4}
        assert stats.child_calls == 6
        assert stats.block_iterations == 2 + 1
        assert stats.stride_iterations == 1 + 4

    def test_iterative_plan_counts(self, interpreter):
        n = 6
        stats, _ = interpreter.profile(iterative_plan(n))
        size = 1 << n
        assert stats.split_invocations == 1
        assert stats.codelet_calls == {1: n * size // 2}
        # Every element is loaded and stored once per pass, one pass per leaf.
        assert stats.loads == n * size
        assert stats.stores == n * size
        # One butterfly stage per leaf pass: N/2 additions and N/2 subtractions.
        assert stats.arithmetic_ops == n * size

    def test_recursive_plans_have_more_overhead_events(self, interpreter):
        n = 8
        iterative, _ = interpreter.profile(iterative_plan(n))
        right, _ = interpreter.profile(right_recursive_plan(n))
        left, _ = interpreter.profile(left_recursive_plan(n))
        assert right.split_invocations > iterative.split_invocations
        assert left.split_invocations == right.split_invocations
        # The arithmetic work is identical for every plan of one size.
        assert iterative.arithmetic_ops == right.arithmetic_ops == left.arithmetic_ops
        # Left recursion pays more block-loop iterations, right more stride
        # iterations (see the interpreter module docstring).
        assert left.block_iterations > right.block_iterations
        assert right.stride_iterations > left.stride_iterations

    def test_total_memory_ops_formula(self, interpreter):
        for seed in range(5):
            plan = random_plan(7, rng=seed)
            stats, _ = interpreter.profile(plan)
            assert stats.loads == stats.stores == plan.size * plan.num_leaves()

    def test_scaled(self):
        stats = ExecutionStats(n=3)
        stats.codelet_calls[2] = 3
        stats.loads = 10
        scaled = stats.scaled(4)
        assert scaled.codelet_calls[2] == 12
        assert scaled.loads == 40
        assert stats.loads == 10  # original untouched

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ExecutionStats(n=1).scaled(-1)

    def test_merge_accumulates(self):
        a = ExecutionStats(n=3)
        a.additions = 5
        b = ExecutionStats(n=3)
        b.additions = 7
        a.merge(b)
        assert a.additions == 12


class TestLeafNests:
    def test_nest_element_indices_order(self):
        nest = LeafNest(
            k=1, base=0, outer_count=2, outer_stride=4, inner_count=2, inner_stride=1, elem_stride=2
        )
        indices = nest.element_indices()
        assert indices.tolist() == [0, 2, 1, 3, 4, 6, 5, 7]
        assert nest.calls == 4
        assert nest.total_elements == 8

    def test_nests_cover_every_element_once_per_pass(self, interpreter):
        for seed in range(5):
            plan = random_plan(7, rng=seed)
            _, nests = interpreter.profile(plan, record_trace=True)
            counts = np.zeros(plan.size, dtype=int)
            for nest in nests:
                np.add.at(counts, nest.element_indices(), 1)
            # Each leaf pass touches every element exactly once.
            assert np.all(counts == plan.num_leaves())

    def test_nest_addresses_stay_in_bounds(self, interpreter):
        for seed in range(5):
            plan = random_plan(8, rng=seed)
            _, nests = interpreter.profile(plan, record_trace=True)
            for nest in nests:
                indices = nest.element_indices()
                assert indices.min() >= 0
                assert indices.max() < plan.size

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_profile_consistent_with_codelet_costs(self, seed):
        plan = random_plan(6, rng=seed)
        stats, _ = PlanInterpreter().profile(plan)
        adds = sum(codelet_costs(k).additions * c for k, c in stats.codelet_calls.items())
        assert stats.additions == adds


class TestNestBlocks:
    """The template-replaying block walker behind profile and the machine."""

    def test_bare_leaf_is_one_block(self, interpreter):
        blocks = list(interpreter.iter_nest_blocks(Small(3)))
        assert len(blocks) == 1
        assert blocks[0].instances == 1
        assert blocks[0].starts.tolist() == [0]
        assert blocks[0].accesses_per_instance == 2 * 8

    def test_block_count_scales_with_structure_not_invocations(self, interpreter):
        # A deep right-recursive plan has ~2 emission sites per level, while
        # its nest count grows exponentially with depth.
        plan = right_recursive_plan(10, leaf=1)
        blocks = list(interpreter.iter_nest_blocks(plan))
        nests = list(interpreter.iter_nests(plan))
        assert len(blocks) < 25
        assert sum(block.instances for block in blocks) == len(nests)

    def test_iter_nests_matches_profile_record_trace(self, interpreter):
        for seed in range(5):
            plan = random_plan(8, rng=seed)
            _, expected = interpreter.profile(plan, record_trace=True)
            assert list(interpreter.iter_nests(plan)) == expected

    def test_stats_accumulated_while_walking(self, interpreter):
        plan = random_plan(8, rng=2)
        expected, _ = interpreter.profile(plan)
        stats = ExecutionStats(n=plan.n)
        for _ in interpreter.iter_nest_blocks(plan, stats=stats):
            pass
        assert stats.as_dict() == expected.as_dict()

    def test_starts_tile_the_access_stream(self, interpreter):
        plan = random_plan(8, rng=4)
        blocks = list(interpreter.iter_nest_blocks(plan))
        spans = sorted(
            (int(start), block.accesses_per_instance)
            for block in blocks
            for start in block.starts.tolist()
        )
        cursor = 0
        for start, length in spans:
            assert start == cursor
            cursor += length
        stats, _ = interpreter.profile(plan)
        assert cursor == stats.memory_ops

    def test_blocks_share_template_arrays_immutably(self, interpreter):
        plan = Split((Small(1), Small(2)))
        blocks = list(interpreter.iter_nest_blocks(plan))
        assert all(isinstance(block, NestBlock) for block in blocks)
        assert all(block.offsets.dtype == np.int64 for block in blocks)
