"""Cross-plan bit-identity of the fused batch measurement pipeline.

The batch path — per-plan streams spliced at disjoint line offsets, one
warm-started simulator pass per level, analytic full-coverage shortcuts,
write-pass elision — must be *bit-identical* to preparing every plan
individually through the eager reference pipeline, for any batch
composition, any chunking of the super-stream, and any cache geometry.
These tests pin that contract over the enumerated plan space, random RSU
batches and Hypothesis-driven geometries.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheConfig
from repro.machine.configs import opteron_like, tiny_machine
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.machine import PreparedPlanCache, SimulatedMachine
from repro.machine.trace import (
    LineChunk,
    splice_line_chunks,
    stream_line_chunks,
    trace_from_nests,
)
from repro.wht.enumeration import enumerate_plans
from repro.wht.interpreter import ExecutionStats, PlanInterpreter
from repro.wht.random_plans import random_plan, random_plans

INTERPRETER = PlanInterpreter()


def reference_prepare(config, plan):
    """The eager seed pipeline: full trace, oracle simulators, no shortcuts."""
    stats, nests = PlanInterpreter().profile(plan, record_trace=True)
    trace = trace_from_nests(nests, element_size=config.element_size)
    hierarchy = MemoryHierarchy(config.l1, config.l2, vectorized=False)
    return stats, hierarchy.process_trace(trace)


def streamed_prepare(config, plan):
    """The streamed per-plan pipeline without elision or analytic paths."""
    stats = ExecutionStats(n=plan.n)
    chunks = stream_line_chunks(
        PlanInterpreter().iter_nest_blocks(plan, stats=stats),
        line_size=config.l1.line_size,
        element_size=config.element_size,
    )
    hierarchy = MemoryHierarchy(config.l1, config.l2, vectorized=config.vectorized_caches)
    return stats, hierarchy.process_line_chunks(chunks)


def assert_batch_matches_reference(machine, plans, reference=streamed_prepare):
    prepared = machine.prepare_batch(plans)
    assert len(prepared) == len(plans)
    for plan, prep in zip(plans, prepared):
        ref_stats, ref_hier = reference(machine.config, plan)
        assert prep.hierarchy_stats == ref_hier, plan
        assert prep.stats.as_dict() == ref_stats.as_dict(), plan


class TestPrepareBatchParity:
    def test_enumerated_space_tiny_machine(self):
        machine = tiny_machine(noise_sigma=0.0)
        plans = [plan for n in range(1, 7) for plan in enumerate_plans(n)]
        assert_batch_matches_reference(machine, plans, reference=reference_prepare)

    def test_mixed_sizes_cross_all_cache_regimes(self):
        # The tiny machine's L1 boundary is at a few dozen elements, so this
        # batch mixes fully-analytic, L2-analytic and fully-simulated plans.
        machine = tiny_machine(noise_sigma=0.0)
        plans = [random_plan(n, rng=seed) for seed in range(3) for n in (3, 5, 7, 9)]
        assert_batch_matches_reference(machine, plans, reference=reference_prepare)

    def test_opteron_rsu_batch(self):
        machine = opteron_like(noise_sigma=0.0)
        plans = random_plans(9, 6, rng=11) + random_plans(12, 3, rng=12)
        assert_batch_matches_reference(machine, plans, reference=reference_prepare)

    def test_batch_equals_singular_prepare(self):
        machine = tiny_machine(noise_sigma=0.0)
        plans = [random_plan(8, rng=seed) for seed in range(8)]
        singular = [SimulatedMachine(machine.config).prepare(p) for p in plans]
        batched = machine.prepare_batch(plans)
        for one, many in zip(singular, batched):
            assert one.hierarchy_stats == many.hierarchy_stats
            assert one.stats == many.stats

    def test_duplicates_prepared_once_and_identical(self):
        machine = tiny_machine(noise_sigma=0.0)
        machine.prepared_cache = PreparedPlanCache(16)
        plan = random_plan(8, rng=3)
        other = random_plan(8, rng=4)
        prepared = machine.prepare_batch([plan, other, plan, plan])
        assert prepared[0] is prepared[2] is prepared[3]
        assert prepared[1] is not prepared[0]

    def test_batch_populates_and_reuses_the_prepared_cache(self):
        machine = tiny_machine(noise_sigma=0.0)
        machine.prepared_cache = PreparedPlanCache(16)
        plans = [random_plan(8, rng=seed) for seed in range(4)]
        first = machine.prepare_batch(plans)
        hits_before = machine.prepared_cache.hits
        second = machine.prepare_batch(plans)
        assert machine.prepared_cache.hits == hits_before + len(plans)
        for a, b in zip(first, second):
            assert a is b

    def test_measurements_identical_through_batch(self):
        config = tiny_machine(noise_sigma=0.05).config
        plans = [random_plan(7, rng=seed) for seed in range(5)]
        serial = [SimulatedMachine(config).measure(p, rng=42).cycles for p in plans]
        machine = SimulatedMachine(config)
        batched = [
            machine.measure_prepared(prep, rng=42).cycles
            for prep in machine.prepare_batch(plans)
        ]
        assert batched == serial

    def test_sparse_elements_disable_the_analytic_shortcuts(self):
        # Elements wider than an L1 line leave untouched lines inside the
        # footprint, so the full-coverage shortcuts must not claim exactness;
        # the batch path falls back to full simulation and stays bit-exact.
        from repro.machine.machine import MachineConfig

        config = MachineConfig(
            name="sparse-elements",
            l1=CacheConfig(256, 8, 2, name="L1"),
            l2=CacheConfig(2048, 16, 4, name="L2"),
            element_size=16,
        )
        machine = SimulatedMachine(config)
        plans = [random_plan(n, rng=seed) for seed in range(2) for n in (3, 4, 6)]
        assert_batch_matches_reference(machine, plans, reference=reference_prepare)

    def test_non_dividing_element_size_disables_the_analytic_shortcuts(self):
        # An element size that does not divide the line size can leave the
        # footprint's trailing line untouched, so the shortcut must not fire.
        from repro.machine.machine import MachineConfig

        config = MachineConfig(
            name="odd-elements",
            l1=CacheConfig(256, 8, 2, name="L1"),
            l2=CacheConfig(2048, 16, 4, name="L2"),
            element_size=3,
        )
        machine = SimulatedMachine(config)
        plans = [random_plan(n, rng=seed) for seed in range(2) for n in (3, 5, 6)]
        assert_batch_matches_reference(machine, plans, reference=reference_prepare)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_random_batches(self, seed):
        rng = np.random.default_rng(seed)
        machine = tiny_machine(noise_sigma=0.0)
        sizes = rng.integers(2, 10, size=int(rng.integers(2, 6)))
        plans = [random_plan(int(n), rng=rng) for n in sizes]
        assert_batch_matches_reference(machine, plans)


GEOMETRIES = st.tuples(
    st.sampled_from([128, 256, 512, 1024]),  # l1 size
    st.sampled_from([16, 32, 64]),  # l1 line
    st.sampled_from([1, 2, 4]),  # l1 assoc
    st.sampled_from([2048, 8192]),  # l2 size
    st.sampled_from([32, 64]),  # l2 line
    st.sampled_from([1, 2, 4, 16]),  # l2 assoc
)


class TestProcessLineChunksBatch:
    """The batch processor equals looping process_line_chunks per plan."""

    def _streams(self, hierarchy, plans, element_size=8):
        streams = []
        for plan in plans:
            stats = ExecutionStats(n=plan.n)
            streams.append(
                list(
                    stream_line_chunks(
                        PlanInterpreter().iter_nest_blocks(plan, stats=stats),
                        line_size=hierarchy.l1_config.line_size,
                        element_size=element_size,
                    )
                )
            )
        return streams

    @pytest.mark.parametrize("chunk_lines", [64, 1 << 20])
    def test_matches_per_plan_loop(self, chunk_lines):
        hierarchy = MemoryHierarchy(
            CacheConfig(256, 32, 2), CacheConfig(2048, 32, 4)
        )
        plans = [random_plan(n, rng=seed) for seed in range(3) for n in (5, 7, 8)]
        streams = self._streams(hierarchy, plans)
        expected = [hierarchy.process_line_chunks(iter(chunks)) for chunks in streams]
        offsets = hierarchy.batch_line_offsets(
            [int(max(c.lines.max() for c in chunks if c.lines.size) + 1) for chunks in streams]
        )
        spliced = splice_line_chunks(streams, offsets, chunk_lines=chunk_lines)
        got = hierarchy.process_line_chunks_batch(spliced, len(plans))
        assert got == expected

    @given(geometry=GEOMETRIES, seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_random_geometries(self, geometry, seed):
        l1_size, l1_line, l1_assoc, l2_size, l2_line, l2_assoc = geometry
        assume(l1_assoc <= l1_size // l1_line)
        assume(l2_assoc <= l2_size // l2_line)
        hierarchy = MemoryHierarchy(
            CacheConfig(l1_size, l1_line, l1_assoc, name="L1"),
            CacheConfig(l2_size, l2_line, l2_assoc, name="L2"),
        )
        rng = np.random.default_rng(seed)
        plans = [
            random_plan(int(n), rng=rng)
            for n in rng.integers(2, 9, size=int(rng.integers(1, 5)))
        ]
        streams = self._streams(hierarchy, plans)
        expected = [hierarchy.process_line_chunks(iter(chunks)) for chunks in streams]
        spans = [
            int(max((c.lines.max() for c in chunks if c.lines.size), default=0)) + 1
            for chunks in streams
        ]
        chunk_lines = int(rng.integers(32, 4096))
        spliced = splice_line_chunks(streams, hierarchy.batch_line_offsets(spans), chunk_lines=chunk_lines)
        footprints = [plan.size * 8 for plan in plans]
        got = hierarchy.process_line_chunks_batch(
            spliced, len(plans), footprint_bytes=footprints
        )
        assert got == expected

    def test_no_l2_hierarchy(self):
        hierarchy = MemoryHierarchy(CacheConfig(256, 32, 2), None)
        plans = [random_plan(7, rng=seed) for seed in range(4)]
        streams = self._streams(hierarchy, plans)
        expected = [hierarchy.process_line_chunks(iter(chunks)) for chunks in streams]
        spans = [int(max(c.lines.max() for c in chunks if c.lines.size)) + 1 for chunks in streams]
        spliced = splice_line_chunks(streams, hierarchy.batch_line_offsets(spans))
        assert hierarchy.process_line_chunks_batch(spliced, len(plans)) == expected

    def test_empty_batch(self):
        hierarchy = MemoryHierarchy(CacheConfig(256, 32, 2), CacheConfig(2048, 32, 4))
        assert hierarchy.process_line_chunks_batch(iter(()), 0) == []


class TestSpliceLineChunks:
    def test_segments_preserve_streams_and_offsets(self):
        streams = [
            [LineChunk(lines=np.array([1, 2, 3]), accesses=6)],
            [
                LineChunk(lines=np.array([0, 1]), accesses=4),
                LineChunk(lines=np.array([5]), accesses=2),
            ],
        ]
        chunks = list(splice_line_chunks(streams, [0, 100], chunk_lines=1 << 20))
        assert len(chunks) == 1
        chunk = chunks[0]
        assert np.array_equal(chunk.lines, [1, 2, 3, 100, 101, 105])
        assert np.array_equal(chunk.seg_plan, [0, 1, 1])
        assert np.array_equal(chunk.seg_bounds, [0, 3, 5, 6])
        assert np.array_equal(chunk.seg_accesses, [6, 4, 2])

    def test_flushes_at_the_line_budget(self):
        streams = [
            [LineChunk(lines=np.arange(10), accesses=10)],
            [LineChunk(lines=np.arange(10), accesses=10)],
        ]
        chunks = list(splice_line_chunks(streams, [0, 1024], chunk_lines=8))
        assert len(chunks) == 2
        assert all(chunk.segments == 1 for chunk in chunks)

    def test_rejects_mismatched_offsets(self):
        with pytest.raises(ValueError):
            list(splice_line_chunks([[]], [0, 1]))


class TestBatchLineOffsets:
    def test_offsets_are_disjoint_and_aligned(self):
        hierarchy = MemoryHierarchy(
            CacheConfig(256, 32, 2), CacheConfig(4096, 64, 4)
        )
        spans = [100, 1, 5000, 17]
        offsets = hierarchy.batch_line_offsets(spans)
        align_bytes = max(
            hierarchy.l1_config.num_sets * hierarchy.l1_config.line_size,
            hierarchy.l2_config.num_sets * hierarchy.l2_config.line_size,
        )
        unit = align_bytes // hierarchy.l1_config.line_size
        for index, (offset, span) in enumerate(zip(offsets, spans)):
            assert offset % unit == 0
            if index:
                assert offset >= offsets[index - 1] + spans[index - 1]

    def test_overflow_is_rejected(self):
        hierarchy = MemoryHierarchy(CacheConfig(256, 32, 2), None)
        with pytest.raises(ValueError):
            hierarchy.batch_line_offsets([1 << 61, 1 << 61])


class TestAnalyticCoverage:
    """The full-coverage shortcuts equal simulation wherever they apply."""

    @pytest.mark.parametrize(
        "l1,l2",
        [
            (CacheConfig(256, 32, 2), CacheConfig(2048, 32, 4)),
            (CacheConfig(512, 32, 2), CacheConfig(4096, 64, 4)),
            (CacheConfig(512, 64, 1), CacheConfig(4096, 32, 16)),
            (CacheConfig(1024, 32, 4), None),
        ],
    )
    def test_fitting_footprints_match_simulation(self, l1, l2):
        hierarchy = MemoryHierarchy(l1, l2)
        for seed in range(3):
            for n in range(2, 9):
                plan = random_plan(n, rng=seed)
                footprint = plan.size * 8
                stats = ExecutionStats(n=plan.n)
                chunks = stream_line_chunks(
                    PlanInterpreter().iter_nest_blocks(plan, stats=stats),
                    line_size=l1.line_size,
                    element_size=8,
                )
                simulated = hierarchy.process_line_chunks(chunks)
                analytic = hierarchy.analytic_coverage_stats(
                    footprint, stats.memory_ops
                )
                if analytic is not None:
                    assert analytic == simulated, (plan, l1, l2)
                l2_misses = hierarchy.analytic_l2_misses(footprint)
                if l2_misses is not None:
                    assert l2_misses == simulated.l2_misses, (plan, l1, l2)

    def test_oversized_footprint_is_not_claimed(self):
        hierarchy = MemoryHierarchy(CacheConfig(256, 32, 2), CacheConfig(2048, 32, 4))
        assert hierarchy.analytic_coverage_stats(4096, 100) is None
        assert hierarchy.analytic_l2_misses(4096) is None
        assert not hierarchy.covers_analytically(4096)


class TestWritePassElision:
    """Elided streams produce bit-identical statistics (never bit-identical
    line sequences — that is the point)."""

    @pytest.mark.parametrize(
        "l1,l2",
        [
            (CacheConfig(256, 32, 1), CacheConfig(2048, 32, 4)),
            (CacheConfig(256, 32, 2), CacheConfig(2048, 32, 4)),
            (CacheConfig(1024, 32, 16), CacheConfig(8192, 64, 4)),
        ],
    )
    def test_stats_match_unelided_stream(self, l1, l2):
        hierarchy = MemoryHierarchy(l1, l2)
        for seed in range(4):
            for n in (5, 7, 9, 10):
                plan = random_plan(n, rng=seed)
                plain = hierarchy.process_line_chunks(
                    stream_line_chunks(
                        PlanInterpreter().iter_nest_blocks(plan),
                        line_size=l1.line_size,
                        element_size=8,
                    )
                )
                elided = hierarchy.process_line_chunks(
                    stream_line_chunks(
                        PlanInterpreter().iter_nest_blocks(plan),
                        line_size=l1.line_size,
                        element_size=8,
                        hit_elision_sets=l1.num_sets,
                        hit_elision_ways=l1.associativity,
                    )
                )
                assert elided == plain, (plan, l1, l2)

    def test_elision_shrinks_the_stream(self):
        plan = random_plan(10, rng=0)
        plain = sum(
            c.lines.shape[0]
            for c in stream_line_chunks(
                PlanInterpreter().iter_nest_blocks(plan), line_size=64, element_size=8
            )
        )
        elided = sum(
            c.lines.shape[0]
            for c in stream_line_chunks(
                PlanInterpreter().iter_nest_blocks(plan),
                line_size=64,
                element_size=8,
                hit_elision_sets=512,
                hit_elision_ways=2,
            )
        )
        assert elided < plain

    def test_raw_accesses_still_counted(self):
        plan = random_plan(8, rng=1)
        plain = sum(
            c.accesses
            for c in stream_line_chunks(
                PlanInterpreter().iter_nest_blocks(plan), line_size=32, element_size=8
            )
        )
        elided = sum(
            c.accesses
            for c in stream_line_chunks(
                PlanInterpreter().iter_nest_blocks(plan),
                line_size=32,
                element_size=8,
                hit_elision_sets=8,
                hit_elision_ways=2,
            )
        )
        assert elided == plain
