"""Tests for memory-trace generation."""

import numpy as np
import pytest

from repro.machine.trace import (
    MemoryTrace,
    collapse_consecutive,
    nest_addresses,
    trace_from_nests,
)
from repro.wht.interpreter import LeafNest, PlanInterpreter
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.random_plans import random_plan


def nests_for(plan):
    _, nests = PlanInterpreter().profile(plan, record_trace=True)
    return nests


class TestNestAddresses:
    def test_read_then_write_per_call(self):
        nest = LeafNest(
            k=1, base=0, outer_count=1, outer_stride=0, inner_count=1, inner_stride=0, elem_stride=1
        )
        addresses = nest_addresses(nest, element_size=8)
        # One call on elements {0, 1}: read pass then write pass.
        assert addresses.tolist() == [0, 8, 0, 8]

    def test_multiple_calls_in_order(self):
        nest = LeafNest(
            k=1, base=0, outer_count=2, outer_stride=2, inner_count=1, inner_stride=0, elem_stride=1
        )
        addresses = nest_addresses(nest, element_size=8)
        assert addresses.tolist() == [0, 8, 0, 8, 16, 24, 16, 24]

    def test_base_address_offset(self):
        nest = LeafNest(
            k=1, base=0, outer_count=1, outer_stride=0, inner_count=1, inner_stride=0, elem_stride=1
        )
        addresses = nest_addresses(nest, element_size=8, base_address=4096)
        assert addresses.min() == 4096

    def test_element_size(self):
        nest = LeafNest(
            k=1, base=0, outer_count=1, outer_stride=0, inner_count=1, inner_stride=0, elem_stride=1
        )
        assert nest_addresses(nest, element_size=4).tolist() == [0, 4, 0, 4]


class TestTraceFromNests:
    def test_length_is_twice_element_passes(self):
        plan = iterative_plan(6)
        trace = trace_from_nests(nests_for(plan))
        # loads + stores = 2 * N * num_leaves
        assert trace.accesses == 2 * plan.size * plan.num_leaves()
        assert trace.loads == trace.stores

    def test_footprint_equals_vector_size(self):
        plan = right_recursive_plan(7)
        trace = trace_from_nests(nests_for(plan))
        assert trace.footprint_bytes == plan.size * 8

    def test_addresses_within_vector(self):
        for seed in range(5):
            plan = random_plan(7, rng=seed)
            trace = trace_from_nests(nests_for(plan))
            assert trace.addresses.min() >= 0
            assert trace.addresses.max() <= (plan.size - 1) * 8

    def test_empty_nest_list(self):
        trace = trace_from_nests([])
        assert trace.accesses == 0
        assert trace.footprint_bytes == 0

    def test_line_addresses(self):
        plan = iterative_plan(4)
        trace = trace_from_nests(nests_for(plan))
        lines = trace.line_addresses(64)
        assert lines.max() == (plan.size * 8 - 8) // 64

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace(addresses=np.zeros(4, dtype=np.int64), loads=1, stores=1)
        with pytest.raises(ValueError):
            MemoryTrace(addresses=np.zeros((2, 2), dtype=np.int64), loads=2, stores=2)


class TestCollapseConsecutive:
    def test_removes_runs(self):
        collapsed, removed = collapse_consecutive(np.array([1, 1, 1, 2, 2, 1]))
        assert collapsed.tolist() == [1, 2, 1]
        assert removed == 3

    def test_no_runs(self):
        collapsed, removed = collapse_consecutive(np.array([1, 2, 3]))
        assert collapsed.tolist() == [1, 2, 3]
        assert removed == 0

    def test_empty(self):
        collapsed, removed = collapse_consecutive(np.array([], dtype=np.int64))
        assert collapsed.shape == (0,)
        assert removed == 0

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            collapse_consecutive(np.zeros((2, 2)))

    def test_miss_counts_preserved_under_collapse(self):
        # Collapsing consecutive duplicate line accesses must not change the
        # miss count of any simulator.
        from repro.machine.cache import CacheConfig, SetAssociativeLRUCache

        plan = random_plan(7, rng=1)
        trace = trace_from_nests(nests_for(plan))
        config = CacheConfig(512, 64, 2)
        lines = trace.addresses >> 6
        collapsed, _ = collapse_consecutive(lines)
        full = SetAssociativeLRUCache(config).simulate(lines << 6)
        reduced = SetAssociativeLRUCache(config).simulate(collapsed << 6)
        assert full.sum() == reduced.sum()
