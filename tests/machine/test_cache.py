"""Tests for the cache simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import (
    CacheConfig,
    CacheStatistics,
    DirectMappedCache,
    NWayLRUCache,
    SetAssociativeLRUCache,
    TwoWayLRUCache,
    make_cache,
    simulate_trace,
)


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=1024, line_size=64, associativity=2)
        assert config.num_lines == 16
        assert config.num_sets == 8
        assert config.offset_bits == 6
        assert config.index_bits == 3

    def test_line_set_tag_extraction(self):
        config = CacheConfig(size_bytes=1024, line_size=64, associativity=2)
        address = (5 << (6 + 3)) | (3 << 6) | 17  # tag 5, set 3, offset 17
        assert config.set_of(address) == 3
        assert config.tag_of(address) == 5
        assert config.line_of(address) == (5 << 3) | 3

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_size=64)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_size=48)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_size=64, associativity=3)

    def test_rejects_line_larger_than_cache(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, line_size=128)

    def test_rejects_excess_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=128, line_size=64, associativity=4)

    def test_describe_mentions_geometry(self):
        text = CacheConfig(size_bytes=2048, line_size=64, associativity=2, name="L1").describe()
        assert "L1" in text and "2048" in text and "2-way" in text


class TestCacheStatistics:
    def test_hits_and_miss_ratio(self):
        stats = CacheStatistics()
        stats.record(10, 4)
        assert stats.hits == 6
        assert stats.miss_ratio == pytest.approx(0.4)

    def test_empty_ratio_is_zero(self):
        assert CacheStatistics().miss_ratio == 0.0

    def test_rejects_more_misses_than_accesses(self):
        with pytest.raises(ValueError):
            CacheStatistics().record(1, 2)

    def test_merged(self):
        merged = CacheStatistics(10, 2).merged(CacheStatistics(5, 3))
        assert merged.accesses == 15 and merged.misses == 5


class TestReferenceLRU:
    def test_cold_misses(self):
        cache = SetAssociativeLRUCache(CacheConfig(256, 32, 2))
        assert cache.access(0) is True
        assert cache.access(0) is False
        assert cache.access(8) is False  # same line
        assert cache.access(32) is True  # next line

    def test_lru_eviction_order(self):
        # One set (fully associative with 2 ways over 2 lines).
        cache = SetAssociativeLRUCache(CacheConfig(64, 32, 2))
        a, b, c = 0, 1024, 2048  # all map to set 0
        assert cache.access(a) and cache.access(b)
        assert cache.access(a) is False  # a now MRU
        assert cache.access(c) is True  # evicts b
        assert cache.access(a) is False  # a still resident
        assert cache.access(b) is True  # b was evicted

    def test_reset(self):
        cache = SetAssociativeLRUCache(CacheConfig(256, 32, 2))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is True

    def test_simulate_matches_access_loop(self):
        config = CacheConfig(512, 32, 4)
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 8192, size=300) * 8
        a = SetAssociativeLRUCache(config)
        b = SetAssociativeLRUCache(config)
        vector = a.simulate(addresses)
        scalar = np.array([b.access(int(addr)) for addr in addresses])
        assert np.array_equal(vector, scalar)


class TestVectorisedCaches:
    @pytest.mark.parametrize("assoc,cls", [(1, DirectMappedCache), (2, TwoWayLRUCache)])
    def test_matches_reference_on_random_traces(self, assoc, cls):
        config = CacheConfig(1024, 32, assoc)
        rng = np.random.default_rng(assoc)
        for _ in range(10):
            addresses = rng.integers(0, 4096, size=400) * 8
            reference = SetAssociativeLRUCache(config).simulate(addresses)
            vectorised = cls(config).simulate(addresses)
            assert np.array_equal(reference, vectorised)

    @pytest.mark.parametrize("assoc,cls", [(1, DirectMappedCache), (2, TwoWayLRUCache)])
    def test_warm_continuation_matches_reference(self, assoc, cls):
        config = CacheConfig(512, 32, assoc)
        rng = np.random.default_rng(10 + assoc)
        reference = SetAssociativeLRUCache(config)
        vectorised = cls(config)
        for _ in range(5):
            addresses = rng.integers(0, 2048, size=200) * 8
            assert np.array_equal(
                reference.simulate(addresses), vectorised.simulate(addresses)
            )

    @pytest.mark.parametrize("assoc,cls", [(1, DirectMappedCache), (2, TwoWayLRUCache)])
    def test_strided_power_of_two_traces(self, assoc, cls):
        # Power-of-two strides are the pathological pattern for WHT plans.
        config = CacheConfig(2048, 64, assoc)
        for stride in (1, 4, 8, 64, 256, 1024):
            addresses = (np.arange(500, dtype=np.int64) * stride * 8) % (1 << 20)
            reference = SetAssociativeLRUCache(config).simulate(addresses)
            vectorised = cls(config).simulate(addresses)
            assert np.array_equal(reference, vectorised), stride

    def test_access_scalar_api_matches_simulate(self):
        config = CacheConfig(256, 32, 2)
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 1024, size=100) * 8
        a = TwoWayLRUCache(config)
        b = TwoWayLRUCache(config)
        assert np.array_equal(
            np.array([a.access(int(x)) for x in addresses]), b.simulate(addresses)
        )

    def test_direct_mapped_rejects_wrong_associativity(self):
        with pytest.raises(ValueError):
            DirectMappedCache(CacheConfig(256, 32, 2))
        with pytest.raises(ValueError):
            TwoWayLRUCache(CacheConfig(256, 32, 1))

    def test_empty_trace(self):
        cache = DirectMappedCache(CacheConfig(256, 32, 1))
        assert cache.simulate(np.zeros(0, dtype=np.int64)).shape == (0,)
        assert cache.stats.accesses == 0

    def test_negative_addresses_rejected(self):
        cache = DirectMappedCache(CacheConfig(256, 32, 1))
        with pytest.raises(ValueError):
            cache.simulate(np.array([-8]))

    def test_sequential_scan_miss_rate(self):
        # A sequential scan of a large array misses once per line.
        config = CacheConfig(1024, 64, 2)
        addresses = np.arange(0, 64 * 1024, 8, dtype=np.int64)
        misses = TwoWayLRUCache(config).simulate(addresses)
        assert misses.sum() == 64 * 1024 // 64

    def test_working_set_within_cache_only_cold_misses(self):
        config = CacheConfig(4096, 64, 2)
        addresses = np.tile(np.arange(0, 2048, 8, dtype=np.int64), 5)
        cache = TwoWayLRUCache(config)
        misses = cache.simulate(addresses)
        assert misses.sum() == 2048 // 64  # only the first pass misses

    @given(
        assoc=st.sampled_from([1, 2]),
        seed=st.integers(0, 10**6),
        length=st.integers(1, 200),
        spread=st.integers(1, 512),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_vectorised_equals_reference(self, assoc, seed, length, spread):
        config = CacheConfig(512, 32, assoc)
        addresses = np.random.default_rng(seed).integers(0, spread, size=length) * 8
        cls = DirectMappedCache if assoc == 1 else TwoWayLRUCache
        assert np.array_equal(
            SetAssociativeLRUCache(config).simulate(addresses),
            cls(config).simulate(addresses),
        )


class TestNWayLRU:
    """The vectorised arbitrary-associativity simulator vs the oracle."""

    @pytest.mark.parametrize("assoc", [1, 2, 4, 8, 16])
    def test_matches_reference_on_random_traces(self, assoc):
        config = CacheConfig(2048, 32, assoc)
        rng = np.random.default_rng(100 + assoc)
        for _ in range(8):
            addresses = rng.integers(0, 4096, size=400) * 8
            reference = SetAssociativeLRUCache(config).simulate(addresses)
            vectorised = NWayLRUCache(config).simulate(addresses)
            assert np.array_equal(reference, vectorised)

    @pytest.mark.parametrize("assoc", [1, 2, 4, 8, 16])
    def test_fully_associative_single_set_against_oracle(self, assoc):
        # A single fully associative set is the hardest LRU case: every
        # access contends for the same stack.  (CacheConfig constrains the
        # associativity to powers of two, like the hardware it models.)
        config = CacheConfig(32 * assoc, 32, assoc)
        rng = np.random.default_rng(assoc)
        addresses = rng.integers(0, 2048, size=600) * 8
        assert np.array_equal(
            SetAssociativeLRUCache(config).simulate(addresses),
            NWayLRUCache(config).simulate(addresses),
        )

    @pytest.mark.parametrize("assoc", [4, 8, 16])
    def test_warm_continuation_matches_reference(self, assoc):
        # Chunked simulation with warm state must equal one-shot simulation.
        config = CacheConfig(2048, 32, assoc)
        rng = np.random.default_rng(200 + assoc)
        reference = SetAssociativeLRUCache(config)
        vectorised = NWayLRUCache(config)
        for _ in range(6):
            addresses = rng.integers(0, 4096, size=int(rng.integers(1, 300))) * 8
            assert np.array_equal(
                reference.simulate(addresses), vectorised.simulate(addresses)
            )

    @pytest.mark.parametrize("assoc", [4, 16])
    def test_warm_state_matches_oracle_stacks(self, assoc):
        config = CacheConfig(1024, 32, assoc)
        rng = np.random.default_rng(assoc)
        reference = SetAssociativeLRUCache(config)
        vectorised = NWayLRUCache(config)
        addresses = rng.integers(0, 4096, size=500) * 8
        reference.simulate(addresses)
        vectorised.simulate(addresses)
        for index in range(config.num_sets):
            # The vectorised stack stores whole lines; the oracle stores tags.
            tags = [
                int(line) >> config.index_bits
                for line in vectorised._stack[index]
                if line >= 0
            ]
            assert tags == reference._sets[index]

    def test_strided_power_of_two_traces(self):
        config = CacheConfig(4096, 64, 16)
        for stride in (1, 4, 8, 64, 256, 1024):
            addresses = (np.arange(600, dtype=np.int64) * stride * 8) % (1 << 20)
            assert np.array_equal(
                SetAssociativeLRUCache(config).simulate(addresses),
                NWayLRUCache(config).simulate(addresses),
            ), stride

    def test_access_scalar_api_matches_simulate(self):
        config = CacheConfig(512, 32, 4)
        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 2048, size=200) * 8
        a = NWayLRUCache(config)
        b = NWayLRUCache(config)
        assert np.array_equal(
            np.array([a.access(int(x)) for x in addresses]), b.simulate(addresses)
        )

    def test_lru_eviction_order_fully_associative(self):
        cache = NWayLRUCache(CacheConfig(128, 32, 4))  # one set, 4 ways
        a, b, c, d, e = (i * 1024 for i in range(5))
        assert all(cache.access(x) for x in (a, b, c, d))
        assert cache.access(a) is False  # a promoted to MRU
        assert cache.access(e) is True  # evicts b (now LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_reset(self):
        cache = NWayLRUCache(CacheConfig(256, 32, 4))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is True

    def test_empty_trace(self):
        cache = NWayLRUCache(CacheConfig(256, 32, 4))
        assert cache.simulate(np.zeros(0, dtype=np.int64)).shape == (0,)
        assert cache.stats.accesses == 0

    def test_negative_addresses_rejected_unless_trusted(self):
        cache = NWayLRUCache(CacheConfig(256, 32, 4))
        with pytest.raises(ValueError):
            cache.simulate(np.array([-8]))

    @given(
        assoc=st.sampled_from([1, 2, 4, 8, 16]),
        seed=st.integers(0, 10**6),
        length=st.integers(1, 200),
        spread=st.integers(1, 512),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_vectorised_equals_reference(self, assoc, seed, length, spread):
        config = CacheConfig(1024, 32, assoc)
        addresses = np.random.default_rng(seed).integers(0, spread, size=length) * 8
        assert np.array_equal(
            SetAssociativeLRUCache(config).simulate(addresses),
            NWayLRUCache(config).simulate(addresses),
        )

    @given(
        seed=st.integers(0, 10**6),
        chunks=st.lists(st.integers(1, 120), min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_chunked_equals_single_shot(self, seed, chunks):
        config = CacheConfig(1024, 32, 8)
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1024, size=sum(chunks)) * 8
        single = NWayLRUCache(config).simulate(addresses)
        warm = NWayLRUCache(config)
        parts = []
        offset = 0
        for size in chunks:
            parts.append(warm.simulate(addresses[offset : offset + size]))
            offset += size
        assert np.array_equal(single, np.concatenate(parts))


class TestFactories:
    def test_make_cache_picks_vectorised(self):
        assert isinstance(make_cache(CacheConfig(256, 32, 1)), DirectMappedCache)
        assert isinstance(make_cache(CacheConfig(256, 32, 2)), TwoWayLRUCache)
        assert isinstance(make_cache(CacheConfig(256, 32, 4)), NWayLRUCache)
        assert isinstance(make_cache(CacheConfig(1024, 64, 16)), NWayLRUCache)

    def test_make_cache_reference_override(self):
        assert isinstance(
            make_cache(CacheConfig(256, 32, 1), vectorized=False), SetAssociativeLRUCache
        )

    def test_simulate_trace_helper(self):
        stats = simulate_trace(CacheConfig(256, 32, 2), np.arange(0, 1024, 8))
        assert stats.accesses == 128
        assert stats.misses == 32
