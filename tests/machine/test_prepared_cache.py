"""Tests for the prepared-plan cache and the interpreter template cache."""

import numpy as np

from repro.machine.configs import tiny_machine, tiny_machine_config
from repro.machine.machine import PreparedPlanCache, SimulatedMachine
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.interpreter import PlanInterpreter
from repro.wht.random_plans import random_plan


class TestPreparedPlanCache:
    def test_hit_returns_same_object(self):
        machine = tiny_machine(noise_sigma=0.0)
        machine.prepared_cache = PreparedPlanCache(capacity=8)
        plan = iterative_plan(6)
        first = machine.prepare(plan)
        second = machine.prepare(plan)
        assert second is first
        assert machine.prepared_cache.hits == 1

    def test_structurally_equal_plans_share_entries(self):
        machine = tiny_machine(noise_sigma=0.0)
        machine.prepared_cache = PreparedPlanCache(capacity=8)
        machine.prepare(right_recursive_plan(6))
        assert machine.prepare(right_recursive_plan(6)) is not None
        assert machine.prepared_cache.hits == 1

    def test_results_identical_with_and_without_cache(self):
        config = tiny_machine_config(noise_sigma=0.0)
        cached = SimulatedMachine(config, prepared_cache=PreparedPlanCache(16))
        plain = SimulatedMachine(config)
        for seed in range(5):
            plan = random_plan(8, rng=seed)
            a = cached.prepare(plan)
            b = plain.prepare(plan)
            assert a.hierarchy_stats == b.hierarchy_stats
            assert a.stats == b.stats

    def test_lru_eviction_is_bounded(self):
        cache = PreparedPlanCache(capacity=2)
        machine = tiny_machine(noise_sigma=0.0)
        machine.prepared_cache = cache
        for n in (4, 5, 6, 7):
            machine.prepare(iterative_plan(n))
        assert len(cache) == 2
        # The oldest entry was evicted: preparing it again is a miss.
        misses_before = cache.misses
        machine.prepare(iterative_plan(4))
        assert cache.misses == misses_before + 1

    def test_measurements_from_cache_are_identical(self):
        config = tiny_machine_config(noise_sigma=0.05)
        machine = SimulatedMachine(config, prepared_cache=PreparedPlanCache(8))
        plain = SimulatedMachine(config)
        plan = right_recursive_plan(7)
        machine.prepare(plan)  # warm the cache
        assert (
            machine.measure(plan, rng=42).cycles == plain.measure(plan, rng=42).cycles
        )


class TestTemplateCache:
    def test_blocks_identical_with_and_without_cache(self):
        cached = PlanInterpreter()  # default template cache
        uncached = PlanInterpreter(template_cache_size=0)
        for seed in range(5):
            plan = random_plan(9, rng=seed)
            # Walk twice with the caching interpreter so the second pass
            # replays cached templates.
            list(cached.iter_nest_blocks(plan))
            a = list(cached.iter_nest_blocks(plan))
            b = list(uncached.iter_nest_blocks(plan))
            assert len(a) == len(b)
            for block_a, block_b in zip(a, b):
                assert block_a.nest == block_b.nest
                assert np.array_equal(block_a.offsets, block_b.offsets)
                assert np.array_equal(block_a.starts, block_b.starts)

    def test_stats_identical_on_cache_replay(self):
        interpreter = PlanInterpreter()
        plan = right_recursive_plan(9)
        first, _ = interpreter.profile(plan)
        second, _ = interpreter.profile(plan)
        assert first == second

    def test_cache_is_bounded(self):
        interpreter = PlanInterpreter(template_cache_size=4)
        for seed in range(20):
            list(interpreter.iter_nest_blocks(random_plan(8, rng=seed)))
        assert len(interpreter._template_cache) <= 4
