"""Tests for the instruction-cost and cycle models."""

import pytest

from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.wht.canonical import iterative_plan, left_recursive_plan, right_recursive_plan
from repro.wht.interpreter import PlanInterpreter
from repro.wht.plan import Small


def stats_for(plan):
    stats, _ = PlanInterpreter().profile(plan)
    return stats


class TestInstructionCostModel:
    def test_leaf_breakdown(self):
        model = InstructionCostModel()
        stats = stats_for(Small(3))
        breakdown = model.breakdown(stats)
        assert breakdown.arithmetic == 3 * 8
        assert breakdown.loads == 8 and breakdown.stores == 8
        assert breakdown.codelet_overhead == model.codelet_call_base + 3 * model.codelet_call_per_unit
        assert breakdown.split_overhead == 0
        assert breakdown.loop_overhead == 0
        assert breakdown.recursion_overhead == 0
        assert breakdown.total == model.instructions(stats)

    def test_breakdown_total_is_sum_of_parts(self):
        model = InstructionCostModel()
        for plan in (iterative_plan(7), right_recursive_plan(7), left_recursive_plan(7)):
            breakdown = model.breakdown(stats_for(plan))
            parts = breakdown.as_dict()
            total = parts.pop("total")
            assert total == sum(parts.values())

    def test_canonical_ordering_matches_paper(self):
        # Figure 2: iterative lowest, left recursive highest instruction count.
        model = InstructionCostModel()
        for n in (6, 8, 10):
            iterative = model.instructions(stats_for(iterative_plan(n)))
            right = model.instructions(stats_for(right_recursive_plan(n)))
            left = model.instructions(stats_for(left_recursive_plan(n)))
            assert iterative < right < left

    def test_arithmetic_identical_across_plans(self):
        model = InstructionCostModel()
        n = 8
        breakdowns = [
            model.breakdown(stats_for(plan))
            for plan in (iterative_plan(n), right_recursive_plan(n), left_recursive_plan(n))
        ]
        assert len({b.arithmetic for b in breakdowns}) == 1
        assert len({b.loads for b in breakdowns}) == 1

    def test_zero_overhead_model_counts_only_work(self):
        model = InstructionCostModel(
            codelet_call_base=0,
            codelet_call_per_unit=0,
            split_invocation_cost=0,
            outer_loop_cost=0,
            block_loop_cost=0,
            stride_loop_cost=0,
            inner_loop_cost=0,
            recursive_call_cost=0,
        )
        n = 6
        stats = stats_for(iterative_plan(n))
        assert model.instructions(stats) == stats.arithmetic_ops + stats.memory_ops

    def test_custom_weights_change_total(self):
        stats = stats_for(right_recursive_plan(6))
        cheap = InstructionCostModel(split_invocation_cost=1)
        expensive = InstructionCostModel(split_invocation_cost=100)
        assert expensive.instructions(stats) > cheap.instructions(stats)


class TestCycleModel:
    def test_deterministic_cycles_grow_with_misses(self):
        model = CycleModel(noise_sigma=0.0)
        stats = stats_for(iterative_plan(6))
        breakdown = InstructionCostModel().breakdown(stats)
        low = model.deterministic_cycles(stats, breakdown, l1_misses=10, l2_misses=0)
        high = model.deterministic_cycles(stats, breakdown, l1_misses=1000, l2_misses=0)
        assert high - low == pytest.approx(model.l1_miss_penalty * 990)

    def test_l2_penalty_larger_than_l1(self):
        model = CycleModel()
        assert model.l2_miss_penalty > model.l1_miss_penalty

    def test_spill_penalty_only_above_threshold(self):
        model = CycleModel(spill_threshold_k=6, spill_cost_per_element=2.0)
        assert model.spill_penalty(5) == 0.0
        assert model.spill_penalty(6) == 0.0
        assert model.spill_penalty(7) == 2.0 * 64
        assert model.spill_penalty(8) == 2.0 * 192

    def test_noise_free_is_reproducible(self):
        model = CycleModel(noise_sigma=0.0)
        stats = stats_for(right_recursive_plan(6))
        breakdown = InstructionCostModel().breakdown(stats)
        a = model.cycles(stats, breakdown, 5, 1, rng=1)
        b = model.cycles(stats, breakdown, 5, 1, rng=2)
        assert a == b

    def test_noise_depends_on_rng(self):
        model = CycleModel(noise_sigma=0.05)
        stats = stats_for(right_recursive_plan(6))
        breakdown = InstructionCostModel().breakdown(stats)
        a = model.cycles(stats, breakdown, 5, 1, rng=1)
        b = model.cycles(stats, breakdown, 5, 1, rng=2)
        assert a != b

    def test_noise_is_bounded(self):
        model = CycleModel(noise_sigma=0.5)
        stats = stats_for(Small(4))
        breakdown = InstructionCostModel().breakdown(stats)
        base = model.deterministic_cycles(stats, breakdown, 0, 0)
        for seed in range(50):
            value = model.cycles(stats, breakdown, 0, 0, rng=seed)
            assert 0.5 * base <= value <= 1.5 * base

    def test_cycles_exceed_instruction_cost_floor(self):
        model = CycleModel(noise_sigma=0.0)
        stats = stats_for(iterative_plan(6))
        breakdown = InstructionCostModel().breakdown(stats)
        assert model.deterministic_cycles(stats, breakdown, 0, 0) >= breakdown.total
