"""Cross-chunk exactness tests for the streaming trace pipeline.

The streamed pipeline (nest blocks → batched line chunks → warm-started
hierarchy simulators) must be *bit-identical* to the eager seed pipeline
(profile → full trace → global collapse → one-shot simulation), for any
chunking.  These tests pin that contract for random traces and random plans.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheConfig
from repro.machine.hierarchy import MemoryHierarchy
from repro.machine.trace import (
    LineChunk,
    collapse_consecutive,
    stream_line_chunks,
    trace_from_nests,
)
from repro.wht.canonical import (
    iterative_plan,
    left_recursive_plan,
    right_recursive_plan,
)
from repro.wht.interpreter import ExecutionStats, LeafNest, PlanInterpreter
from repro.wht.random_plans import random_plan

L1 = CacheConfig(256, 32, 2, name="L1")
L2 = CacheConfig(2048, 32, 4, name="L2")

INTERPRETER = PlanInterpreter()


def reference_nests(plan):
    """Nest list produced by the seed's recursive schedule (the oracle)."""
    stats = ExecutionStats(n=plan.n)
    nests = []
    INTERPRETER._run(plan, base=0, stride=1, x=None, stats=stats, nests=nests)
    return stats, nests


def sample_plans():
    return (
        [random_plan(8, rng=seed) for seed in range(6)]
        + [iterative_plan(7), right_recursive_plan(9, leaf=1), left_recursive_plan(8)]
    )


class TestWalkerParity:
    """The block walker reproduces the recursive interpreter exactly."""

    def test_iter_nests_matches_recursive_order(self):
        for plan in sample_plans():
            _, expected = reference_nests(plan)
            assert list(INTERPRETER.iter_nests(plan)) == expected

    def test_profile_stats_match_recursive_counts(self):
        for plan in sample_plans():
            expected_stats, _ = reference_nests(plan)
            stats, nests = INTERPRETER.profile(plan, record_trace=True)
            assert stats.as_dict() == expected_stats.as_dict()
            assert nests == [nest for nest in INTERPRETER.iter_nests(plan)]

    def test_blocks_cover_each_instance_once(self):
        for plan in sample_plans():
            blocks = list(INTERPRETER.iter_nest_blocks(plan))
            starts = np.concatenate([block.starts for block in blocks])
            raw = np.concatenate(
                [np.full(block.instances, block.accesses_per_instance) for block in blocks]
            )
            order = np.argsort(starts)
            ends = starts[order] + raw[order]
            # Instances tile the access stream contiguously and disjointly.
            assert starts[order][0] == 0
            assert np.array_equal(starts[order][1:], ends[:-1])

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_walker_matches_recursive(self, seed):
        plan = random_plan(7, rng=seed)
        _, expected = reference_nests(plan)
        assert list(INTERPRETER.iter_nests(plan)) == expected


class TestStreamedChunks:
    """stream_line_chunks equals the global collapse of the eager trace."""

    @pytest.mark.parametrize("chunk_accesses", [32, 500, 1 << 20])
    @pytest.mark.parametrize("line_size", [32, 64])
    def test_matches_eager_collapse_random_plans(self, line_size, chunk_accesses):
        for plan in sample_plans():
            _, nests = INTERPRETER.profile(plan, record_trace=True)
            trace = trace_from_nests(nests)
            expected, _ = collapse_consecutive(trace.addresses // line_size)
            chunks = list(
                stream_line_chunks(
                    INTERPRETER.iter_nest_blocks(plan),
                    line_size=line_size,
                    chunk_accesses=chunk_accesses,
                )
            )
            streamed = np.concatenate([chunk.lines for chunk in chunks])
            assert np.array_equal(streamed, expected)
            assert sum(chunk.accesses for chunk in chunks) == trace.accesses

    def test_accepts_plain_nest_iterables(self):
        plan = random_plan(8, rng=3)
        _, nests = INTERPRETER.profile(plan, record_trace=True)
        trace = trace_from_nests(nests)
        expected, _ = collapse_consecutive(trace.addresses // 32)
        chunks = list(stream_line_chunks(nests, line_size=32, chunk_accesses=128))
        assert np.array_equal(np.concatenate([c.lines for c in chunks]), expected)

    def test_chunks_respect_budget(self):
        plan = iterative_plan(10)
        chunks = list(
            stream_line_chunks(
                INTERPRETER.iter_nest_blocks(plan), line_size=32, chunk_accesses=1024
            )
        )
        assert len(chunks) > 1
        # Oversized instances are split along their loop axes, so no chunk
        # overshoots the budget by more than one codelet call's accesses.
        for chunk in chunks[:-1]:
            assert chunk.accesses <= 1024 + 2 * (1 << 10)

    def test_base_address_offsets_lines(self):
        plan = iterative_plan(5)
        plain = list(stream_line_chunks(INTERPRETER.iter_nest_blocks(plan), line_size=32))
        shifted = list(
            stream_line_chunks(
                INTERPRETER.iter_nest_blocks(plan), line_size=32, base_address=4096
            )
        )
        assert np.array_equal(plain[0].lines + 4096 // 32, shifted[0].lines)

    def test_negative_addresses_rejected_at_boundary(self):
        nest = LeafNest(
            k=2, base=-100, outer_count=1, outer_stride=0,
            inner_count=1, inner_stride=0, elem_stride=1,
        )
        with pytest.raises(ValueError):
            list(stream_line_chunks([nest], line_size=32))

    def test_empty_stream(self):
        assert list(stream_line_chunks([], line_size=32)) == []

    @given(seed=st.integers(0, 10**6), chunk_accesses=st.integers(16, 4096))
    @settings(max_examples=30, deadline=None)
    def test_property_chunking_invariant(self, seed, chunk_accesses):
        plan = random_plan(7, rng=seed)
        _, nests = INTERPRETER.profile(plan, record_trace=True)
        trace = trace_from_nests(nests)
        expected, _ = collapse_consecutive(trace.addresses // 32)
        chunks = list(
            stream_line_chunks(
                INTERPRETER.iter_nest_blocks(plan),
                line_size=32,
                chunk_accesses=chunk_accesses,
            )
        )
        assert np.array_equal(np.concatenate([c.lines for c in chunks]), expected)


class TestChunkedHierarchy:
    """Chunked simulation is bit-identical to single-shot simulation."""

    def hierarchy(self, vectorized=True):
        return MemoryHierarchy(L1, L2, vectorized=vectorized)

    @pytest.mark.parametrize("chunk_accesses", [64, 700, 1 << 20])
    def test_streamed_equals_process_trace_random_plans(self, chunk_accesses):
        for plan in sample_plans():
            _, nests = INTERPRETER.profile(plan, record_trace=True)
            trace = trace_from_nests(nests)
            eager = self.hierarchy().process_trace(trace)
            streamed = self.hierarchy().process_line_chunks(
                stream_line_chunks(
                    INTERPRETER.iter_nest_blocks(plan),
                    line_size=L1.line_size,
                    chunk_accesses=chunk_accesses,
                )
            )
            assert streamed == eager

    def test_streamed_equals_reference_simulators(self):
        for plan in sample_plans()[:4]:
            streamed = self.hierarchy(vectorized=True).process_line_chunks(
                stream_line_chunks(
                    INTERPRETER.iter_nest_blocks(plan),
                    line_size=L1.line_size,
                    chunk_accesses=256,
                )
            )
            _, nests = INTERPRETER.profile(plan, record_trace=True)
            reference = self.hierarchy(vectorized=False).process_trace(
                trace_from_nests(nests)
            )
            assert streamed == reference

    @given(
        seed=st.integers(0, 10**6),
        splits=st.lists(st.integers(1, 200), min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_random_trace_chunking(self, seed, splits):
        # Arbitrary chunkings of an arbitrary line stream: the hierarchy
        # statistics must not depend on where the chunk boundaries fall.
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 512, size=sum(splits)).astype(np.int64)
        single = self.hierarchy().process_line_chunks(
            [LineChunk(lines=lines, accesses=lines.shape[0])]
        )
        chunks = []
        offset = 0
        for size in splits:
            part = lines[offset : offset + size]
            chunks.append(LineChunk(lines=part, accesses=size))
            offset += size
        chunked = self.hierarchy().process_line_chunks(chunks)
        assert chunked == single

    def test_prepare_matches_eager_pipeline(self):
        from repro.machine.machine import MachineConfig, SimulatedMachine

        config = MachineConfig(name="test", l1=L1, l2=L2)
        machine = SimulatedMachine(config)
        for plan in sample_plans():
            prepared = machine.prepare(plan)
            expected_stats, nests = reference_nests(plan)
            trace = trace_from_nests(nests)
            eager = MemoryHierarchy(L1, L2).process_trace(trace)
            assert prepared.hierarchy_stats == eager
            assert prepared.stats.as_dict() == expected_stats.as_dict()
