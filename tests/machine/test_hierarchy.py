"""Tests for the two-level memory hierarchy."""

import pytest

from repro.machine.cache import CacheConfig, SetAssociativeLRUCache
from repro.machine.hierarchy import HierarchyStatistics, MemoryHierarchy
from repro.machine.trace import trace_from_nests
from repro.wht.canonical import (
    iterative_plan,
    left_recursive_plan,
    right_recursive_plan,
)
from repro.wht.interpreter import PlanInterpreter
from repro.wht.random_plans import random_plan


def trace_for(plan):
    _, nests = PlanInterpreter().profile(plan, record_trace=True)
    return trace_from_nests(nests)


L1 = CacheConfig(256, 32, 2, name="L1")
L2 = CacheConfig(2048, 32, 4, name="L2")


class TestHierarchyStatistics:
    def test_ratios(self):
        stats = HierarchyStatistics(100, 20, 20, 5)
        assert stats.l1_miss_ratio == pytest.approx(0.2)
        assert stats.l2_miss_ratio == pytest.approx(0.25)

    def test_zero_access_ratios(self):
        stats = HierarchyStatistics(0, 0, 0, 0)
        assert stats.l1_miss_ratio == 0.0
        assert stats.l2_miss_ratio == 0.0

    def test_as_dict_keys(self):
        keys = set(HierarchyStatistics(1, 1, 1, 1).as_dict())
        assert {"l1_accesses", "l1_misses", "l2_accesses", "l2_misses"} <= keys


class TestMemoryHierarchy:
    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(L2, L1)

    def test_l2_sees_only_l1_misses(self):
        hierarchy = MemoryHierarchy(L1, L2)
        stats = hierarchy.process_trace(trace_for(random_plan(7, rng=0)))
        assert stats.l2_accesses == stats.l1_misses
        assert stats.l2_misses <= stats.l2_accesses
        assert stats.l1_misses <= stats.l1_accesses

    def test_l1_accesses_count_every_element_access(self):
        plan = iterative_plan(6)
        trace = trace_for(plan)
        stats = MemoryHierarchy(L1, L2).process_trace(trace)
        assert stats.l1_accesses == trace.accesses

    def test_no_l2_configured(self):
        stats = MemoryHierarchy(L1, None).process_trace(trace_for(iterative_plan(6)))
        assert stats.l2_accesses == 0 and stats.l2_misses == 0

    def test_in_cache_transform_has_only_cold_misses(self):
        # 2^4 doubles = 128 bytes fits the 256-byte L1: cold misses only.
        plan = right_recursive_plan(4)
        stats = MemoryHierarchy(L1, L2).process_trace(trace_for(plan))
        assert stats.l1_misses == plan.size * 8 // L1.line_size

    def test_out_of_cache_transform_misses_more_than_cold(self):
        small = MemoryHierarchy(L1, L2).process_trace(trace_for(iterative_plan(4)))
        large = MemoryHierarchy(L1, L2).process_trace(trace_for(iterative_plan(8)))
        # The in-cache transform only takes cold misses; the out-of-cache one
        # misses well beyond its cold-miss count of N * 8 / line_size.
        assert small.l1_misses == (1 << 4) * 8 // L1.line_size
        assert large.l1_misses > (1 << 8) * 8 // L1.line_size

    def test_vectorised_and_reference_agree(self):
        for seed in range(4):
            plan = random_plan(8, rng=seed)
            trace = trace_for(plan)
            fast = MemoryHierarchy(L1, L2, vectorized=True).process_trace(trace)
            slow = MemoryHierarchy(L1, L2, vectorized=False).process_trace(trace)
            assert fast == slow

    def test_collapse_does_not_change_miss_counts(self):
        # Compare against a raw per-access simulation with no collapsing.
        plan = random_plan(7, rng=3)
        trace = trace_for(plan)
        hierarchy_stats = MemoryHierarchy(L1, L2).process_trace(trace)
        l1 = SetAssociativeLRUCache(L1)
        mask = l1.simulate(trace.addresses)
        assert int(mask.sum()) == hierarchy_stats.l1_misses

    def test_describe(self):
        assert "L1" in MemoryHierarchy(L1, L2).describe()
        assert "no L2" in MemoryHierarchy(L1, None).describe()

    def test_canonical_algorithms_differ_beyond_cache(self):
        # Beyond the L1 boundary the recursive (contiguous) algorithm
        # localises better than the strided left recursive one.
        right = MemoryHierarchy(L1, L2).process_trace(trace_for(right_recursive_plan(8)))
        left = MemoryHierarchy(L1, L2).process_trace(trace_for(left_recursive_plan(8)))
        assert right.l1_misses < left.l1_misses
