"""Tests for the simulated machine and its configuration."""

import pytest

from repro.machine.cache import CacheConfig
from repro.machine.configs import (
    MACHINE_PRESETS,
    default_machine,
    default_machine_config,
    opteron_like_config,
    tiny_machine,
    tiny_machine_config,
)
from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.wht.canonical import iterative_plan, left_recursive_plan, right_recursive_plan
from repro.wht.plan import Small
from repro.wht.random_plans import random_plan


class TestMachineConfig:
    def test_capacity_exponents(self):
        config = default_machine_config()
        assert config.l1_capacity_exponent() == 11
        assert config.l2_capacity_exponent() == 13

    def test_opteron_capacity_exponents(self):
        config = opteron_like_config()
        assert config.l1_capacity_exponent() == 13
        assert config.l2_capacity_exponent() == 17

    def test_l2_must_be_larger(self):
        with pytest.raises(ValueError):
            MachineConfig(
                name="bad",
                l1=CacheConfig(1024, 64, 2),
                l2=CacheConfig(512, 64, 2),
            )

    def test_with_noise(self):
        config = default_machine_config().with_noise(0.0)
        assert config.cycle_model.noise_sigma == 0.0

    def test_describe_mentions_boundary(self):
        assert "2^11" in default_machine_config().describe()

    def test_presets_exist(self):
        assert {"default", "opteron", "tiny"} <= set(MACHINE_PRESETS)
        for factory in MACHINE_PRESETS.values():
            assert isinstance(factory(), MachineConfig)


class TestSimulatedMachine:
    def test_measurement_fields(self, machine):
        plan = right_recursive_plan(6)
        m = machine.measure(plan)
        assert m.plan == plan
        assert m.n == 6
        assert m.instructions > 0
        assert m.cycles > m.instructions * 0.5
        assert m.l1_accesses == 2 * plan.size * plan.num_leaves()
        assert 0 <= m.l1_misses <= m.l1_accesses
        assert 0 <= m.l2_misses <= m.l1_misses
        assert m.machine == "tiny"

    def test_deterministic_without_noise(self, machine):
        plan = random_plan(7, rng=0)
        assert machine.measure(plan).cycles == machine.measure(plan).cycles

    def test_noise_reproducible_with_explicit_rng(self, noisy_machine):
        plan = random_plan(7, rng=0)
        a = noisy_machine.measure(plan, rng=123)
        b = noisy_machine.measure(plan, rng=123)
        assert a.cycles == b.cycles

    def test_noise_varies_without_explicit_rng(self, noisy_machine):
        plan = random_plan(7, rng=0)
        values = {noisy_machine.measure(plan).cycles for _ in range(5)}
        assert len(values) > 1

    def test_instructions_only_matches_full_measurement(self, machine):
        plan = random_plan(6, rng=1)
        assert machine.measure_instructions_only(plan) == machine.measure(plan).instructions

    def test_cycles_per_instruction_reasonable(self, machine):
        m = machine.measure(iterative_plan(5))
        assert 0.5 < m.cycles_per_instruction < 50

    def test_combined_model_value(self, machine):
        m = machine.measure(iterative_plan(6))
        assert m.combined_model_value(1.0, 0.0) == pytest.approx(m.instructions)
        assert m.combined_model_value(0.0, 1.0) == pytest.approx(m.l1_misses)

    def test_as_dict_round_trip_fields(self, machine):
        d = machine.measure(Small(4)).as_dict()
        assert d["plan"] == "small[4]"
        assert d["n"] == 4
        assert "cycles" in d and "l1_misses" in d

    def test_measure_wall_time_positive(self, machine):
        assert machine.measure_wall_time(iterative_plan(5)) > 0.0

    def test_in_cache_plans_have_equal_misses(self, machine):
        # Below the L1 boundary every plan of one size takes only cold misses.
        exps = machine.config.l1_capacity_exponent()
        n = exps - 1
        misses = {
            machine.measure(plan).l1_misses
            for plan in (iterative_plan(n), right_recursive_plan(n), left_recursive_plan(n))
        }
        assert len(misses) == 1

    def test_out_of_cache_plans_differ_in_misses(self, machine):
        n = machine.config.l2_capacity_exponent() + 1
        misses = {
            machine.measure(plan).l1_misses
            for plan in (iterative_plan(n), right_recursive_plan(n), left_recursive_plan(n))
        }
        assert len(misses) > 1

    def test_canonical_cycle_ordering_small_sizes(self, machine):
        # In cache the instruction count decides: iterative < right < left.
        n = machine.config.l1_capacity_exponent() - 1
        iterative = machine.measure(iterative_plan(n)).cycles
        right = machine.measure(right_recursive_plan(n)).cycles
        left = machine.measure(left_recursive_plan(n)).cycles
        assert iterative < right < left

    def test_crossover_beyond_l2_boundary(self):
        # Past the L2 boundary the right recursive algorithm overtakes the
        # iterative one (the paper's Figure 1 crossover), checked on the tiny
        # machine where the boundary sits at 2^8 elements.
        machine = tiny_machine(noise_sigma=0.0)
        n = machine.config.l2_capacity_exponent() + 2
        iterative = machine.measure(iterative_plan(n)).cycles
        right = machine.measure(right_recursive_plan(n)).cycles
        assert right < iterative

    def test_default_machine_factory(self):
        machine = default_machine(noise_sigma=0.0)
        assert isinstance(machine, SimulatedMachine)
        assert machine.config.name == "scaled-opteron"

    def test_tiny_machine_config_boundaries(self):
        config = tiny_machine_config()
        assert config.l1_capacity_exponent() == 5
        assert config.l2_capacity_exponent() == 8
