"""Tests for the PAPI-like counter facade."""

import pytest

from repro.machine.counters import PAPI_EVENTS, CounterSet, counters_from_measurement
from repro.wht.canonical import iterative_plan, right_recursive_plan


class TestCountersFromMeasurement:
    def test_all_events_present(self, machine):
        values = counters_from_measurement(machine.measure(iterative_plan(6)))
        assert set(values) == set(PAPI_EVENTS)

    def test_values_consistent_with_measurement(self, machine):
        m = machine.measure(right_recursive_plan(6))
        values = counters_from_measurement(m)
        assert values["PAPI_TOT_CYC"] == pytest.approx(m.cycles)
        assert values["PAPI_TOT_INS"] == m.instructions
        assert values["PAPI_L1_DCM"] == m.l1_misses
        assert values["PAPI_LD_INS"] == m.loads
        assert values["PAPI_FP_OPS"] == m.arithmetic_ops


class TestCounterSet:
    def test_requires_start(self, machine):
        counters = CounterSet(machine, ["PAPI_TOT_CYC"])
        with pytest.raises(RuntimeError):
            counters.run(iterative_plan(4))
        with pytest.raises(RuntimeError):
            counters.read()
        with pytest.raises(RuntimeError):
            counters.stop()

    def test_unknown_event_rejected(self, machine):
        with pytest.raises(ValueError):
            CounterSet(machine, ["PAPI_MADE_UP"])

    def test_accumulates_over_runs(self, machine):
        counters = CounterSet(machine, ["PAPI_TOT_INS"])
        counters.start()
        m1 = counters.run(iterative_plan(5))
        m2 = counters.run(iterative_plan(5))
        totals = counters.stop()
        assert totals["PAPI_TOT_INS"] == pytest.approx(m1.instructions + m2.instructions)

    def test_read_without_stopping(self, machine):
        counters = CounterSet(machine, ["PAPI_TOT_CYC"])
        counters.start()
        counters.run(iterative_plan(4))
        snapshot = counters.read()
        counters.run(iterative_plan(4))
        assert counters.read()["PAPI_TOT_CYC"] > snapshot["PAPI_TOT_CYC"]

    def test_start_resets(self, machine):
        counters = CounterSet(machine, ["PAPI_TOT_INS"])
        counters.start()
        counters.run(iterative_plan(4))
        counters.stop()
        counters.start()
        assert counters.read()["PAPI_TOT_INS"] == 0.0

    def test_default_event_list_is_everything(self, machine):
        counters = CounterSet(machine)
        counters.start()
        counters.run(iterative_plan(4))
        assert set(counters.stop()) == set(PAPI_EVENTS)
