"""Tests for batched candidate evaluation across the search strategies."""

from repro.models.instruction_count import InstructionCountModel
from repro.search.costs import (
    CombinedModelCost,
    InstructionModelCost,
    MeasuredCyclesCost,
    evaluate_cost_batch,
)
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.pruned import ModelPrunedSearch
from repro.search.random_search import RandomSearch
from repro.wht.canonical import iterative_plan, right_recursive_plan
from repro.wht.dp_search import DPSearch
from repro.wht.random_plans import random_plans


class TestEvaluateCostBatch:
    def test_loop_fallback_for_plain_callables(self):
        model = InstructionCountModel()
        seen = []

        def cost(plan):
            seen.append(plan)
            return float(model.count(plan))

        plans = random_plans(6, 5, rng=0)
        values = evaluate_cost_batch(cost, plans)
        assert seen == plans
        assert values == [float(model.count(p)) for p in plans]

    def test_batch_method_is_used(self):
        cost = InstructionModelCost()
        plans = random_plans(6, 5, rng=0)
        values = evaluate_cost_batch(cost, plans)
        assert values == [float(cost.model.count(p)) for p in plans]

    def test_batch_and_loop_agree_for_model_costs(self, machine):
        plans = random_plans(8, 10, rng=1)
        for cost in (InstructionModelCost(), CombinedModelCost.for_machine(machine)):
            batched = evaluate_cost_batch(cost, plans)
            loop = [float(cost(p)) for p in plans]
            assert batched == loop


class TestOversizedPlans:
    """Model costs must fall back to the scalar models beyond the encoder range."""

    def test_model_cost_batch_beyond_encoder_range(self):
        from repro.wht.plan import Small, Split

        plan = Split((Small(8),) * 5)  # n = 40 > MAX_ENCODABLE_EXPONENT
        cost = InstructionModelCost()
        values = evaluate_cost_batch(cost, [plan])
        assert values == [float(cost.model.count(plan))]
        assert cost.evaluations == 1

    def test_random_search_beyond_encoder_range(self):
        result = RandomSearch(InstructionModelCost(), samples=3).search(33, rng=0)
        assert result.best_plan.n == 33


class TestCounterSplit:
    def test_plain_costs_measure_everything(self, machine):
        cost = MeasuredCyclesCost(machine)
        cost(iterative_plan(5))
        cost.batch([iterative_plan(5), right_recursive_plan(5)])
        assert cost.evaluations == 3
        assert cost.measured == 3

    def test_model_costs_count_batches(self):
        cost = InstructionModelCost()
        cost.batch(random_plans(6, 4, rng=2))
        assert cost.evaluations == 4
        assert cost.measured == 4


class TestDPSearchBatching:
    def test_batched_cost_receives_each_round_once(self):
        model = InstructionCountModel()
        rounds = []

        class RecordingCost:
            evaluations = 0

            def __call__(self, plan):
                raise AssertionError("batch must be used")

            def batch(self, plans):
                rounds.append(list(plans))
                self.evaluations += len(plans)
                return model.count_batch(plans).astype(float)

        result = DPSearch(RecordingCost(), max_children=2).search(6)
        assert len(rounds) == 6  # one batch per exponent
        scalar = DPSearch(InstructionModelCost(), max_children=2).search(6)
        assert result.best_plans == scalar.best_plans
        assert result.best_costs == scalar.best_costs

    def test_record_candidates_false_stays_bounded(self):
        searcher = DPSearch(InstructionModelCost(), record_candidates=False)
        result = searcher.search(8)
        assert result.candidates == ()
        assert result.candidates_for(8) == []
        assert result.evaluations > 0
        assert 8 in result.best_plans

    def test_candidates_indexed_by_exponent(self):
        result = DPSearch(InstructionModelCost()).search(5)
        assert set(result.candidates_by_exponent) == set(range(1, 6))
        flat = result.candidates
        assert isinstance(flat, tuple)
        assert result.evaluations == len(flat)
        # Flattened order is evaluation order: exponents ascend.
        assert [c.exponent for c in flat] == sorted(c.exponent for c in flat)


class TestStrategiesBatchVsLoop:
    """Batch-capable costs and plain callables must give identical searches."""

    def test_random_search_identical(self):
        batched = RandomSearch(InstructionModelCost(), samples=40).search(7, rng=5)
        model = InstructionCountModel()
        loop = RandomSearch(lambda plan: float(model.count(plan)), samples=40).search(
            7, rng=5
        )
        assert batched.best_plan == loop.best_plan
        assert batched.history == loop.history

    def test_exhaustive_identical_across_batch_sizes(self):
        big = ExhaustiveSearch(InstructionModelCost()).search(5)
        small = ExhaustiveSearch(InstructionModelCost(), batch_size=7).search(5)
        model = InstructionCountModel()
        loop = ExhaustiveSearch(lambda plan: float(model.count(plan))).search(5)
        assert big.history == small.history == loop.history

    def test_pruned_search_identical(self, machine):
        report_batched = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=50,
            keep_fraction=0.3,
        ).search(7, rng=9)
        model = InstructionCountModel()
        report_loop = ModelPrunedSearch(
            model_cost=lambda plan: float(model.count(plan)),
            measure_cost=MeasuredCyclesCost(machine),
            samples=50,
            keep_fraction=0.3,
        ).search(7, rng=9)
        assert report_batched.result.best_plan == report_loop.result.best_plan
        assert report_batched.result.history == report_loop.result.history
        assert report_batched.threshold == report_loop.threshold

    def test_pruned_search_reports_actual_measurements_with_engine(self, tiny_config):
        from repro.machine.machine import SimulatedMachine
        from repro.runtime.cost_engine import CostEngine

        engine = CostEngine(SimulatedMachine(tiny_config))
        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=engine,
            samples=50,
            keep_fraction=0.3,
        )
        first = search.search(7, rng=4)
        assert first.measured_evaluations == first.result.evaluated
        second = search.search(7, rng=4)  # same candidates: all cache hits
        assert second.measured_evaluations == 0
        assert second.result.best_cost == first.result.best_cost


def test_dp_search_raises_when_every_cost_is_nan():
    import pytest

    with pytest.raises(RuntimeError):
        DPSearch(lambda plan: float("nan")).search(3)


def test_dp_search_result_evaluations_counts_without_records():
    searcher = DPSearch(InstructionModelCost())
    with_records = searcher.search(6)
    without = DPSearch(InstructionModelCost(), record_candidates=False).search(6)
    assert without.evaluations == with_records.evaluations


def test_dp_best_plan_record_candidates_passthrough(machine):
    from repro.search.dp import dp_best_plan

    unrecorded = dp_best_plan(machine, 6, record_candidates=False)
    assert unrecorded.history == []
    assert unrecorded.evaluated > 0
    recorded = dp_best_plan(machine, 6)
    assert recorded.history  # the default path still records per-candidate history
    assert recorded.best_plan == unrecorded.best_plan
