"""Tests for the search strategies (random, exhaustive, DP wrapper, pruned)."""

import pytest

from repro.models.instruction_count import InstructionCountModel
from repro.search.costs import InstructionModelCost, MeasuredCyclesCost
from repro.search.dp import dp_best_plan, dp_search
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.pruned import ModelPrunedSearch
from repro.search.random_search import RandomSearch
from repro.search.result import SearchResult
from repro.wht.enumeration import count_plans
from repro.wht.plan import validate_plan


class TestSearchResult:
    def test_top_orders_by_cost(self, machine):
        cost = InstructionModelCost()
        result = RandomSearch(cost, samples=30).search(6, rng=0)
        top = result.top(3)
        assert len(top) == 3
        assert top[0][1] <= top[1][1] <= top[2][1]
        assert top[0][1] == result.best_cost

    def test_describe_mentions_strategy(self, machine):
        result = RandomSearch(InstructionModelCost(), samples=5).search(5, rng=0)
        assert "random" in result.describe()

    def test_evaluation_fraction(self):
        result = SearchResult(
            n=5, best_plan=None, best_cost=0.0, evaluated=5, considered=20, strategy="x"
        )
        assert result.evaluation_fraction == pytest.approx(0.25)


class TestRandomSearch:
    def test_finds_valid_plan(self, machine):
        cost = MeasuredCyclesCost(machine)
        result = RandomSearch(cost, samples=25).search(7, rng=1)
        validate_plan(result.best_plan)
        assert result.best_plan.n == 7
        assert result.strategy == "random"

    def test_deterministic_given_seed(self):
        cost = InstructionModelCost()
        a = RandomSearch(cost, samples=20).search(8, rng=42)
        b = RandomSearch(InstructionModelCost(), samples=20).search(8, rng=42)
        assert a.best_plan == b.best_plan

    def test_deduplication(self):
        cost = InstructionModelCost()
        result = RandomSearch(cost, samples=200, dedupe=True).search(3, rng=0)
        # Only 6 distinct plans exist at size 2^3.
        assert result.evaluated <= 6
        assert result.considered == 200

    def test_more_samples_never_worse(self):
        cost = InstructionModelCost()
        small = RandomSearch(cost, samples=5).search(8, rng=7)
        large = RandomSearch(InstructionModelCost(), samples=100).search(8, rng=7)
        assert large.best_cost <= small.best_cost

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            RandomSearch(InstructionModelCost(), samples=0)
        with pytest.raises(ValueError, match="unknown metric"):
            RandomSearch("nope", samples=5)  # not a registered metric name
        with pytest.raises(ValueError, match="CostEngine"):
            RandomSearch("cycles", samples=5)  # metric objective without engine
        with pytest.raises(TypeError):
            RandomSearch(42, samples=5)


class TestExhaustiveSearch:
    def test_space_size_matches_enumeration(self):
        search = ExhaustiveSearch(InstructionModelCost())
        assert search.space_size(5) == count_plans(5)

    def test_finds_global_optimum_of_model(self):
        cost = InstructionModelCost()
        result = ExhaustiveSearch(cost).search(5)
        assert result.evaluated == count_plans(5)
        # Exhaustive beats or matches any other strategy on the same cost.
        random_result = RandomSearch(InstructionModelCost(), samples=50).search(5, rng=0)
        assert result.best_cost <= random_result.best_cost

    def test_limit_guard(self):
        with pytest.raises(ValueError):
            ExhaustiveSearch(InstructionModelCost(), limit=10).search(6)

    def test_history_complete(self):
        result = ExhaustiveSearch(InstructionModelCost()).search(4)
        assert len(result.history) == count_plans(4)


class TestDPSearchWrappers:
    def test_dp_search_with_model_cost(self):
        result = dp_search(7, InstructionCountModel())
        assert 7 in result.best_plans

    def test_dp_best_plan_on_machine(self, machine):
        result = dp_best_plan(machine, 7)
        validate_plan(result.best_plan)
        assert result.strategy == "dynamic-programming"
        assert result.evaluated > 0
        assert result.n == 7

    def test_dp_best_beats_canonicals_on_its_cost(self, machine):
        from repro.wht.canonical import canonical_plans

        result = dp_best_plan(machine, 8)
        for name, plan in canonical_plans(8).items():
            assert result.best_cost <= machine.measure(plan).cycles * 1.001, name


class TestModelPrunedSearch:
    def test_basic_run(self, machine):
        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=60,
            keep_fraction=0.25,
        )
        report = search.search(7, rng=0)
        validate_plan(report.result.best_plan)
        assert report.measured_evaluations <= report.model_evaluations
        assert 0.0 <= report.pruned_fraction <= 1.0
        assert report.result.strategy == "model-pruned"

    def test_pruning_saves_measurements(self, machine):
        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=80,
            keep_fraction=0.2,
        )
        report = search.search(7, rng=1)
        assert report.measurement_savings > 0.5

    def test_pruned_result_close_to_full_search(self, machine):
        # Measuring only the model-selected quarter should find a plan whose
        # cycle count is close to the best of measuring everything (this is
        # the operational claim of the paper's conclusion).
        candidates_seed = 3
        full_cost = MeasuredCyclesCost(machine)
        full = RandomSearch(full_cost, samples=60).search(7, rng=candidates_seed)
        pruned = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=60,
            keep_fraction=0.25,
        ).search(7, rng=candidates_seed)
        assert pruned.result.best_cost <= full.best_cost * 1.10

    def test_explicit_threshold_keeps_everything_when_huge(self, machine):
        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=40,
            threshold=1e12,
        )
        report = search.search(6, rng=2)
        assert report.pruned_fraction == 0.0

    def test_threshold_below_everything_falls_back_to_cheapest(self, machine):
        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            samples=30,
            threshold=1.0,
        )
        report = search.search(6, rng=3)
        assert report.measured_evaluations == 1

    def test_explicit_candidates(self, machine):
        from repro.wht.canonical import canonical_plans

        plans = list(canonical_plans(7).values())
        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
            keep_fraction=1.0,
        )
        report = search.search(7, candidates=plans)
        assert report.model_evaluations == len(plans)

    def test_candidate_size_mismatch_rejected(self, machine):
        from repro.wht.canonical import iterative_plan

        search = ModelPrunedSearch(
            model_cost=InstructionModelCost(),
            measure_cost=MeasuredCyclesCost(machine),
        )
        with pytest.raises(ValueError):
            search.search(7, candidates=[iterative_plan(6)])

    def test_invalid_configuration(self, machine):
        with pytest.raises(ValueError):
            ModelPrunedSearch(
                model_cost=InstructionModelCost(),
                measure_cost=MeasuredCyclesCost(machine),
                keep_fraction=0.0,
            )


class TestObjectiveDrivenStrategies:
    """Every strategy accepts an Objective (or metric name) bound through a
    CostEngine in place of an ad-hoc cost callable."""

    def _engine(self, machine, store=None):
        from repro.runtime.cost_engine import CostEngine
        from repro.runtime.store import MemoryStore

        return CostEngine(machine, store=store if store is not None else MemoryStore())

    def test_random_search_with_metric_objective(self, machine):
        from repro.search.costs import MeasuredCyclesCost

        engine = self._engine(machine)
        objective_result = RandomSearch(cost="cycles", engine=engine, samples=25).search(
            6, rng=3
        )
        callable_result = RandomSearch(
            cost=MeasuredCyclesCost(machine), samples=25
        ).search(6, rng=3)
        assert objective_result.best_plan == callable_result.best_plan
        assert objective_result.best_cost == callable_result.best_cost

    def test_exhaustive_search_with_model_objective_matches_model_cost(self, machine):
        engine = self._engine(machine)
        objective_result = ExhaustiveSearch(
            cost="model_instructions", engine=engine
        ).search(5)
        model = InstructionModelCost(
            model=__import__(
                "repro.models.instruction_count", fromlist=["InstructionCountModel"]
            ).InstructionCountModel(machine.config.instruction_model)
        )
        callable_result = ExhaustiveSearch(cost=model).search(5)
        assert objective_result.best_cost == callable_result.best_cost
        assert engine.measured == 0  # model objectives never touch the machine

    def test_dp_best_plan_with_objective(self, machine):
        from repro.search.dp import dp_best_plan

        engine = self._engine(machine)
        by_objective = dp_best_plan(machine, 7, objective="cycles", engine=engine)
        plain = dp_best_plan(machine, 7)
        assert by_objective.best_plan == plain.best_plan
        assert by_objective.best_cost == plain.best_cost
        with pytest.raises(ValueError, match="not both"):
            dp_best_plan(machine, 5, cost=lambda plan: 0.0, objective="cycles")

    def test_dp_search_class_binds_objective_via_engine(self, machine):
        from repro.wht.dp_search import DPSearch

        engine = self._engine(machine)
        result = DPSearch("l1_misses", engine=engine).search(6)
        plain = DPSearch(lambda plan: float(machine.measure(plan).l1_misses)).search(6)
        assert result.best_costs == plain.best_costs
        with pytest.raises(TypeError, match="engine"):
            DPSearch("l1_misses")

    def test_pruned_search_shares_one_engine_across_stages(self, machine):
        from repro.runtime.objectives import WeightedObjective

        engine = self._engine(machine)
        report = ModelPrunedSearch(
            model_cost=WeightedObjective.model_combined(),
            measure_cost="cycles",
            samples=60,
            keep_fraction=0.25,
            engine=engine,
        ).search(6, rng=1)
        assert report.model_evaluations > 0
        # Stage 1 is analytic: only the survivors were measured.
        assert report.measured_evaluations == engine.measured
        assert engine.measured < report.model_evaluations

    def test_objective_strategies_resume_from_shared_store(self, machine):
        from repro.machine.machine import SimulatedMachine
        from repro.runtime.store import MemoryStore

        store = MemoryStore()
        engine = self._engine(machine, store=store)
        first = RandomSearch(cost="cycles", engine=engine, samples=30).search(6, rng=9)
        resumed_engine = self._engine(
            SimulatedMachine(machine.config), store=store
        )
        resumed = RandomSearch(cost="cycles", engine=resumed_engine, samples=30).search(
            6, rng=9
        )
        assert resumed_engine.measured == 0
        assert resumed.best_cost == first.best_cost
