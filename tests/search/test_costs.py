"""Tests for search cost functions."""

import pytest

from repro.models.combined import CombinedModel
from repro.search.costs import (
    CombinedModelCost,
    InstructionModelCost,
    MeasuredCyclesCost,
    WallClockCost,
)
from repro.wht.canonical import iterative_plan, left_recursive_plan, right_recursive_plan


class TestMeasuredCyclesCost:
    def test_matches_machine(self, machine):
        cost = MeasuredCyclesCost(machine)
        plan = iterative_plan(6)
        assert cost(plan) == pytest.approx(machine.measure(plan).cycles)

    def test_counts_evaluations(self, machine):
        cost = MeasuredCyclesCost(machine)
        cost(iterative_plan(4))
        cost(iterative_plan(5))
        assert cost.evaluations == 2


class TestInstructionModelCost:
    def test_matches_model(self):
        cost = InstructionModelCost()
        plan = right_recursive_plan(7)
        assert cost(plan) == float(cost.model.count(plan))

    def test_orders_canonicals(self):
        cost = InstructionModelCost()
        n = 8
        assert cost(iterative_plan(n)) < cost(right_recursive_plan(n)) < cost(left_recursive_plan(n))

    def test_counts_evaluations(self):
        cost = InstructionModelCost()
        for _ in range(3):
            cost(iterative_plan(5))
        assert cost.evaluations == 3


class TestCombinedModelCost:
    def test_for_machine_builds_matching_models(self, machine):
        cost = CombinedModelCost.for_machine(machine)
        assert cost.miss_model.capacity_elements == machine.config.l1.size_bytes // 8

    def test_value_formula(self, machine):
        combined = CombinedModel(alpha=1.0, beta=2.0)
        cost = CombinedModelCost.for_machine(machine, combined=combined)
        plan = right_recursive_plan(8)
        expected = cost.instruction_model.count(plan) + 2.0 * cost.miss_model.misses(plan)
        assert cost(plan) == pytest.approx(expected)

    def test_evaluation_counter(self, machine):
        cost = CombinedModelCost.for_machine(machine)
        cost(iterative_plan(6))
        assert cost.evaluations == 1


class TestWallClockCost:
    def test_positive_and_counted(self, machine):
        cost = WallClockCost(machine)
        assert cost(iterative_plan(5)) > 0.0
        assert cost.evaluations == 1
