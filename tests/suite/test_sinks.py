"""File sinks, the memory sink and sink resolution."""

from __future__ import annotations

import json
import os

import pytest

from repro.suite import MemorySink
from repro.suite.results import ExperimentResult, SuiteTable, jsonable, sanitize_unit_id
from repro.suite.sinks import CSVSink, FigureArtifactSink, JSONLSink, resolve_sinks


def make_result(unit_id="tiny@20070122/figure5", **overrides):
    fields = dict(
        unit_id=unit_id,
        experiment_id="figure5",
        kind="figure5",
        machine_id="tiny",
        seed=20070122,
        status="complete",
        measured=3,
        tables={
            "histogram": SuiteTable.build(
                ["bin_left", "bin_right", "count"],
                [(0.0, 1.0, 4), (1.0, 2.0, 7)],
            )
        },
        artifact={"bins": 2, "p95": 1.75},
    )
    fields.update(overrides)
    return ExperimentResult(**fields)


# -- file layout -----------------------------------------------------------------


def test_sanitize_unit_id_makes_a_safe_stem():
    assert sanitize_unit_id("tiny@1/figure5") == "tiny@1__figure5"
    assert sanitize_unit_id("a:b/c") == "a_b__c"
    assert "/" not in sanitize_unit_id("m@2/correlations")


def test_csv_sink_writes_one_file_per_table(tmp_path):
    sink = CSVSink(str(tmp_path))
    sink.write(make_result())
    sink.close()
    path = tmp_path / "tiny@20070122__figure5.histogram.csv"
    assert path.read_text() == "bin_left,bin_right,count\n0.0,1.0,4\n1.0,2.0,7\n"
    assert sorted(p.name for p in tmp_path.iterdir()) == [path.name]


def test_jsonl_sink_writes_one_object_per_row(tmp_path):
    sink = JSONLSink(str(tmp_path))
    sink.write(make_result())
    lines = (tmp_path / "tiny@20070122__figure5.histogram.jsonl").read_text().splitlines()
    assert [json.loads(line) for line in lines] == [
        {"bin_left": 0.0, "bin_right": 1.0, "count": 4},
        {"bin_left": 1.0, "bin_right": 2.0, "count": 7},
    ]
    # Compact, key-sorted serialisation keeps the bytes deterministic.
    assert lines[0] == '{"bin_left":0.0,"bin_right":1.0,"count":4}'


def test_figure_artifact_sink_writes_the_json_payload(tmp_path):
    sink = FigureArtifactSink(str(tmp_path))
    sink.write(make_result())
    payload = json.loads((tmp_path / "tiny@20070122__figure5.json").read_text())
    assert payload == {
        "unit": "tiny@20070122/figure5",
        "experiment": "figure5",
        "kind": "figure5",
        "machine": "tiny",
        "seed": 20070122,
        "artifact": {"bins": 2, "p95": 1.75},
    }


def test_file_sinks_leave_no_tmp_files_and_rewrite_atomically(tmp_path):
    sink = CSVSink(str(tmp_path))
    sink.write(make_result())
    before = (tmp_path / "tiny@20070122__figure5.histogram.csv").read_bytes()
    sink.write(make_result())  # idempotent rewrite
    after = (tmp_path / "tiny@20070122__figure5.histogram.csv").read_bytes()
    assert before == after
    assert not [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]


def test_directory_sink_creates_its_directory(tmp_path):
    nested = tmp_path / "a" / "b"
    CSVSink(str(nested))
    assert os.path.isdir(nested)


# -- memory sink -----------------------------------------------------------------


def test_memory_sink_collects_and_looks_up():
    sink = MemorySink()
    first = make_result()
    sink.write(first)
    sink.write(make_result(unit_id="tiny@1/theory", experiment_id="theory", kind="theory"))
    assert len(sink) == 2
    assert sink.get("figure5") is first
    with pytest.raises(KeyError):
        sink.get("figure9")


# -- resolution ------------------------------------------------------------------


def test_resolve_default_trio_with_artifacts(tmp_path):
    sinks = resolve_sinks(None, str(tmp_path))
    assert [s.name for s in sinks] == ["csv", "jsonl", "figure"]
    assert all(s.directory == str(tmp_path) for s in sinks)


def test_resolve_none_without_artifacts_is_sinkless():
    assert resolve_sinks(None, None) == []


def test_resolve_presets_and_objects_mix(tmp_path):
    memory = MemorySink()
    sinks = resolve_sinks(["csv", memory], str(tmp_path))
    assert isinstance(sinks[0], CSVSink)
    assert sinks[1] is memory


def test_resolve_rejects_bad_inputs(tmp_path):
    with pytest.raises(ValueError, match="unknown sink preset"):
        resolve_sinks(["parquet"], str(tmp_path))
    with pytest.raises(ValueError, match="needs artifacts="):
        resolve_sinks(["csv"], None)
    with pytest.raises(TypeError, match="not a ResultSink"):
        resolve_sinks([object()], None)
    with pytest.raises(ValueError, match="duplicate sink names"):
        resolve_sinks([MemorySink(), MemorySink()], None)


# -- jsonable --------------------------------------------------------------------


def test_jsonable_strips_numpy_and_keeps_json_loadable():
    import numpy as np

    value = {
        "i": np.int64(3),
        "f": np.float64(0.5),
        "a": np.arange(3),
        "t": (1, 2),
        "nan": float("nan"),
        "inf": float("inf"),
        7: "int-key",
    }
    clean = jsonable(value)
    assert clean == {
        "i": 3,
        "f": 0.5,
        "a": [0, 1, 2],
        "t": [1, 2],
        "nan": "nan",
        "inf": "inf",
        "7": "int-key",
    }
    json.dumps(clean)  # round-trips through strict JSON
