"""Crash-resume: a SIGKILL mid-run loses at most the in-flight unit.

A child process runs a three-unit suite against a disk store and kills
itself (hard, ``SIGKILL`` — no cleanup, no flush) right after the second
unit's file sinks are written but *before* the manifest records that unit.
The parent then resumes with the same store and artifacts directory and
checks the advertised semantics: the recorded unit skips, the torn unit and
the never-started unit complete, the warm store replays every measurement
(zero new ones), and the final sink tree is byte-identical to an
uninterrupted reference run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

from _suite_helpers import sink_files, tiny_spec_dict
from repro.config import ci_scale
from repro.runtime.store import MemoryStore
from repro.suite import SuiteRun, SuiteSpec

SEED = ci_scale().seed

# Only baseline-derived experiments: the baselines (small + large campaigns)
# materialise before the first unit runs, so the resuming parent finds every
# measurement already in the disk store.
SPEC = tiny_spec_dict(experiments=["figure5", "figure9", "correlations"])

CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.suite import SuiteRun, SuiteSpec
    from repro.suite.sinks import CSVSink, FigureArtifactSink, JSONLSink

    spec = SuiteSpec.from_dict(json.loads(sys.argv[1]))
    store, artifacts = sys.argv[2], sys.argv[3]

    class KillerSink:
        # Last in the sink list: when it fires, the unit's real sinks are
        # already on disk but the manifest has not recorded the unit yet.
        name = "killer"
        writes = 0

        def write(self, result):
            KillerSink.writes += 1
            if KillerSink.writes == 2:
                os.kill(os.getpid(), signal.SIGKILL)

        def close(self):
            pass

    sinks = [CSVSink(artifacts), JSONLSink(artifacts), FigureArtifactSink(artifacts), KillerSink()]
    SuiteRun(spec, store=store, artifacts=artifacts, sinks=sinks).run()
    raise SystemExit("unreachable: the killer sink should have fired")
    """
)


def test_sigkill_mid_run_then_resume_completes_without_remeasuring(tmp_path):
    spec = SuiteSpec.from_dict(SPEC)
    store = str(tmp_path / "campaigns")
    artifacts = str(tmp_path / "artifacts")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
    )
    child = subprocess.run(
        [sys.executable, "-c", CHILD, json.dumps(SPEC), store, artifacts],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert child.returncode == -signal.SIGKILL, child.stderr

    # The crash left unit 1 recorded, unit 2's sink files torn-state-free on
    # disk but unrecorded, and unit 3 untouched.
    manifest = json.loads((tmp_path / "artifacts" / "manifest.json").read_text())
    recorded = set(manifest["units"])
    assert f"tiny@{SEED}/figure5" in recorded
    assert f"tiny@{SEED}/figure9" not in recorded

    resumed = SuiteRun(spec, store=store, artifacts=artifacts).run()
    assert resumed.ok
    assert resumed.statuses() == {
        f"tiny@{SEED}/figure5": "skipped",
        f"tiny@{SEED}/figure9": "complete",
        f"tiny@{SEED}/correlations": "complete",
    }
    # Every measurement replays from the disk store the child populated.
    assert resumed.total_measured == 0

    # The resumed artifact tree is byte-identical to an uninterrupted run.
    reference_dir = tmp_path / "reference"
    reference = SuiteRun(spec, store=MemoryStore(), artifacts=str(reference_dir)).run()
    assert reference.ok
    assert sink_files(tmp_path / "artifacts") == sink_files(reference_dir)
