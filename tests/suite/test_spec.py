"""SuiteSpec validation, normalisation and hashing."""

from __future__ import annotations

import dataclasses
import json

import pytest

from _suite_helpers import tiny_spec_dict
from repro.config import ci_scale, default_scale
from repro.machine.configs import tiny_machine_config
from repro.suite import SpecError, SuiteSpec, load_spec
from repro.suite.spec import spec_from_dict


# -- validation errors (path-prefixed, actionable) --------------------------------


def test_minimal_spec_defaults():
    spec = SuiteSpec.from_dict({"name": "s", "experiments": ["theory"]})
    assert [m.id for m in spec.machines] == ["default"]
    assert spec.scale == default_scale()
    assert spec.seeds == (default_scale().seed,)
    assert spec.experiments[0].id == "theory"
    assert spec.experiments[0].kind == "theory"


@pytest.mark.parametrize(
    "payload, message",
    [
        ({"experiments": ["theory"]}, r"spec\.name"),
        ({"name": "s"}, r"spec\.experiments"),
        ({"name": "s", "experiments": []}, r"at least one experiment"),
        ({"name": "s", "experiments": ["theory"], "bogus": 1}, r"unknown top-level keys"),
        ({"name": "s", "experiments": ["nope"]}, r"experiments\[0\]\.kind: unknown kind"),
        (
            {"name": "s", "experiments": ["theory"], "machines": ["warp-drive"]},
            r"machines\[0\]: unknown machine preset",
        ),
        ({"name": "s", "experiments": ["theory"], "machines": []}, r"at least one machine"),
        (
            {"name": "s", "experiments": ["theory"], "machines": ["tiny", "tiny"]},
            r"duplicate machine ids",
        ),
        (
            {"name": "s", "experiments": ["theory", "theory"]},
            r"duplicate experiment ids",
        ),
        (
            {"name": "s", "experiments": ["theory"], "scale": {"warp": 9}},
            r"scale: unknown scale keys",
        ),
        (
            {"name": "s", "experiments": ["theory"], "scale": "galactic"},
            r"scale: unknown scale preset",
        ),
        ({"name": "s", "experiments": ["theory"], "seeds": []}, r"at least one seed"),
        ({"name": "s", "experiments": ["theory"], "seeds": [1, 1]}, r"duplicate seeds"),
        (
            {"name": "s", "experiments": [{"id": "a/b", "kind": "theory"}]},
            r"may not contain",
        ),
        (
            {"name": "s", "experiments": [{"kind": "theory", "options": {"bogus": 1}}]},
            r"experiments\[0\]\.options: unknown option",
        ),
        (
            {"name": "s", "experiments": [{"kind": "search"}]},
            r"options\.n: required",
        ),
        (
            {
                "name": "s",
                "experiments": [
                    {"kind": "objective_sweep", "options": {"objectives": ["cycles"]}}
                ],
            },
            r"at least two objectives",
        ),
    ],
)
def test_invalid_specs_fail_with_the_offending_path(payload, message):
    with pytest.raises(SpecError, match=message):
        SuiteSpec.from_dict(payload)


def test_spec_error_is_a_value_error():
    assert issubclass(SpecError, ValueError)


# -- axis parsing ----------------------------------------------------------------


def test_experiment_shorthand_and_explicit_forms_agree():
    short = SuiteSpec.from_dict({"name": "s", "experiments": ["figure5"]})
    explicit = SuiteSpec.from_dict(
        {"name": "s", "experiments": [{"id": "figure5", "kind": "figure5"}]}
    )
    assert short.experiments == explicit.experiments
    assert short.spec_hash() == explicit.spec_hash()


def test_repeated_kind_needs_distinct_ids():
    spec = SuiteSpec.from_dict(
        {
            "name": "s",
            "experiments": [
                {"id": "s6", "kind": "search", "options": {"n": 6}},
                {"id": "s7", "kind": "search", "options": {"n": 7}},
            ],
        }
    )
    assert [e.id for e in spec.experiments] == ["s6", "s7"]


def test_inline_machine_config_round_trips():
    from repro.runtime.transport import machine_config_to_wire

    wire = machine_config_to_wire(tiny_machine_config())
    spec = SuiteSpec.from_dict(
        {
            "name": "s",
            "machines": [{"id": "custom", "config": wire}],
            "experiments": ["theory"],
        }
    )
    machine = spec.machines[0].build()
    assert spec.machines[0].id == "custom"
    assert machine.config == tiny_machine_config()
    # Normalised dict keeps the inline config, so the hash covers it.
    assert spec.to_dict()["machines"][0]["config"] == wire


def test_scale_preset_and_field_overrides():
    preset = SuiteSpec.from_dict({"name": "s", "scale": "ci", "experiments": ["theory"]})
    assert preset.scale == ci_scale()
    overridden = SuiteSpec.from_dict(
        {"name": "s", "scale": {"sample_count": 7}, "experiments": ["theory"]}
    )
    assert overridden.scale == dataclasses.replace(default_scale(), sample_count=7)


def test_with_scale_rederives_mirroring_seeds_only():
    spec = SuiteSpec.from_dict(tiny_spec_dict())
    rescaled = spec.with_scale({"seed": 999})
    assert rescaled.seeds == (999,)
    pinned = SuiteSpec.from_dict(tiny_spec_dict(seeds=[41, 42]))
    assert pinned.with_scale({"seed": 999}).seeds == (41, 42)


# -- hashing ---------------------------------------------------------------------


def test_spec_hash_is_stable_and_key_order_independent():
    a = SuiteSpec.from_dict(tiny_spec_dict())
    shuffled = dict(reversed(list(tiny_spec_dict().items())))
    b = SuiteSpec.from_dict(shuffled)
    assert a.spec_hash() == b.spec_hash()


def test_spec_hash_distinguishes_specs():
    base = SuiteSpec.from_dict(tiny_spec_dict())
    assert base.spec_hash() != SuiteSpec.from_dict(tiny_spec_dict(name="other")).spec_hash()
    assert (
        base.spec_hash()
        != SuiteSpec.from_dict(tiny_spec_dict(seeds=[1, 2])).spec_hash()
    )


def test_to_dict_round_trips_through_from_dict():
    spec = SuiteSpec.from_dict(tiny_spec_dict())
    again = SuiteSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.spec_hash() == spec.spec_hash()


# -- loading ---------------------------------------------------------------------


def test_load_spec_reads_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(tiny_spec_dict()))
    spec = load_spec(str(path))
    assert spec.name == "tiny-suite"


def test_load_spec_reports_missing_file_and_bad_json(tmp_path):
    with pytest.raises(SpecError, match="cannot read spec file"):
        load_spec(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(SpecError, match="not valid JSON"):
        load_spec(str(bad))


def test_spec_from_dict_passes_instances_through(tiny_spec):
    assert spec_from_dict(tiny_spec) is tiny_spec


# -- committed specs and the legacy bridge ---------------------------------------


def test_committed_specs_validate():
    for name in ("paper.json", "ci.json"):
        spec = load_spec(f"benchmarks/suites/{name}")
        assert spec.experiments


def test_experiment_suite_to_spec_matches_run_all():
    from repro.experiments.runner import ExperimentSuite

    legacy = ExperimentSuite()
    spec = legacy.to_spec()
    ids = [e.id for e in spec.experiments]
    assert ids == [f"figure{i}" for i in range(1, 12)] + ["correlations", "theory"]
    assert spec.scale == legacy.scale
    assert spec.machines[0].build().config == legacy.machine.config
    assert spec.seeds == (legacy.scale.seed,)
