"""Suite results must not depend on the execution substrate.

The acceptance gate: running one spec through a connected
:class:`CampaignService` session produces sink files **byte-identical** to a
plain serial session's — the transport never leaks into the results.
"""

from __future__ import annotations

from _suite_helpers import sink_files, tiny_spec_dict
from repro.runtime.service import CampaignService
from repro.runtime.store import MemoryStore
from repro.suite import SuiteRun, SuiteSpec

# figure9 adds a scatter over the large campaign; the sweep exercises the
# engine-records path through the service as well.
SPEC = tiny_spec_dict(
    experiments=[
        "figure5",
        "figure9",
        {
            "id": "sweep",
            "kind": "objective_sweep",
            "options": {"objectives": ["cycles", "instructions"], "sizes": [5], "count": 8},
        },
    ]
)


def test_service_session_sinks_are_bit_identical_to_plain(tmp_path):
    spec = SuiteSpec.from_dict(SPEC)
    plain_dir = tmp_path / "plain"
    service_dir = tmp_path / "service"

    plain = SuiteRun(spec, store=MemoryStore(), artifacts=str(plain_dir)).run()
    assert plain.ok and plain.completed and plain.total_measured > 0

    with CampaignService(workers=2) as service:
        connected = SuiteRun(spec, service=service, artifacts=str(service_dir)).run()
    assert connected.ok and connected.completed

    plain_files = sink_files(plain_dir)
    service_files = sink_files(service_dir)
    assert set(plain_files) == set(service_files)
    assert plain_files  # CSV + JSONL + figure artifacts actually exist
    different = [name for name, blob in plain_files.items() if service_files[name] != blob]
    assert different == []
