"""SuiteRun execution: DAG order, filters, failures, skip and resume."""

from __future__ import annotations

import pytest

from _suite_helpers import tiny_spec_dict
from repro.config import ci_scale
from repro.runtime.store import MemoryStore
from repro.suite import MemorySink, SpecError, SuiteRun
from repro.suite.figures import KIND_REGISTRY, KindDef

SEED = ci_scale().seed


def test_tiny_suite_completes_every_unit(tiny_spec):
    result = SuiteRun(tiny_spec, store=MemoryStore()).run()
    assert result.ok
    assert len(result.completed) == 3
    assert result.statuses() == {
        f"tiny@{SEED}/figure5": "complete",
        f"tiny@{SEED}/theory": "complete",
        f"tiny@{SEED}/search6": "complete",
    }
    figure5 = result.get("figure5")
    assert figure5.figure is not None
    assert figure5.tables and figure5.artifact
    # figure5 derives from the shared large-campaign baseline, measured once.
    assert result.baseline_measured[f"tiny@{SEED}"]["large"] > 0
    assert result.total_measured > 0


def test_run_narrows_along_the_experiment_axis(tiny_spec):
    run = SuiteRun(tiny_spec, store=MemoryStore())
    result = run.run(experiments=["theory"])
    assert [r.experiment_id for r in result.results] == ["theory"]
    with pytest.raises(SpecError, match="unknown experiment"):
        run.run(experiments=["figure99"])
    with pytest.raises(SpecError, match="unknown machine"):
        run.run(machines=["opteron"])
    with pytest.raises(SpecError, match="unknown seed"):
        run.run(seeds=[123])


def test_sinks_receive_every_completed_unit(tiny_spec):
    memory = MemorySink()
    result = SuiteRun(tiny_spec, store=MemoryStore(), sinks=[memory]).run()
    assert len(memory) == len(result.completed) == 3
    assert memory.get("figure5").unit_id == f"tiny@{SEED}/figure5"


def test_failed_unit_is_recorded_and_the_run_continues(tiny_spec, monkeypatch):
    def boom(ctx, options):
        raise RuntimeError("injected failure")

    monkeypatch.setitem(KIND_REGISTRY, "theory", KindDef((), frozenset(), boom))
    result = SuiteRun(tiny_spec, store=MemoryStore()).run()
    assert not result.ok
    failed = result.get("theory")
    assert failed.status == "failed"
    assert failed.error == "RuntimeError: injected failure"
    assert not failed.ok
    # The other units still completed.
    assert {r.experiment_id for r in result.completed} == {"figure5", "search6"}


def test_manifest_skips_completed_units_on_rerun(tiny_spec, tmp_path):
    store = MemoryStore()
    artifacts = str(tmp_path / "artifacts")
    cold = SuiteRun(tiny_spec, store=store, artifacts=artifacts).run()
    assert cold.ok and cold.total_measured > 0
    assert (tmp_path / "artifacts" / "manifest.json").exists()

    warm = SuiteRun(tiny_spec, store=store, artifacts=artifacts).run()
    assert warm.ok
    assert warm.total_measured == 0
    assert set(warm.statuses().values()) == {"skipped"}
    # Skipped units carry no figure — the manifest short-circuits derivation.
    assert all(r.figure is None for r in warm.results)


def test_store_resume_measures_nothing_even_without_a_manifest(tiny_spec):
    store = MemoryStore()
    cold = SuiteRun(tiny_spec, store=store).run()
    assert cold.total_measured > 0
    # Fresh SuiteRun, fresh in-memory manifest: every unit re-derives, but the
    # shared store replays all measurements.
    warm = SuiteRun(tiny_spec, store=store).run()
    assert warm.ok
    assert set(warm.statuses().values()) == {"complete"}
    assert warm.total_measured == 0
    assert warm.get("figure5").figure is not None


def test_failed_units_are_retried_while_completed_units_skip(tiny_spec, tmp_path, monkeypatch):
    store = MemoryStore()
    artifacts = str(tmp_path / "artifacts")

    def boom(ctx, options):
        raise RuntimeError("injected failure")

    with monkeypatch.context() as patch:
        patch.setitem(KIND_REGISTRY, "theory", KindDef((), frozenset(), boom))
        first = SuiteRun(tiny_spec, store=store, artifacts=artifacts).run()
    assert first.get("theory").status == "failed"

    second = SuiteRun(tiny_spec, store=store, artifacts=artifacts).run()
    assert second.ok
    statuses = second.statuses()
    assert statuses[f"tiny@{SEED}/theory"] == "complete"
    assert statuses[f"tiny@{SEED}/figure5"] == "skipped"
    assert statuses[f"tiny@{SEED}/search6"] == "skipped"


def test_spec_change_discards_the_manifest(tiny_spec, tmp_path):
    from repro.suite import SuiteSpec

    store = MemoryStore()
    artifacts = str(tmp_path / "artifacts")
    SuiteRun(tiny_spec, store=store, artifacts=artifacts).run()

    changed = SuiteSpec.from_dict(tiny_spec_dict(name="renamed-suite"))
    rerun = SuiteRun(changed, store=store, artifacts=artifacts).run()
    # Different spec hash: nothing skips, but the warm store still replays.
    assert set(rerun.statuses().values()) == {"complete"}
    assert rerun.total_measured == 0


def test_results_report_in_spec_order(tiny_spec, tmp_path):
    store = MemoryStore()
    artifacts = str(tmp_path / "artifacts")
    run = SuiteRun(tiny_spec, store=store, artifacts=artifacts)
    run.run(experiments=["theory"])
    # theory now skips while the others execute; report order still follows
    # the spec, not execution order.
    result = run.run()
    assert [r.experiment_id for r in result.results] == ["figure5", "theory", "search6"]
    assert result.statuses()[f"tiny@{SEED}/theory"] == "skipped"
