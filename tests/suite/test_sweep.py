"""The objective_sweep experiment: shared records, ranks, disagreement."""

from __future__ import annotations

import numpy as np
import pytest

from _suite_helpers import tiny_spec_dict
from repro.runtime.store import MemoryStore
from repro.suite import SpecError, SuiteRun, SuiteSpec
from repro.suite.sweep import DEFAULT_OBJECTIVES, parse_objective

SWEEP = {
    "id": "sweep",
    "kind": "objective_sweep",
    "options": {
        "objectives": ["cycles", "instructions", {"alpha": 1.0, "beta": 0.05}],
        "sizes": [5, 6],
        "count": 12,
    },
}


@pytest.fixture
def sweep_spec():
    return SuiteSpec.from_dict(tiny_spec_dict(experiments=[SWEEP]))


def run_sweep(spec, store):
    result = SuiteRun(spec, store=store).run()
    assert result.ok, result.describe()
    return result.get("sweep")


def test_sweep_labels_populations_and_tables(sweep_spec):
    unit = run_sweep(sweep_spec, MemoryStore())
    sweep = unit.figure
    assert sweep.sizes == (5, 6)
    assert sweep.labels == ("cycles", "instructions", "1*instructions + 0.05*l1_misses")
    for n in sweep.sizes:
        population = sweep.population[n]
        assert 0 < len(population) <= 12
        assert len(set(population)) == len(population)
        for label in sweep.labels:
            assert sweep.values[n][label].shape == (len(population),)

    ranks_table = unit.tables["best_plan_ranks"]
    assert ranks_table.headers[:3] == ("n", "objective", "best_plan")
    assert len(ranks_table.rows) == len(sweep.sizes) * len(sweep.labels)
    disagreement = unit.tables["disagreement"]
    assert disagreement.headers == (
        "n", "objective_a", "objective_b", "spearman_rho", "kendall_tau"
    )
    # One row per unordered objective pair per size.
    assert len(disagreement.rows) == len(sweep.sizes) * 3


def test_objectives_after_the_first_cost_no_extra_measurements(sweep_spec):
    unit = run_sweep(sweep_spec, MemoryStore())
    assert unit.artifact["extra_measurements_after_records"] == 0
    # The one records() pass per size accounts for every measurement the
    # whole unit performed.
    assert unit.measured == sum(unit.figure.population_measured.values())
    assert unit.measured > 0


def test_sweep_replays_from_a_warm_store(sweep_spec):
    store = MemoryStore()
    cold = run_sweep(sweep_spec, store)
    warm = run_sweep(sweep_spec, store)
    assert warm.measured == 0
    for n in cold.figure.sizes:
        assert cold.figure.population[n] == warm.figure.population[n]
        for label in cold.figure.labels:
            np.testing.assert_array_equal(
                cold.figure.values[n][label], warm.figure.values[n][label]
            )
    # Everything but the measurement attribution is identical (the warm run
    # replayed from the store, so its records pass measured nothing).
    cold_artifact = {k: v for k, v in cold.artifact.items() if k != "population_measured"}
    warm_artifact = {k: v for k, v in warm.artifact.items() if k != "population_measured"}
    assert cold_artifact == warm_artifact
    assert set(warm.artifact["population_measured"].values()) == {0}


def test_best_plan_ranks_are_self_consistent(sweep_spec):
    sweep = run_sweep(sweep_spec, MemoryStore()).figure
    for n in sweep.sizes:
        for label in sweep.labels:
            winner = sweep.best_plan(n, label)
            assert winner in sweep.population[n]
            # The winner holds the minimum, so its rank under its own
            # objective is the smallest tied-average rank.
            ranks = sweep.ranks(n, label)
            index = sweep.population[n].index(winner)
            assert ranks[index] == ranks.min()


def test_disagreement_is_symmetric_in_range_and_self_correlates(sweep_spec):
    sweep = run_sweep(sweep_spec, MemoryStore()).figure
    for n in sweep.sizes:
        rho, tau = sweep.disagreement(n, "cycles", "cycles")
        assert rho == pytest.approx(1.0)
        assert tau == pytest.approx(1.0)
        for a in sweep.labels:
            for b in sweep.labels:
                rho, tau = sweep.disagreement(n, a, b)
                assert -1.0 <= rho <= 1.0
                assert -1.0 <= tau <= 1.0
                back_rho, back_tau = sweep.disagreement(n, b, a)
                assert rho == pytest.approx(back_rho)
                assert tau == pytest.approx(back_tau)


def test_composite_objective_is_the_stated_linear_combination(sweep_spec):
    sweep = run_sweep(sweep_spec, MemoryStore()).figure
    composite = "1*instructions + 0.05*l1_misses"
    for n in sweep.sizes:
        instructions = sweep.values[n]["instructions"]
        # l1_misses is not an objective of its own here, so recompute the
        # composite through a records-free identity instead: the composite
        # minus 1*instructions must be a nonnegative multiple of 0.05.
        residual = sweep.values[n][composite] - instructions
        assert np.all(residual >= 0)
        np.testing.assert_allclose(residual / 0.05, np.round(residual / 0.05), atol=1e-9)


def test_parse_objective_accepts_the_spec_forms():
    assert parse_objective("cycles").describe() == "cycles"
    assert parse_objective({"alpha": 2.0, "beta": 0.1}).describe() == (
        "2*instructions + 0.1*l1_misses"
    )
    weighted = parse_objective({"weights": {"instructions": 1.5}})
    assert "instructions" in weighted.describe()
    with pytest.raises(SpecError):
        parse_objective("warp_factor")
    with pytest.raises(SpecError):
        parse_objective({"alpha": 1.0})
    with pytest.raises(SpecError):
        parse_objective(42)
    assert len(DEFAULT_OBJECTIVES) == 4
