"""Shared fixtures for the suite-runner tests.

Everything runs the tiny machine at the CI scale so a whole suite completes
in well under a second; the specs cover every moving part (baseline-derived
figures, a summary table, a search, an objective sweep).
"""

from __future__ import annotations

import pytest

from _suite_helpers import tiny_spec_dict


@pytest.fixture
def tiny_spec():
    from repro.suite import SuiteSpec

    return SuiteSpec.from_dict(tiny_spec_dict())
