"""Shared helpers for the suite-runner tests (imported, not collected)."""

from __future__ import annotations

from pathlib import Path


def tiny_spec_dict(**overrides):
    """A small but representative suite spec as a plain dict."""
    payload = {
        "name": "tiny-suite",
        "machines": ["tiny"],
        "scale": "ci",
        "experiments": [
            "figure5",
            "theory",
            {"id": "search6", "kind": "search", "options": {"n": 6}},
        ],
    }
    payload.update(overrides)
    return payload


def sink_files(directory, exclude=("manifest.json",)):
    """Relative path -> bytes for every sink file under ``directory``."""
    root = Path(directory)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file() and path.name not in exclude
    }
