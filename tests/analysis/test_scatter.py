"""Tests for scatter-plot data assembly."""

import numpy as np
import pytest

from repro.analysis.scatter import scatter_data


class TestScatterData:
    def test_correlation_computed(self):
        x = np.arange(50.0)
        data = scatter_data(x, 2 * x, "instructions", "cycles")
        assert data.correlation == pytest.approx(1.0)
        assert data.count == 50

    def test_references_recorded(self):
        x = np.arange(10.0)
        data = scatter_data(x, x, "i", "c", references={"best": (1.0, 1.0)})
        assert data.references["best"] == (1.0, 1.0)
        assert not data.reference_outside_range("best")

    def test_reference_outside_range(self):
        x = np.arange(10.0)
        data = scatter_data(x, x, "i", "c", references={"left": (100.0, 5.0)})
        assert data.reference_outside_range("left")

    def test_unknown_reference(self):
        data = scatter_data(np.arange(5.0), np.arange(5.0), "i", "c")
        with pytest.raises(KeyError):
            data.reference_outside_range("missing")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scatter_data(np.arange(5.0), np.arange(6.0), "i", "c")

    def test_as_dict(self):
        data = scatter_data(np.arange(5.0), np.arange(5.0), "i", "c")
        payload = data.as_dict()
        assert payload["x_label"] == "i"
        assert payload["count"] == 5
