"""Tests for distribution summaries."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.distribution import (
    excess_kurtosis,
    skewness,
    summarize_distribution,
)


class TestSkewness:
    def test_symmetric_sample_near_zero(self):
        values = np.random.default_rng(0).normal(size=20000)
        assert abs(skewness(values)) < 0.05

    def test_right_skewed_sample_positive(self):
        values = np.random.default_rng(1).exponential(size=5000)
        assert skewness(values) > 1.0

    def test_matches_scipy(self):
        values = np.random.default_rng(2).gamma(2.0, size=500)
        assert skewness(values) == pytest.approx(scipy_stats.skew(values), rel=1e-9)

    def test_constant_sample(self):
        assert skewness(np.ones(10)) == 0.0

    def test_too_small_sample(self):
        with pytest.raises(ValueError):
            skewness(np.array([1.0, 2.0]))


class TestExcessKurtosis:
    def test_normal_sample_near_zero(self):
        values = np.random.default_rng(3).normal(size=20000)
        assert abs(excess_kurtosis(values)) < 0.1

    def test_matches_scipy(self):
        values = np.random.default_rng(4).gamma(2.0, size=500)
        assert excess_kurtosis(values) == pytest.approx(
            scipy_stats.kurtosis(values), rel=1e-9
        )

    def test_heavy_tailed_positive(self):
        values = np.random.default_rng(5).standard_t(df=3, size=5000)
        assert excess_kurtosis(values) > 1.0


class TestSummarizeDistribution:
    def test_fields(self):
        values = np.random.default_rng(6).normal(10.0, 2.0, size=1000)
        summary = summarize_distribution(values)
        assert summary.count == 1000
        assert summary.mean == pytest.approx(10.0, abs=0.3)
        assert summary.std == pytest.approx(2.0, abs=0.3)
        assert summary.minimum <= summary.q1 <= summary.median <= summary.q3 <= summary.maximum
        assert summary.iqr == pytest.approx(summary.q3 - summary.q1)

    def test_normality_check_on_normal_data(self):
        values = np.random.default_rng(7).normal(size=2000)
        assert summarize_distribution(values).looks_normal()

    def test_normality_check_rejects_exponential(self):
        values = np.random.default_rng(8).exponential(size=2000)
        assert not summarize_distribution(values).looks_normal()

    def test_as_dict(self):
        summary = summarize_distribution(np.arange(100.0))
        data = summary.as_dict()
        assert data["count"] == 100
        assert "jarque_bera" in data

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            summarize_distribution(np.array([1.0, 2.0, 3.0]))
