"""Rank statistics against brute-force references, ties included."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pearson import pearson_correlation
from repro.analysis.rank import kendall_tau, rank_values, spearman_correlation


def brute_ranks(values):
    """O(n^2) tied-average ranks: 1 + (# smaller) + (# equal - 1) / 2."""
    values = list(values)
    return np.array(
        [
            1.0
            + sum(other < value for other in values)
            + (sum(other == value for other in values) - 1) / 2.0
            for value in values
        ]
    )


def brute_tau_b(x, y):
    """O(n^2) tau-b: pairwise concordance with the tie correction."""
    n = len(x)
    concordant = discordant = ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = np.sign(x[i] - x[j])
            dy = np.sign(y[i] - y[j])
            if dx == 0:
                ties_x += 1
            if dy == 0:
                ties_y += 1
            if dx * dy > 0:
                concordant += 1
            elif dx * dy < 0:
                discordant += 1
    total = n * (n - 1) // 2
    denom = (total - ties_x) * (total - ties_y)
    if denom <= 0:
        return 0.0
    return (concordant - discordant) / np.sqrt(denom)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("tied", [False, True])
def test_rank_values_matches_brute_force(seed, tied):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 8, size=60) if tied else rng.normal(size=60)
    np.testing.assert_allclose(rank_values(values), brute_ranks(values))


def test_rank_values_simple_ties():
    np.testing.assert_allclose(rank_values([10.0, 20.0, 20.0, 30.0]), [1.0, 2.5, 2.5, 4.0])
    np.testing.assert_allclose(rank_values([5.0, 5.0, 5.0]), [2.0, 2.0, 2.0])


def test_rank_values_rejects_2d():
    with pytest.raises(ValueError):
        rank_values(np.zeros((2, 2)))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("tied", [False, True])
def test_spearman_matches_pearson_of_brute_ranks(seed, tied):
    rng = np.random.default_rng(seed)
    if tied:
        x = rng.integers(0, 6, size=40).astype(float)
        y = rng.integers(0, 6, size=40).astype(float)
    else:
        x = rng.normal(size=40)
        y = x + rng.normal(scale=0.5, size=40)
    expected = pearson_correlation(brute_ranks(x), brute_ranks(y))
    assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("tied", [False, True])
def test_kendall_matches_brute_force(seed, tied):
    rng = np.random.default_rng(seed)
    if tied:
        x = rng.integers(0, 6, size=40).astype(float)
        y = rng.integers(0, 6, size=40).astype(float)
    else:
        x = rng.normal(size=40)
        y = rng.normal(size=40)
    assert kendall_tau(x, y) == pytest.approx(brute_tau_b(x, y), abs=1e-12)


def test_kendall_chunking_is_exact():
    rng = np.random.default_rng(7)
    x = rng.integers(0, 10, size=97).astype(float)
    y = rng.integers(0, 10, size=97).astype(float)
    assert kendall_tau(x, y, chunk=5) == pytest.approx(kendall_tau(x, y, chunk=1000))


def test_perfect_agreement_and_reversal():
    x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    assert spearman_correlation(x, x) == pytest.approx(1.0)
    assert kendall_tau(x, x) == pytest.approx(1.0)
    assert spearman_correlation(x, -x) == pytest.approx(-1.0)
    assert kendall_tau(x, -x) == pytest.approx(-1.0)
    # Rank statistics see only the ordering, not the spacing.
    assert spearman_correlation(x, np.exp(x)) == pytest.approx(1.0)
    assert kendall_tau(x, np.exp(x)) == pytest.approx(1.0)


def test_fully_tied_sample_carries_no_ordering():
    x = np.array([3.0, 3.0, 3.0, 3.0])
    y = np.array([1.0, 2.0, 3.0, 4.0])
    assert kendall_tau(x, y) == 0.0


def test_too_short_inputs_rejected():
    with pytest.raises(ValueError):
        spearman_correlation([1.0], [2.0])
    with pytest.raises(ValueError):
        kendall_tau([1.0], [2.0])
    with pytest.raises(ValueError):
        spearman_correlation([1.0, 2.0], [1.0, 2.0, 3.0])
