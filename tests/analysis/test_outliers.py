"""Tests for IQR outer-fence outlier filtering."""

import numpy as np
import pytest

from repro.analysis.outliers import iqr_bounds, remove_outer_fence_outliers


class TestIqrBounds:
    def test_symmetric_sample(self):
        values = np.arange(101.0)
        lower, upper = iqr_bounds(values)
        q1, q3 = 25.0, 75.0
        assert lower == pytest.approx(q1 - 3 * 50.0)
        assert upper == pytest.approx(q3 + 3 * 50.0)

    def test_custom_factor(self):
        values = np.arange(101.0)
        lower_15, upper_15 = iqr_bounds(values, factor=1.5)
        lower_30, upper_30 = iqr_bounds(values, factor=3.0)
        assert lower_30 < lower_15 and upper_30 > upper_15

    def test_rejects_empty_and_negative_factor(self):
        with pytest.raises(ValueError):
            iqr_bounds(np.array([]))
        with pytest.raises(ValueError):
            iqr_bounds(np.arange(5.0), factor=-1.0)


class TestRemoveOuterFenceOutliers:
    def test_keeps_clean_sample(self):
        values = np.random.default_rng(0).normal(100.0, 5.0, size=500)
        result = remove_outer_fence_outliers(values)
        assert result.removed == 0
        assert result.kept == 500

    def test_removes_extreme_point(self):
        values = np.concatenate([np.random.default_rng(1).normal(0, 1, 200), [1e6]])
        result = remove_outer_fence_outliers(values)
        assert result.removed == 1
        assert not result.mask[-1]

    def test_mask_applies_to_paired_columns(self):
        values = np.concatenate([np.arange(50.0), [1e9]])
        other = np.arange(51.0) * 10.0
        result = remove_outer_fence_outliers(values)
        filtered = result.apply(other)
        assert result.removed == 1
        assert filtered.shape == (50,)
        assert 500.0 not in filtered.tolist()

    def test_apply_length_mismatch(self):
        result = remove_outer_fence_outliers(np.arange(10.0))
        with pytest.raises(ValueError):
            result.apply(np.arange(5.0))

    def test_counts_consistent(self):
        values = np.concatenate([np.zeros(50), np.ones(50) * 1e7])
        result = remove_outer_fence_outliers(values)
        assert result.kept + result.removed == 100
