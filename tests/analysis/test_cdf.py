"""Tests for the percentile pruning curves."""

import numpy as np
import pytest

from repro.analysis.cdf import (
    PAPER_PERCENTILES,
    pruning_curves,
    safe_pruning_threshold,
)


@pytest.fixture
def correlated_sample():
    """Model values and cycles with strong positive correlation."""
    rng = np.random.default_rng(0)
    model = rng.uniform(1e4, 1e5, size=2000)
    cycles = model * 1.5 + rng.normal(0, 5e3, size=2000)
    return model, cycles


class TestPruningCurves:
    def test_default_percentiles(self, correlated_sample):
        curves = pruning_curves(*correlated_sample)
        assert tuple(c.percentile for c in curves) == PAPER_PERCENTILES

    def test_curves_are_monotone(self, correlated_sample):
        for curve in pruning_curves(*correlated_sample):
            assert np.all(np.diff(curve.cumulative) >= 0)
            assert np.all(np.diff(curve.captured_top) >= 0)

    def test_limit_reached_at_max_threshold(self, correlated_sample):
        for curve in pruning_curves(*correlated_sample):
            assert curve.cumulative[-1] == pytest.approx(curve.limit, abs=0.01)
            assert curve.captured_top[-1] == pytest.approx(1.0)

    def test_limit_values(self, correlated_sample):
        curves = pruning_curves(*correlated_sample, percentiles=(5.0,))
        assert curves[0].limit == pytest.approx(0.95)

    def test_value_at_and_miss_probability(self, correlated_sample):
        model, cycles = correlated_sample
        curve = pruning_curves(model, cycles, percentiles=(5.0,))[0]
        max_threshold = model.max()
        assert curve.value_at(max_threshold) == pytest.approx(0.95, abs=0.01)
        assert curve.value_at(model.min() - 1) == 0.0
        assert curve.miss_probability(max_threshold) == pytest.approx(0.0)
        assert curve.miss_probability(model.min() - 1) == pytest.approx(1.0)

    def test_correlated_data_allows_early_capture(self, correlated_sample):
        # With strong correlation the top 5% of performers are captured well
        # before the median model value.
        model, cycles = correlated_sample
        curve = pruning_curves(model, cycles, percentiles=(5.0,))[0]
        median_model = float(np.median(model))
        assert curve.miss_probability(median_model) == pytest.approx(0.0)

    def test_uncorrelated_data_requires_full_range(self):
        rng = np.random.default_rng(1)
        model = rng.uniform(0, 1, size=2000)
        cycles = rng.uniform(0, 1, size=2000)
        curve = pruning_curves(model, cycles, percentiles=(10.0,))[0]
        median_model = float(np.median(model))
        # Roughly half of the top performers are still above the median model value.
        assert 0.3 < curve.miss_probability(median_model) < 0.7

    def test_invalid_inputs(self, correlated_sample):
        model, cycles = correlated_sample
        with pytest.raises(ValueError):
            pruning_curves(model[:10], cycles[:9])
        with pytest.raises(ValueError):
            pruning_curves(model, cycles, percentiles=(0.0,))
        with pytest.raises(ValueError):
            pruning_curves(np.array([1.0]), np.array([1.0]))


class TestSafePruningThreshold:
    def test_correlated_sample_discards_a_lot(self, correlated_sample):
        model, cycles = correlated_sample
        threshold, discarded = safe_pruning_threshold(model, cycles, percentile=5.0)
        assert discarded > 0.5
        # The threshold keeps every top-5% algorithm by construction.
        cutoff = np.percentile(cycles, 5.0)
        assert model[cycles <= cutoff].max() <= threshold

    def test_threshold_grows_with_percentile(self, correlated_sample):
        model, cycles = correlated_sample
        t1, _ = safe_pruning_threshold(model, cycles, percentile=1.0)
        t10, _ = safe_pruning_threshold(model, cycles, percentile=10.0)
        assert t10 >= t1

    def test_invalid_percentile(self, correlated_sample):
        model, cycles = correlated_sample
        with pytest.raises(ValueError):
            safe_pruning_threshold(model, cycles, percentile=100.0)
