"""Tests for the Pearson correlation implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.analysis.pearson import (
    correlation_matrix,
    fisher_confidence_interval,
    pearson_correlation,
)


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_samples_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(5000)
        y = rng.standard_normal(5000)
        assert abs(pearson_correlation(x, y)) < 0.05

    def test_matches_scipy(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.standard_normal(50)
            y = 0.6 * x + rng.standard_normal(50)
            expected = scipy_stats.pearsonr(x, y).statistic
            assert pearson_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_constant_sample_gives_nan(self):
        assert np.isnan(pearson_correlation(np.ones(10), np.arange(10.0)))

    def test_scale_invariance(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(100)
        y = rng.standard_normal(100)
        assert pearson_correlation(1000 * x + 5, y) == pytest.approx(pearson_correlation(x, y))

    def test_errors(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [2.0])
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            pearson_correlation(np.zeros((2, 2)), np.zeros((2, 2)))

    @given(
        seed=st.integers(0, 10**6),
        slope=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_bounded_and_sign_correct(self, seed, slope):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(40)
        y = slope * x + 0.1 * rng.standard_normal(40)
        rho = pearson_correlation(x, y)
        assert -1.0 <= rho <= 1.0
        assert rho > 0.5


class TestCorrelationMatrix:
    def test_pairs(self):
        data = {"a": np.arange(10.0), "b": np.arange(10.0) * 2, "c": -np.arange(10.0)}
        matrix = correlation_matrix(data)
        assert matrix[("a", "b")] == pytest.approx(1.0)
        assert matrix[("a", "c")] == pytest.approx(-1.0)
        assert len(matrix) == 3

    def test_keys_sorted(self):
        data = {"z": np.arange(5.0), "a": np.arange(5.0)}
        assert list(correlation_matrix(data)) == [("a", "z")]


class TestFisherInterval:
    def test_contains_estimate(self):
        lo, hi = fisher_confidence_interval(0.8, 100)
        assert lo < 0.8 < hi

    def test_narrows_with_sample_size(self):
        lo_small, hi_small = fisher_confidence_interval(0.7, 30)
        lo_large, hi_large = fisher_confidence_interval(0.7, 3000)
        assert (hi_large - lo_large) < (hi_small - lo_small)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            fisher_confidence_interval(1.5, 100)
        with pytest.raises(ValueError):
            fisher_confidence_interval(0.5, 3)
        with pytest.raises(ValueError):
            fisher_confidence_interval(0.5, 100, confidence=1.5)
