"""Tests for fixed-bin histograms."""

import numpy as np
import pytest

from repro.analysis.histogram import PAPER_BIN_COUNT, Histogram, histogram


class TestHistogram:
    def test_default_bins_match_paper(self):
        hist = histogram(np.random.default_rng(0).normal(size=1000))
        assert hist.bins == PAPER_BIN_COUNT == 50

    def test_total_count_preserved(self):
        values = np.random.default_rng(1).uniform(0, 10, size=777)
        assert histogram(values).total == 777

    def test_counts_match_numpy(self):
        values = np.random.default_rng(2).normal(size=300)
        hist = histogram(values, bins=20)
        counts, edges = np.histogram(values, bins=20)
        assert np.array_equal(hist.counts, counts)
        assert np.allclose(hist.edges, edges)

    def test_explicit_range(self):
        hist = histogram(np.array([1.0, 2.0, 3.0]), bins=4, value_range=(0.0, 4.0))
        assert hist.edges[0] == 0.0 and hist.edges[-1] == 4.0

    def test_centers_and_mode(self):
        values = np.concatenate([np.zeros(90), np.ones(10) * 10])
        hist = histogram(values, bins=10)
        assert hist.mode_center == pytest.approx(hist.centers[0])

    def test_normalized_sums_to_one(self):
        hist = histogram(np.random.default_rng(3).normal(size=200), bins=10)
        assert hist.normalized().sum() == pytest.approx(1.0)

    def test_render_contains_bars(self):
        hist = histogram(np.random.default_rng(4).normal(size=100), bins=5)
        assert "#" in hist.render()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            histogram(np.array([]))
        with pytest.raises(ValueError):
            histogram(np.arange(10.0), bins=0)
        with pytest.raises(ValueError):
            Histogram(edges=np.arange(3.0), counts=np.arange(3))
