"""Shared fixtures for the test suite.

Tests default to the tiny machine (cache boundaries at a few dozen elements,
deterministic cycle model) and small transform sizes so the whole suite runs
in seconds while still crossing every cache regime the paper studies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ci_scale
from repro.machine.configs import (
    default_machine_config,
    tiny_machine,
    tiny_machine_config,
)
from repro.machine.machine import SimulatedMachine
from repro.wht.canonical import (
    balanced_plan,
    iterative_plan,
    left_recursive_plan,
    right_recursive_plan,
)
from repro.wht.random_plans import RSUSampler


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def sampler() -> RSUSampler:
    """An RSU sampler with the package defaults."""
    return RSUSampler()


@pytest.fixture
def tiny_config():
    """The tiny machine configuration (deterministic, small caches)."""
    return tiny_machine_config()


@pytest.fixture
def machine() -> SimulatedMachine:
    """A deterministic tiny machine."""
    return tiny_machine(noise_sigma=0.0)


@pytest.fixture
def noisy_machine() -> SimulatedMachine:
    """A tiny machine with the default measurement-noise level."""
    return tiny_machine(noise_sigma=0.02, rng=7)


@pytest.fixture
def default_config():
    """The scaled default machine configuration (not instantiated per test)."""
    return default_machine_config()


@pytest.fixture
def scale():
    """The miniature experiment scale used for harness tests."""
    return ci_scale()


@pytest.fixture
def canonical_plan_set():
    """A dictionary of canonical plans of exponent 6 (all shapes)."""
    return {
        "iterative": iterative_plan(6),
        "right": right_recursive_plan(6),
        "left": left_recursive_plan(6),
        "balanced": balanced_plan(6),
    }


@pytest.fixture
def assorted_plans(rng, sampler):
    """A mix of canonical and random plans covering exponents 1..8."""
    plans = []
    for n in range(1, 9):
        plans.append(iterative_plan(n))
        plans.append(right_recursive_plan(n))
        plans.append(left_recursive_plan(n))
    for n in (4, 6, 8):
        plans.extend(sampler.sample_many(n, 5, rng))
    return plans
