"""Tests for vectorised model scoring of campaign tables."""

import numpy as np
import pytest

from repro.experiments.histograms import histogram_figure
from repro.experiments.model_scores import score_plans, with_model_columns
from repro.experiments.pruning import pruning_figure
from repro.experiments.scatter_fig import scatter_figure
from repro.models.cache_misses import CacheMissModel
from repro.models.combined import CombinedModel
from repro.models.instruction_count import InstructionCountModel
from repro.runtime.campaigns import run_campaign
from repro.wht.random_plans import random_plans


@pytest.fixture
def table(machine):
    return run_campaign(machine, 7, 30, seed=5)


class TestScorePlans:
    def test_matches_scalar_models(self, machine):
        plans = random_plans(8, 20, rng=3)
        miss_model = CacheMissModel.from_machine_config(machine.config)
        scores = score_plans(plans, miss_model=miss_model)
        instruction_model = InstructionCountModel()
        for index, plan in enumerate(plans):
            assert int(scores.instructions[index]) == instruction_model.count(plan)
            assert int(scores.l1_misses[index]) == miss_model.misses(plan)

    def test_combined_requires_miss_model(self):
        scores = score_plans(random_plans(6, 5, rng=1))
        with pytest.raises(ValueError):
            scores.combined(CombinedModel())


class TestWithModelColumns:
    def test_adds_aligned_columns(self, machine, table):
        enriched = with_model_columns(
            table, miss_model=machine.config, combined=CombinedModel(beta=0.05)
        )
        assert len(enriched.column("model_instructions")) == len(table)
        assert len(enriched.column("model_l1_misses")) == len(table)
        expected = enriched.column("model_instructions") + 0.05 * enriched.column(
            "model_l1_misses"
        )
        assert np.allclose(enriched.column("model_combined"), expected)
        # The measured instruction counter equals the analytic model in this
        # reproduction (asserted elsewhere); the model column must agree.
        assert np.array_equal(
            enriched.column("model_instructions"), table.instructions
        )

    def test_original_table_untouched(self, table):
        with_model_columns(table)
        assert "model_instructions" not in table.columns

    def test_figures_accept_model_metrics(self, machine, table):
        enriched = with_model_columns(table, miss_model=machine.config)
        figure = histogram_figure(enriched, metrics=("model_instructions",), bins=10)
        assert "model_instructions" in figure.metric_names()
        scatter = scatter_figure(enriched, x_metric="model_instructions")
        assert scatter.x_label == "model_instructions"
        pruning = pruning_figure(
            enriched,
            model_values=enriched.column("model_instructions"),
            model_label="model instructions",
        )
        assert pruning.safe_thresholds
