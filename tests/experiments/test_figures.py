"""Tests for the per-figure experiment harnesses."""

import numpy as np
import pytest

from repro.experiments.alphabeta import alphabeta_surface
from repro.experiments.campaign import SampleCampaign
from repro.experiments.canonical import CANONICAL_NAMES, canonical_sweep, ratio_series
from repro.experiments.correlation_table import correlation_table
from repro.experiments.histograms import (
    LARGE_SIZE_METRICS,
    SMALL_SIZE_METRICS,
    histogram_figure,
)
from repro.experiments.pruning import pruning_figure
from repro.experiments.scatter_fig import scatter_figure
from repro.experiments.theory_table import theory_table
from repro.models.combined import CombinedModel
from repro.wht.canonical import canonical_plans


@pytest.fixture(scope="module")
def small_table(request):
    from repro.machine.configs import tiny_machine

    machine = tiny_machine(noise_sigma=0.02)
    return SampleCampaign(machine, seed=11, use_cache=False).run(4, 60)


@pytest.fixture(scope="module")
def large_table(request):
    from repro.machine.configs import tiny_machine

    machine = tiny_machine(noise_sigma=0.02)
    return SampleCampaign(machine, seed=11, use_cache=False).run(7, 60)


class TestCanonicalSweep:
    def test_sweep_contents(self, machine):
        sweep = canonical_sweep(machine, sizes=range(1, 9))
        assert sweep.sizes == tuple(range(1, 9))
        assert set(sweep.measurements) == {"iterative", "left", "right", "best"}
        assert len(sweep.best_plans) == 8
        assert sweep.dp_evaluations > 0

    def test_ratios_at_least_one_no_noise(self, machine):
        # With a deterministic machine the DP-best is measured identically in
        # the sweep, so every canonical/best ratio is >= 1 (up to DP having
        # found something at least as good as the canonicals).
        sweep = canonical_sweep(machine, sizes=range(1, 9))
        for metric in ("cycles", "instructions"):
            for name, series in sweep.ratios(metric).items():
                assert all(r >= 0.999 for r in series), (metric, name)

    def test_crossover_detected_beyond_l2(self, machine):
        top = machine.config.l2_capacity_exponent() + 2
        sweep = canonical_sweep(machine, sizes=range(1, top + 1))
        crossover = sweep.crossover_size("right")
        assert crossover is not None
        assert crossover > machine.config.l1_capacity_exponent()

    def test_instruction_ordering_matches_paper(self, machine):
        sweep = canonical_sweep(machine, sizes=range(4, 9))
        ratios = sweep.ratios("instructions")
        for i in range(len(sweep.sizes)):
            assert ratios["iterative"][i] <= ratios["right"][i] <= ratios["left"][i]

    def test_log10_ratios(self, machine):
        sweep = canonical_sweep(machine, sizes=range(4, 8))
        logs = sweep.log10_ratios("l1_misses")
        assert set(logs) == set(CANONICAL_NAMES)

    def test_ratio_series_validates_metric(self, machine):
        sweep = canonical_sweep(machine, sizes=range(1, 5))
        with pytest.raises(ValueError):
            ratio_series(sweep, "not_a_metric")

    def test_empty_sizes_rejected(self, machine):
        with pytest.raises(ValueError):
            canonical_sweep(machine, sizes=[])


class TestHistogramFigure:
    def test_small_metrics(self, small_table):
        figure = histogram_figure(small_table, metrics=SMALL_SIZE_METRICS)
        assert figure.metric_names() == SMALL_SIZE_METRICS
        assert figure.sample_count == len(small_table)
        for metric in SMALL_SIZE_METRICS:
            assert figure.histograms[metric].total + figure.outliers_removed[metric] == len(
                small_table
            )

    def test_large_metrics_include_misses(self, large_table):
        figure = histogram_figure(large_table, metrics=LARGE_SIZE_METRICS)
        assert "l1_misses" in figure.histograms

    def test_render(self, small_table):
        text = histogram_figure(small_table).render()
        assert "cycles" in text and "#" in text

    def test_no_filtering_option(self, small_table):
        figure = histogram_figure(small_table, filter_outliers=False)
        assert all(v == 0 for v in figure.outliers_removed.values())


class TestScatterFigure:
    def test_basic(self, large_table):
        data = scatter_figure(large_table)
        assert data.count == len(large_table)
        assert -1.0 <= data.correlation <= 1.0

    def test_with_references(self, large_table, machine):
        refs = {name: machine.measure(p) for name, p in canonical_plans(large_table.n).items()}
        data = scatter_figure(large_table, references=refs)
        assert set(data.references) == {"iterative", "left", "right"}

    def test_reference_size_mismatch(self, large_table, machine):
        from repro.wht.canonical import iterative_plan

        with pytest.raises(ValueError):
            scatter_figure(
                large_table, references={"iterative": machine.measure(iterative_plan(3))}
            )

    def test_miss_scatter(self, large_table):
        data = scatter_figure(large_table, x_metric="l1_misses")
        assert data.x_label == "l1_misses"


class TestAlphaBetaSurface:
    def test_grid_shape_and_best(self, large_table):
        surface = alphabeta_surface(large_table)
        assert surface.rho.shape == (21, 21)
        alpha, beta, rho = surface.best
        assert 0.0 <= alpha <= 1.0 and 0.0 <= beta <= 1.0
        assert -1.0 <= rho <= 1.0

    def test_combined_at_least_individual(self, large_table):
        from repro.analysis.pearson import pearson_correlation

        surface = alphabeta_surface(large_table)
        _, _, rho = surface.best
        rho_i = pearson_correlation(large_table.instructions, large_table.cycles)
        assert rho >= rho_i - 1e-9


class TestPruningFigure:
    def test_instruction_pruning(self, small_table):
        figure = pruning_figure(small_table)
        assert figure.model_label == "instructions"
        assert len(figure.curves) == 3
        for percentile, (threshold, discarded) in figure.safe_thresholds.items():
            assert threshold <= small_table.instructions.max()
            assert 0.0 <= discarded < 1.0

    def test_combined_pruning(self, large_table):
        figure = pruning_figure(large_table, combined=CombinedModel(1.0, 0.05))
        assert "Instructions" in figure.model_label

    def test_conflicting_arguments(self, large_table):
        with pytest.raises(ValueError):
            pruning_figure(
                large_table,
                model_values=large_table.instructions,
                combined=CombinedModel(),
            )

    def test_curve_lookup(self, small_table):
        figure = pruning_figure(small_table)
        assert figure.curve(5.0).percentile == 5.0
        with pytest.raises(KeyError):
            figure.curve(42.0)

    def test_describe(self, small_table):
        assert "top 5%" in pruning_figure(small_table).describe()


class TestCorrelationTable:
    def test_values_in_range(self, small_table, large_table):
        table = correlation_table(small_table, large_table)
        for _, value in table.as_rows():
            assert -1.0 <= value <= 1.0
        assert table.small_n == small_table.n
        assert table.large_n == large_table.n

    def test_best_model(self, small_table, large_table):
        table = correlation_table(small_table, large_table)
        model = table.best_model()
        assert model.alpha == table.best_alpha and model.beta == table.best_beta


class TestTheoryTable:
    def test_rows(self):
        table = theory_table(range(1, 7))
        rows = table.as_rows()
        assert len(rows) == 6
        assert rows[0][1] == 1  # one plan of size 2^1
        assert rows[5][1] == 568
        assert len(table.headers) == len(rows[0])

    def test_growth_column(self):
        table = theory_table([2, 3, 4])
        rows = table.as_rows()
        assert rows[1][2] == pytest.approx(3.0)  # 6 / 2

    def test_without_extremes(self):
        table = theory_table([3, 4], include_extremes=False)
        assert np.isnan(table.as_rows()[0][3])


class TestModelColumnFigures:
    """The suite's figure methods accept analytic model metrics wired through
    experiments.model_scores.with_model_columns."""

    @pytest.fixture(scope="class")
    def suite(self):
        import repro
        from repro.config import ci_scale
        from repro.machine.configs import tiny_machine
        from repro.runtime.store import MemoryStore

        sess = repro.session(
            machine=tiny_machine(noise_sigma=0.02, rng=7),
            scale=ci_scale(),
            backend="serial",
            store=MemoryStore(),
        )
        return sess.suite()

    def test_model_table_adds_columns_and_memoises(self, suite):
        table = suite.model_table("small")
        for column in ("model_instructions", "model_l1_misses", "model_combined"):
            assert column in table.columns
        assert suite.model_table("small") is table
        assert len(table) == len(suite.small_table())
        with pytest.raises(ValueError):
            suite.model_table("medium")

    def test_model_columns_match_scalar_models(self, suite):
        from repro.models.cache_misses import CacheMissModel
        from repro.models.instruction_count import InstructionCountModel

        table = suite.model_table("small")
        instruction_model = InstructionCountModel(
            suite.machine.config.instruction_model
        )
        miss_model = CacheMissModel.from_machine_config(
            suite.machine.config, level="l1"
        )
        for index, plan in enumerate(table.plans[:10]):
            assert table.column("model_instructions")[index] == float(
                instruction_model.count(plan)
            )
            assert table.column("model_l1_misses")[index] == float(
                miss_model.misses(plan)
            )

    def test_histograms_accept_model_metrics(self, suite):
        figure = suite.figure4(metrics=("instructions", "model_instructions"))
        assert set(figure.metric_names()) == {"instructions", "model_instructions"}
        figure5 = suite.figure5(metrics=("cycles", "model_combined"))
        assert "model_combined" in figure5.metric_names()

    def test_default_figures_unchanged_by_model_support(self, suite):
        # Default metric sets stay the measured ones (no model columns leak).
        assert set(suite.figure4().metric_names()) == set(SMALL_SIZE_METRICS)
        assert set(suite.figure5().metric_names()) == set(LARGE_SIZE_METRICS)

    def test_scatter_accepts_model_metric_with_reference_points(self, suite):
        from repro.models.instruction_count import InstructionCountModel

        scatter = suite.figure6(x_metric="model_instructions")
        assert scatter.x_label == "model_instructions"
        references = suite.references(suite.scale.small_size)
        instruction_model = InstructionCountModel(
            suite.machine.config.instruction_model
        )
        for name, (x_value, y_value) in scatter.references.items():
            measurement = references[name]
            assert x_value == float(instruction_model.count(measurement.plan))
            assert y_value == float(measurement.cycles)

    def test_scatter_measured_path_unchanged(self, suite):
        measured = suite.figure6()
        assert measured.x_label == "instructions"
        references = suite.references(suite.scale.small_size)
        for name, (x_value, _) in measured.references.items():
            assert x_value == float(references[name].instructions)

    def test_pruning_accepts_model_metrics(self, suite):
        measured = suite.figure10()
        model = suite.figure10(model_metric="model_instructions")
        assert measured.model_label == "instructions"
        assert model.model_label == "model_instructions"
        assert set(model.safe_thresholds) == set(measured.safe_thresholds)
        combined = suite.figure11(model_metric="model_combined")
        assert combined.model_label == "model_combined"

    def test_scatter_explicit_reference_points_override(self, large_table, machine):
        from repro.wht.canonical import iterative_plan

        measurement = machine.measure(iterative_plan(large_table.n))
        figure = scatter_figure(
            large_table,
            references={"iterative": measurement},
            reference_points={"iterative": (1.0, 2.0)},
        )
        assert figure.references["iterative"] == (1.0, 2.0)
