"""Tests for measurement campaigns and tables."""

import numpy as np
import pytest

from repro.experiments.campaign import (
    MeasurementTable,
    SampleCampaign,
    clear_campaign_cache,
)
from repro.wht.canonical import canonical_plans


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_campaign_cache()
    yield
    clear_campaign_cache()


class TestMeasurementTable:
    def test_from_measurements(self, machine):
        plans = list(canonical_plans(6).values())
        measurements = [machine.measure(p) for p in plans]
        table = MeasurementTable.from_measurements(measurements)
        assert len(table) == 3
        assert table.n == 6
        assert table.cycles.shape == (3,)
        assert table.instructions.dtype == float

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MeasurementTable.from_measurements([])

    def test_rejects_mixed_sizes(self, machine):
        from repro.wht.canonical import iterative_plan

        measurements = [machine.measure(iterative_plan(5)), machine.measure(iterative_plan(6))]
        with pytest.raises(ValueError):
            MeasurementTable.from_measurements(measurements)

    def test_column_access_and_unknown_column(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(6).values()]
        )
        assert np.array_equal(table.column("cycles"), table.cycles)
        with pytest.raises(KeyError):
            table.column("nonexistent")

    def test_filtered(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(6).values()]
        )
        mask = np.array([True, False, True])
        filtered = table.filtered(mask)
        assert len(filtered) == 2
        assert filtered.cycles.shape == (2,)

    def test_filtered_length_mismatch(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(6).values()]
        )
        with pytest.raises(ValueError):
            table.filtered(np.array([True]))

    def test_combined_model_values(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(6).values()]
        )
        combined = table.combined_model_values(1.0, 2.0)
        assert np.allclose(combined, table.instructions + 2.0 * table.l1_misses)

    def test_best_row(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(6).values()]
        )
        assert table.cycles[table.best_row()] == table.cycles.min()

    def test_as_dict(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(5).values()]
        )
        payload = table.as_dict()
        assert payload["n"] == 5
        assert len(payload["plans"]) == 3

    def test_from_dict_round_trip(self, machine):
        table = MeasurementTable.from_measurements(
            [machine.measure(p) for p in canonical_plans(5).values()]
        )
        rebuilt = MeasurementTable.from_dict(table.as_dict())
        assert rebuilt.plans == table.plans
        assert table.equals(rebuilt)


class TestSampleCampaign:
    def test_run_produces_requested_count(self, machine):
        campaign = SampleCampaign(machine, seed=1)
        table = campaign.run(6, 15)
        assert len(table) == 15
        assert table.n == 6

    def test_deterministic_given_seed(self, noisy_machine):
        a = SampleCampaign(noisy_machine, seed=5, use_cache=False).run(6, 10)
        b = SampleCampaign(noisy_machine, seed=5, use_cache=False).run(6, 10)
        assert a.plans == b.plans
        assert np.allclose(a.cycles, b.cycles)

    def test_different_seeds_differ(self, machine):
        a = SampleCampaign(machine, seed=1, use_cache=False).run(7, 10)
        b = SampleCampaign(machine, seed=2, use_cache=False).run(7, 10)
        assert a.plans != b.plans

    def test_cache_returns_same_object(self, machine):
        campaign = SampleCampaign(machine, seed=3)
        assert campaign.run(6, 10) is campaign.run(6, 10)

    def test_cache_can_be_disabled(self, machine):
        campaign = SampleCampaign(machine, seed=3, use_cache=False)
        assert campaign.run(6, 10) is not campaign.run(6, 10)

    def test_measure_plans_explicit(self, machine):
        campaign = SampleCampaign(machine, seed=3)
        plans = list(canonical_plans(6).values())
        table = campaign.measure_plans(plans)
        assert len(table) == 3
        assert table.plans == tuple(plans)

    def test_measure_plans_rejects_empty(self, machine):
        with pytest.raises(ValueError):
            SampleCampaign(machine).measure_plans([])

    def test_invalid_arguments(self, machine):
        campaign = SampleCampaign(machine)
        with pytest.raises(ValueError):
            campaign.run(0, 5)
        with pytest.raises(ValueError):
            campaign.run(5, 0)
