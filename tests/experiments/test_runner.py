"""Tests for the experiment suite and report rendering."""

import pytest

from repro.config import ci_scale
from repro.experiments.campaign import clear_campaign_cache
from repro.experiments.report import (
    render_correlation_table,
    render_histogram_figure,
    render_pruning_figure,
    render_ratio_figure,
    render_scatter_figure,
    render_surface,
    render_theory_table,
)
from repro.experiments.runner import ExperimentSuite
from repro.machine.configs import tiny_machine


@pytest.fixture(scope="module")
def suite():
    clear_campaign_cache()
    return ExperimentSuite(machine=tiny_machine(noise_sigma=0.02), scale=ci_scale())


class TestExperimentSuite:
    def test_tables_are_cached(self, suite):
        assert suite.small_table() is suite.small_table()
        assert suite.large_table() is suite.large_table()
        assert suite.sweep() is suite.sweep()

    def test_table_sizes_match_scale(self, suite):
        assert suite.small_table().n == suite.scale.small_size
        assert suite.large_table().n == suite.scale.large_size
        assert len(suite.small_table()) == suite.scale.sample_count

    def test_figures_1_to_3_share_the_sweep(self, suite):
        assert suite.figure1() is suite.figure2() is suite.figure3()

    def test_figure4_and_5_metrics(self, suite):
        assert suite.figure4().metric_names() == ("cycles", "instructions")
        assert suite.figure5().metric_names() == ("cycles", "instructions", "l1_misses")

    def test_figures_6_to_8_reference_points(self, suite):
        fig6 = suite.figure6()
        assert {"iterative", "left", "right", "best"} <= set(fig6.references)
        fig8 = suite.figure8()
        assert fig8.x_label == "l1_misses"

    def test_figure9_surface(self, suite):
        surface = suite.figure9()
        assert surface.rho.shape == (21, 21)

    def test_figure10_and_11(self, suite):
        assert suite.figure10().model_label == "instructions"
        assert "Instructions" in suite.figure11().model_label

    def test_correlation_summary_ordering(self, suite):
        table = suite.correlation_summary()
        assert table.rho_large_combined >= table.rho_large_misses - 1e-9

    def test_run_all_keys(self, suite):
        results = suite.run_all()
        expected = {f"figure{i}" for i in range(1, 12)} | {"correlations", "theory"}
        assert expected == set(results)

    def test_references_cached(self, suite):
        n = suite.scale.small_size
        assert suite.references(n) is suite.references(n)


class TestReportRendering:
    def test_render_report_mentions_every_figure(self, suite):
        text = suite.render_report()
        for i in range(1, 12):
            assert f"Figure {i}" in text
        assert "correlation" in text.lower()

    def test_write_experiments_report(self, suite, tmp_path):
        path = tmp_path / "report.txt"
        text = suite.write_experiments_report(str(path))
        assert path.exists()
        assert path.read_text().strip() == text.strip()

    def test_individual_renderers(self, suite):
        sweep = suite.sweep()
        assert "iterative/best" in render_ratio_figure(sweep, "cycles", "Figure 1")
        assert "#" in render_histogram_figure(suite.figure4())
        assert "rho" in render_scatter_figure(suite.figure6(), "Figure 6")
        assert "alpha" in render_surface(suite.figure9(), "Figure 9")
        assert "top 5%" in render_pruning_figure(suite.figure10())
        assert "reproduced" in render_correlation_table(suite.correlation_summary())
        assert "plans" in render_theory_table(suite.theory_summary(6))
