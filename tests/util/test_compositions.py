"""Tests for integer composition utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.compositions import (
    compositions,
    compositions_with_max_part,
    count_compositions,
    count_compositions_with_max_part,
    random_composition,
    weak_compositions,
)


class TestCompositions:
    def test_compositions_of_one(self):
        assert list(compositions(1)) == [(1,)]

    def test_compositions_of_three(self):
        assert set(compositions(3)) == {(3,), (1, 2), (2, 1), (1, 1, 1)}

    def test_every_composition_sums_to_n(self):
        for comp in compositions(6):
            assert sum(comp) == 6

    def test_count_matches_enumeration(self):
        for n in range(1, 9):
            assert len(list(compositions(n))) == count_compositions(n) == 2 ** (n - 1)

    def test_min_parts_two_excludes_trivial(self):
        comps = list(compositions(5, min_parts=2))
        assert (5,) not in comps
        assert len(comps) == 2**4 - 1

    def test_max_part_restriction(self):
        comps = list(compositions(5, max_part=2))
        assert all(max(c) <= 2 for c in comps)
        assert (1, 2, 2) in comps and (5,) not in comps

    def test_count_with_max_part_matches_enumeration(self):
        for n in range(1, 9):
            for max_part in range(1, n + 1):
                expected = len(list(compositions_with_max_part(n, max_part)))
                assert count_compositions_with_max_part(n, max_part) == expected

    def test_lexicographic_order_is_deterministic(self):
        assert list(compositions(4)) == list(compositions(4))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(compositions(0))
        with pytest.raises(ValueError):
            list(compositions(3, min_parts=0))
        with pytest.raises(ValueError):
            list(compositions(3, max_part=0))


class TestWeakCompositions:
    def test_weak_compositions_count(self):
        # n + parts - 1 choose parts - 1
        assert len(list(weak_compositions(4, 3))) == 15

    def test_weak_compositions_allow_zero(self):
        assert (0, 4) in set(weak_compositions(4, 2))

    def test_weak_compositions_sum(self):
        for comp in weak_compositions(5, 3):
            assert sum(comp) == 5
            assert len(comp) == 3

    def test_zero_total(self):
        assert list(weak_compositions(0, 2)) == [(0, 0)]


class TestRandomComposition:
    def test_sums_to_n(self, rng):
        for _ in range(50):
            comp = random_composition(10, rng)
            assert sum(comp) == 10
            assert len(comp) >= 2

    def test_respects_max_part(self, rng):
        for _ in range(50):
            comp = random_composition(9, rng, max_part=3)
            assert max(comp) <= 3

    def test_min_parts_one_allows_trivial(self, rng):
        seen_trivial = False
        for _ in range(200):
            comp = random_composition(3, rng, min_parts=1)
            if comp == (3,):
                seen_trivial = True
        assert seen_trivial

    def test_impossible_request_raises(self, rng):
        with pytest.raises(ValueError):
            random_composition(2, rng, min_parts=5)

    def test_uniformity_over_small_space(self, rng):
        # Compositions of 4 with >= 2 parts: 7 equally likely outcomes.
        counts = {}
        trials = 7000
        for _ in range(trials):
            comp = random_composition(4, rng, min_parts=2)
            counts[comp] = counts.get(comp, 0) + 1
        assert len(counts) == 7
        expected = trials / 7
        for value in counts.values():
            assert abs(value - expected) < 5 * np.sqrt(expected)

    @given(n=st.integers(min_value=2, max_value=12), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_property_valid_composition(self, n, seed):
        comp = random_composition(n, np.random.default_rng(seed))
        assert sum(comp) == n
        assert all(p >= 1 for p in comp)
        assert len(comp) >= 2
