"""Tests for RNG helpers."""

import numpy as np
import pytest

from repro.util.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_accepts_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_accepts_int_and_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq)
        assert isinstance(a, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(3, 5)
        assert len(gens) == 5

    def test_independence(self):
        gens = spawn_generators(3, 2)
        a = gens[0].integers(0, 10**9, size=20)
        b = gens[1].integers(0, 10**9, size=20)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = spawn_generators(9, 3)[1].integers(0, 10**9, size=5)
        b = spawn_generators(9, 3)[1].integers(0, 10**9, size=5)
        assert np.array_equal(a, b)

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 2)
        assert len(gens) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "plans", 9) == derive_seed(5, "plans", 9)

    def test_different_tags_differ(self):
        assert derive_seed(5, "plans", 9) != derive_seed(5, "noise", 9)
        assert derive_seed(5, "plans", 9) != derive_seed(5, "plans", 10)

    def test_different_base_differ(self):
        assert derive_seed(5, "plans") != derive_seed(6, "plans")

    def test_in_63_bit_range(self):
        for base in (0, 1, 2**40, None):
            value = derive_seed(base, "x", 123456789)
            assert 0 <= value < 2**63

    def test_usable_as_numpy_seed(self):
        gen = np.random.default_rng(derive_seed(3, "tag", 1))
        assert gen.integers(0, 10) >= 0
