"""Tests for ASCII table rendering."""

import pytest

from repro.util.tables import format_histogram, format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text

    def test_title_on_first_line(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]], float_fmt=".3g")
        assert "3.14" in text

    def test_alignment_consistent_width(self):
        text = format_table(["col"], [[1], [100000]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestFormatSeries:
    def test_columns_present(self):
        text = format_series([1, 2, 3], {"a": [10, 20, 30], "b": [1.5, 2.5, 3.5]}, x_label="n")
        assert "n" in text and "a" in text and "b" in text
        assert "30" in text

    def test_short_series_padded(self):
        text = format_series([1, 2], {"a": [10]})
        assert "10" in text


class TestFormatHistogram:
    def test_bar_lengths_scale_with_counts(self):
        text = format_histogram([0, 1, 2], [1, 10], width=20)
        lines = text.splitlines()
        assert lines[1].count("#") == 20
        assert 0 < lines[0].count("#") <= 3

    def test_mismatched_edges_raise(self):
        with pytest.raises(ValueError):
            format_histogram([0, 1], [1, 2])

    def test_empty_histogram_is_fine(self):
        assert format_histogram([0, 1], [0]) != ""
