"""Tests for validation helpers."""

import pytest

from repro.util.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
    check_probability,
    ensure_in_range,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_accepts_integral_float(self):
        assert check_positive_int(4.0, "x") == 4

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_positive_int("three", "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="widgets"):
            check_positive_int(0, "widgets")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestCheckPowerOfTwo:
    def test_accepts_powers(self):
        for value in (1, 2, 4, 64, 4096):
            assert check_power_of_two(value, "x") == value

    def test_rejects_non_powers(self):
        for value in (3, 6, 12, 100):
            with pytest.raises(ValueError):
                check_power_of_two(value, "x")

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_power_of_two(0, "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")


class TestEnsureInRange:
    def test_accepts_inside(self):
        assert ensure_in_range(0.5, 0.0, 1.0, "x") == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(2.0, 0.0, 1.0, "x")
