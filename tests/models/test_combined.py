"""Tests for the combined model and the (alpha, beta) grid optimisation."""

import numpy as np
import pytest

from repro.models.combined import CombinedModel, CorrelationSurface, optimize_combined_model


class TestCombinedModel:
    def test_value(self):
        model = CombinedModel(alpha=1.0, beta=0.05)
        assert model.value(100, 40) == pytest.approx(102.0)

    def test_values_vectorised(self):
        model = CombinedModel(alpha=2.0, beta=1.0)
        out = model.values(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        assert np.allclose(out, [12.0, 24.0])

    def test_values_shape_mismatch(self):
        with pytest.raises(ValueError):
            CombinedModel().values(np.zeros(3), np.zeros(4))

    def test_value_for_measurement(self, machine):
        from repro.wht.canonical import iterative_plan

        m = machine.measure(iterative_plan(6))
        model = CombinedModel(alpha=1.0, beta=2.0)
        assert model.value_for_measurement(m) == pytest.approx(m.instructions + 2 * m.l1_misses)

    def test_value_for_plan_uses_analytic_models(self, machine):
        from repro.models.cache_misses import CacheMissModel
        from repro.models.instruction_count import InstructionCountModel
        from repro.wht.canonical import right_recursive_plan

        plan = right_recursive_plan(7)
        instruction_model = InstructionCountModel(machine.config.instruction_model)
        miss_model = CacheMissModel.from_machine_config(machine.config)
        model = CombinedModel(alpha=1.0, beta=1.0)
        expected = instruction_model.count(plan) + miss_model.misses(plan)
        assert model.value_for_plan(plan, instruction_model, miss_model) == pytest.approx(expected)

    def test_describe(self):
        assert "0.05" in CombinedModel(beta=0.05).describe()


class TestOptimizeCombinedModel:
    def test_recovers_known_mixture(self):
        rng = np.random.default_rng(0)
        instructions = rng.uniform(1e5, 2e5, size=400)
        misses = rng.uniform(1e3, 5e4, size=400)
        cycles = instructions + 20.0 * misses + rng.normal(0, 2e3, size=400)
        surface = optimize_combined_model(instructions, misses, cycles)
        alpha, beta, rho = surface.best
        assert rho > 0.99
        # The optimal ratio beta/alpha should be near the true cost ratio (20).
        assert 8 <= beta / alpha <= 40

    def test_pure_instruction_data(self):
        rng = np.random.default_rng(1)
        instructions = rng.uniform(1e5, 2e5, size=200)
        misses = rng.uniform(0, 1e3, size=200)  # irrelevant
        cycles = 1.3 * instructions + rng.normal(0, 1e3, size=200)
        surface = optimize_combined_model(instructions, misses, cycles)
        alpha, beta, rho = surface.best
        assert rho > 0.99
        assert beta / max(alpha, 1e-9) < 0.2

    def test_combined_at_least_as_good_as_individuals(self):
        from repro.analysis.pearson import pearson_correlation

        rng = np.random.default_rng(2)
        instructions = rng.uniform(1e5, 3e5, size=300)
        misses = rng.uniform(1e3, 3e4, size=300)
        cycles = instructions + 25 * misses + rng.normal(0, 5e3, size=300)
        surface = optimize_combined_model(instructions, misses, cycles)
        _, _, rho = surface.best
        assert rho >= pearson_correlation(instructions, cycles) - 1e-9
        assert rho >= pearson_correlation(misses, cycles) - 1e-9

    def test_grid_dimensions(self):
        surface = optimize_combined_model(
            np.arange(10.0), np.arange(10.0)[::-1], np.arange(10.0) * 2
        )
        assert surface.alphas.shape == (21,)
        assert surface.betas.shape == (21,)
        assert surface.rho.shape == (21, 21)

    def test_custom_grid(self):
        surface = optimize_combined_model(
            np.arange(10.0),
            np.arange(10.0)[::-1],
            np.arange(10.0) * 3,
            alphas=[0.0, 1.0],
            betas=[0.0, 0.5, 1.0],
        )
        assert surface.rho.shape == (2, 3)

    def test_degenerate_corner_is_nan(self):
        surface = optimize_combined_model(
            np.arange(10.0), np.arange(10.0), np.arange(10.0)
        )
        assert np.isnan(surface.rho[0, 0])

    def test_as_rows_covers_grid(self):
        surface = optimize_combined_model(
            np.arange(10.0), np.arange(10.0)[::-1], np.arange(10.0),
            alphas=[0.0, 1.0], betas=[0.0, 1.0],
        )
        assert len(surface.as_rows()) == 4

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            optimize_combined_model(np.zeros(3), np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            optimize_combined_model(np.zeros(1), np.zeros(1), np.zeros(1))

    def test_best_model_roundtrip(self):
        surface = optimize_combined_model(
            np.arange(20.0), np.arange(20.0)[::-1], np.arange(20.0) * 1.5
        )
        model = surface.best_model()
        alpha, beta, _ = surface.best
        assert (model.alpha, model.beta) == (alpha, beta)


class TestCorrelationSurface:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CorrelationSurface(
                alphas=np.array([0.0, 1.0]),
                betas=np.array([0.0]),
                rho=np.zeros((3, 3)),
            )

    def test_best_prefers_smaller_beta_on_ties(self):
        surface = CorrelationSurface(
            alphas=np.array([0.5, 1.0]),
            betas=np.array([0.0, 0.5]),
            rho=np.array([[0.9, 0.9], [0.9, 0.9]]),
        )
        alpha, beta, rho = surface.best
        assert beta == 0.0 and rho == 0.9
