"""Tests for the theoretical properties of the algorithm space."""

import numpy as np
import pytest

from repro.machine.cpu import InstructionCostModel
from repro.models.instruction_count import instruction_count
from repro.models.theory import (
    algorithm_space_size,
    extreme_instruction_counts,
    rsu_instruction_moments,
    space_growth_ratios,
)
from repro.wht.enumeration import enumerate_plans
from repro.wht.random_plans import RSUSampler


class TestSpaceSize:
    def test_matches_enumeration_module(self):
        from repro.wht.enumeration import count_plans

        for n in range(1, 10):
            assert algorithm_space_size(n) == count_plans(n)

    def test_growth_ratios_increase_toward_seven(self):
        ratios = space_growth_ratios(20)
        assert ratios[-1] > ratios[5]
        assert 6.0 < ratios[-1] < 7.2


class TestExtremeInstructionCounts:
    def test_extremes_bound_every_plan_small_sizes(self):
        for n in (3, 4, 5):
            extremes = extreme_instruction_counts(n)
            counts = [instruction_count(p) for p in enumerate_plans(n)]
            assert extremes.min_count == min(counts)
            assert extremes.max_count == max(counts)

    def test_extreme_plans_have_matching_counts(self):
        extremes = extreme_instruction_counts(6)
        assert instruction_count(extremes.min_plan) == extremes.min_count
        assert instruction_count(extremes.max_plan) == extremes.max_count

    def test_minimum_is_single_codelet_when_available(self):
        # A lone unrolled codelet beats any split for sizes within the
        # unrolled range under the default cost model.
        extremes = extreme_instruction_counts(7)
        assert extremes.min_plan.is_leaf

    def test_maximum_uses_smallest_leaves(self):
        extremes = extreme_instruction_counts(6)
        assert set(extremes.max_plan.leaf_exponents()) == {1}

    def test_spread_grows_with_size(self):
        assert extreme_instruction_counts(8).spread >= extreme_instruction_counts(4).spread

    def test_custom_cost_model(self):
        heavy_overhead = InstructionCostModel(split_invocation_cost=10_000)
        default = extreme_instruction_counts(5)
        heavy = extreme_instruction_counts(5, cost_model=heavy_overhead)
        assert heavy.max_count > default.max_count

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            extreme_instruction_counts(0)


class TestRSUMoments:
    def test_moments_match_monte_carlo(self):
        n = 6
        moments = rsu_instruction_moments(n)
        sampler = RSUSampler()
        rng = np.random.default_rng(0)
        sample = np.array(
            [instruction_count(sampler.sample(n, rng)) for _ in range(4000)], dtype=float
        )
        assert moments.mean == pytest.approx(sample.mean(), rel=0.05)
        assert moments.std == pytest.approx(sample.std(), rel=0.15)

    def test_moments_exact_for_trivial_size(self):
        # n = 1 has a single plan: zero variance, mean = its count.
        from repro.wht.plan import Small

        moments = rsu_instruction_moments(1)
        assert moments.mean == pytest.approx(instruction_count(Small(1)))
        assert moments.variance == pytest.approx(0.0)

    def test_mean_within_extremes(self):
        for n in (4, 6, 8):
            moments = rsu_instruction_moments(n)
            extremes = extreme_instruction_counts(n)
            assert extremes.min_count <= moments.mean <= extremes.max_count

    def test_variance_nonnegative_and_grows(self):
        small = rsu_instruction_moments(4)
        large = rsu_instruction_moments(8)
        assert small.variance >= 0.0
        assert large.variance > small.variance

    def test_coefficient_of_variation_reasonable(self):
        moments = rsu_instruction_moments(8)
        assert 0.0 < moments.coefficient_of_variation < 1.0
