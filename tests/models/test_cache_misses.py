"""Tests for the analytic cache-miss model."""

import pytest

from repro.models.cache_misses import CacheMissModel, cache_miss_count
from repro.machine.configs import default_machine_config, tiny_machine_config
from repro.wht.canonical import iterative_plan, left_recursive_plan, right_recursive_plan
from repro.wht.plan import Small, Split
from repro.wht.random_plans import random_plan


@pytest.fixture
def model():
    # 64 elements of capacity, 8-element lines (a scaled-down L1).
    return CacheMissModel(capacity_elements=64, line_elements=8)


class TestConstruction:
    def test_from_cache_config(self):
        config = default_machine_config()
        model = CacheMissModel.from_cache_config(config.l1)
        assert model.capacity_elements == config.l1.size_bytes // 8
        assert model.line_elements == 8

    def test_from_machine_config_levels(self):
        config = tiny_machine_config()
        l1 = CacheMissModel.from_machine_config(config, "l1")
        l2 = CacheMissModel.from_machine_config(config, "l2")
        assert l2.capacity_elements > l1.capacity_elements

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            CacheMissModel.from_machine_config(tiny_machine_config(), "l3")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheMissModel(capacity_elements=4, line_elements=8)
        with pytest.raises(ValueError):
            CacheMissModel(capacity_elements=0)


class TestFootprint:
    def test_unit_stride_footprint(self, model):
        assert model.footprint_lines(64, 1) == 8
        assert model.footprint_lines(12, 1) == 2  # ceil(12/8)

    def test_large_stride_footprint(self, model):
        assert model.footprint_lines(16, 8) == 16
        assert model.footprint_lines(16, 100) == 16

    def test_fits(self, model):
        assert model.fits(64, 1)
        assert not model.fits(128, 1)
        assert model.fits(8, 8)
        assert not model.fits(16, 16) or model.capacity_lines >= 16


class TestMisses:
    def test_in_cache_plan_has_cold_misses_only(self, model):
        # 2^5 = 32 elements fit the 64-element cache: 4 lines of cold misses.
        for plan in (iterative_plan(5), right_recursive_plan(5), left_recursive_plan(5)):
            assert model.misses(plan) == 4

    def test_out_of_cache_iterative_misses_grow_per_pass(self, model):
        plan = iterative_plan(8)  # 256 elements, 4x the cache
        misses = model.misses(plan)
        # At least one full sweep of cold misses per pass over the data.
        assert misses >= 8 * (256 // 8)

    def test_right_recursive_localises(self, model):
        # The right recursive plan recurses on contiguous halves, so once the
        # subproblem fits in cache its passes stop missing; the left recursive
        # plan recurses on strided subvectors and keeps missing.
        n = 9
        right = model.misses(right_recursive_plan(n))
        left = model.misses(left_recursive_plan(n))
        assert right < left

    def test_misses_monotone_in_cache_size(self):
        plan = random_plan(9, rng=1)
        small_cache = CacheMissModel(capacity_elements=32, line_elements=8)
        large_cache = CacheMissModel(capacity_elements=512, line_elements=8)
        assert large_cache.misses(plan) <= small_cache.misses(plan)

    def test_strided_leaf_call(self, model):
        # A leaf evaluated at a stride beyond the line length touches one line
        # per element.
        assert model.misses(Small(4), stride=8) == 16

    def test_caching_returns_same_value(self, model):
        plan = random_plan(8, rng=2)
        assert model.misses(plan) == model.misses(plan)

    def test_callable_interface(self, model):
        plan = iterative_plan(7)
        assert model(plan) == float(model.misses(plan))

    def test_convenience_wrapper(self):
        plan = iterative_plan(6)
        assert cache_miss_count(plan, capacity_elements=64, line_elements=8) == CacheMissModel(
            64, 8
        ).misses(plan)

    def test_model_correlates_with_simulated_misses(self, machine):
        # The analytic model is not exact, but across plans it must rank
        # broadly like the trace-driven simulation (positive correlation).
        from repro.analysis.pearson import pearson_correlation

        model = CacheMissModel.from_machine_config(machine.config, "l1")
        n = machine.config.l2_capacity_exponent()
        plans = [random_plan(n, rng=seed) for seed in range(25)]
        modelled = [model.misses(p) for p in plans]
        simulated = [machine.measure(p).l1_misses for p in plans]
        assert pearson_correlation(modelled, simulated) > 0.5

    def test_split_larger_than_cache_sums_children(self, model):
        plan = Split((Small(4), Small(4)))  # 256 elements >> 64-element cache
        # Children: small[4] at stride 1 called 16 times (16 calls x 2 lines)
        # and small[4] at stride 16 called 16 times (16 calls x 16 lines).
        assert model.misses(plan) == 16 * 2 + 16 * 16
