"""Tests for the analytic instruction-count model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cpu import InstructionCostModel
from repro.models.instruction_count import (
    InstructionCountModel,
    analytic_stats,
    instruction_count,
)
from repro.wht.canonical import (
    balanced_plan,
    iterative_plan,
    left_recursive_plan,
    right_recursive_plan,
)
from repro.wht.interpreter import PlanInterpreter
from repro.wht.plan import Small, Split
from repro.wht.random_plans import random_plan


class TestAnalyticStats:
    def test_leaf_counts(self):
        stats = analytic_stats(Small(4))
        assert stats.codelet_calls == {4: 1}
        assert stats.loads == 16 and stats.stores == 16
        assert stats.arithmetic_ops == 64
        assert stats.split_invocations == 0

    @pytest.mark.parametrize(
        "factory", [iterative_plan, right_recursive_plan, left_recursive_plan, balanced_plan]
    )
    @pytest.mark.parametrize("n", [1, 3, 5, 8, 10])
    def test_matches_interpreter_for_canonical_plans(self, factory, n):
        plan = factory(n)
        measured, _ = PlanInterpreter().profile(plan)
        assert analytic_stats(plan).as_dict() == measured.as_dict()

    def test_matches_interpreter_for_random_plans(self):
        interpreter = PlanInterpreter()
        for seed in range(20):
            plan = random_plan(9, rng=seed)
            measured, _ = interpreter.profile(plan)
            assert analytic_stats(plan).as_dict() == measured.as_dict()

    @given(seed=st.integers(0, 10**6), n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_property_analytic_equals_measured(self, seed, n):
        plan = random_plan(n, rng=seed)
        measured, _ = PlanInterpreter().profile(plan)
        assert analytic_stats(plan).as_dict() == measured.as_dict()

    def test_returns_fresh_objects(self):
        plan = Split((Small(1), Small(2)))
        first = analytic_stats(plan)
        first.additions += 1000
        assert analytic_stats(plan).additions != first.additions

    def test_much_cheaper_than_interpretation_for_large_plans(self):
        # The analytic recursion must not scale with the loop trip counts, so
        # a size-2^20 plan is still instantaneous.
        plan = right_recursive_plan(20, leaf=8)
        stats = analytic_stats(plan)
        assert stats.arithmetic_ops == 20 * (1 << 20)


class TestInstructionCount:
    def test_count_positive_and_deterministic(self):
        plan = random_plan(8, rng=3)
        assert instruction_count(plan) == instruction_count(plan) > 0

    def test_custom_cost_model(self):
        plan = right_recursive_plan(6)
        heavy = InstructionCostModel(split_invocation_cost=1000)
        assert instruction_count(plan, heavy) > instruction_count(plan)

    def test_matches_machine_instruction_count(self, machine):
        # The machine uses the same cost model, so analytic == measured.
        model = InstructionCountModel(machine.config.instruction_model)
        for seed in range(5):
            plan = random_plan(7, rng=seed)
            assert model.count(plan) == machine.measure(plan).instructions

    def test_canonical_ordering(self):
        for n in (6, 9, 12):
            model = InstructionCountModel()
            assert (
                model.count(iterative_plan(n))
                < model.count(right_recursive_plan(n))
                < model.count(left_recursive_plan(n))
            )

    def test_larger_codelets_reduce_overhead(self):
        # The same transform with bigger unrolled base cases executes fewer
        # instructions (the reason the DP-best plans use large codelets).
        model = InstructionCountModel()
        assert model.count(iterative_plan(12, radix=4)) < model.count(iterative_plan(12))

    def test_callable_interface(self):
        model = InstructionCountModel()
        plan = iterative_plan(5)
        assert model(plan) == float(model.count(plan))

    def test_breakdown_consistency(self):
        model = InstructionCountModel()
        plan = random_plan(7, rng=11)
        assert model.breakdown(plan).total == model.count(plan)

    def test_scaling_with_size(self):
        # Instruction counts grow slightly faster than linearly in N
        # (N log N arithmetic), so doubling the size should more than double
        # the count.
        model = InstructionCountModel()
        assert model.count(iterative_plan(10)) > 2 * model.count(iterative_plan(9))
