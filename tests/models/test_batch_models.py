"""Batch-vs-scalar parity for the vectorised analytic models.

The batched engine's contract is *bit-identical* model values: the vectorised
paths must agree exactly with the scalar recursions on every plan.  This file
checks that exhaustively over the full enumerated algorithm space for n <= 8
and property-tests random plans, strides and cache geometries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.configs import opteron_like_config, tiny_machine_config
from repro.machine.cpu import InstructionCostModel
from repro.models.cache_misses import CacheMissModel
from repro.models.instruction_count import InstructionCountModel
from repro.wht.encoding import encode_plans
from repro.wht.enumeration import enumerate_plans
from repro.wht.random_plans import random_plan

plan_strategy = st.builds(
    random_plan,
    n=st.integers(min_value=1, max_value=12),
    rng=st.integers(0, 10**6),
)

MISS_MODELS = [
    CacheMissModel(capacity_elements=2048, line_elements=8, associativity=1),
    CacheMissModel(capacity_elements=64, line_elements=8, associativity=2),
    CacheMissModel(capacity_elements=100, line_elements=4, associativity=2),
    CacheMissModel.from_machine_config(opteron_like_config(), level="l1"),
    CacheMissModel.from_machine_config(tiny_machine_config(), level="l1"),
]


class TestExhaustiveParity:
    """Every enumerated plan for n <= 8, both models, one shared encoding."""

    @pytest.mark.parametrize("n", range(1, 9))
    def test_instruction_count_batch_matches_scalar(self, n):
        plans = list(enumerate_plans(n))
        encoded = encode_plans(plans)
        model = InstructionCountModel()
        batch = model.count_batch(encoded)
        scalar = np.array([model.count(plan) for plan in plans], dtype=np.int64)
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("n", range(1, 9))
    def test_miss_batch_matches_scalar(self, n):
        plans = list(enumerate_plans(n))
        encoded = encode_plans(plans)
        for model in MISS_MODELS:
            batch = model.misses_batch(encoded)
            scalar = np.array([model.misses(plan) for plan in plans], dtype=np.int64)
            assert np.array_equal(batch, scalar), repr(model)


class TestPropertyParity:
    @settings(max_examples=60, deadline=None)
    @given(plan=plan_strategy)
    def test_instruction_count_random_plans(self, plan):
        model = InstructionCountModel(
            InstructionCostModel(codelet_call_base=5, block_loop_cost=3)
        )
        assert int(model.count_batch([plan])[0]) == model.count(plan)

    @settings(max_examples=60, deadline=None)
    @given(
        plan=plan_strategy,
        stride=st.sampled_from([1, 2, 4, 8, 64, 3]),
        capacity=st.sampled_from([64, 256, 2048, 8192]),
        line=st.sampled_from([4, 8]),
        assoc=st.sampled_from([1, 2, 4]),
    )
    def test_misses_random_plans_and_strides(self, plan, stride, capacity, line, assoc):
        model = CacheMissModel(
            capacity_elements=capacity, line_elements=line, associativity=assoc
        )
        batch = int(model.misses_batch([plan], stride=stride)[0])
        assert batch == model.misses(plan, stride)

    @settings(max_examples=30, deadline=None)
    @given(seeds=st.lists(st.integers(0, 10**6), min_size=1, max_size=8))
    def test_mixed_size_batches(self, seeds):
        plans = [random_plan(1 + (seed % 12), rng=seed) for seed in seeds]
        encoded = encode_plans(plans)
        instruction_model = InstructionCountModel()
        miss_model = MISS_MODELS[1]
        instr = instruction_model.count_batch(encoded)
        misses = miss_model.misses_batch(encoded)
        for index, plan in enumerate(plans):
            assert int(instr[index]) == instruction_model.count(plan)
            assert int(misses[index]) == miss_model.misses(plan)


class TestBatchSurface:
    def test_empty_batches(self):
        assert InstructionCountModel().count_batch([]).shape == (0,)
        assert MISS_MODELS[0].misses_batch([]).shape == (0,)

    def test_accepts_plan_sequences_directly(self):
        plans = [random_plan(9, rng=3), random_plan(9, rng=4)]
        model = InstructionCountModel()
        direct = model.count_batch(plans)
        encoded = model.count_batch(encode_plans(plans))
        assert np.array_equal(direct, encoded)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            MISS_MODELS[0].misses_batch([random_plan(5, rng=0)], stride=0)

    def test_oversized_stride_raises_instead_of_wrapping(self):
        # int64 would silently wrap; the batch path must refuse and point at
        # the (arbitrary-precision) scalar model instead.
        plan = random_plan(10, rng=1)
        with pytest.raises(ValueError):
            MISS_MODELS[0].misses_batch([plan], stride=2**60)
        # A large-but-safe stride still matches the scalar model exactly.
        model = MISS_MODELS[0]
        stride = 2**40
        assert int(model.misses_batch([plan], stride=stride)[0]) == model.misses(
            plan, stride
        )
