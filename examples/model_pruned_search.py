"""Model-pruned search: the paper's conclusion, operationally.

Run with::

    python examples/model_pruned_search.py [n] [samples]

The paper concludes that, because the instruction-count and cache-miss models
correlate with runtime and can be evaluated from the high-level algorithm
description, a search can discard most candidate algorithms *without measuring
them*.  This script quantifies that claim on the simulated machine: it draws
one pool of random candidate algorithms and compares

* a full search that measures every candidate, with
* a pruned search that scores all candidates with the combined analytic model
  (``alpha*I + beta*M``), measures only the most promising quarter, and

reports how much measurement was saved and how much performance was given up.
"""

from __future__ import annotations

import sys

from repro.machine import default_machine
from repro.models import CombinedModel
from repro.search import CombinedModelCost, MeasuredCyclesCost, ModelPrunedSearch, RandomSearch


def main(n: int = 12, samples: int = 120) -> None:
    machine = default_machine()
    print(f"Machine: {machine.config.describe()}")
    print(f"Searching {samples} random candidates of size 2^{n}\n")

    seed = 2007

    # Full search: measure everything.
    full_cost = MeasuredCyclesCost(machine)
    full = RandomSearch(full_cost, samples=samples).search(n, rng=seed)
    print(
        f"full search      : best {full.best_cost:12.0f} cycles after "
        f"{full_cost.evaluations} measurements"
    )

    # Pruned search: same candidate pool, but only the model-selected quarter
    # is ever measured.  The model cost uses the machine's own L1 geometry.
    pruned_search = ModelPrunedSearch(
        model_cost=CombinedModelCost.for_machine(machine, combined=CombinedModel(1.0, 20.0)),
        measure_cost=MeasuredCyclesCost(machine),
        samples=samples,
        keep_fraction=0.25,
    )
    report = pruned_search.search(n, rng=seed)
    result = report.result
    print(
        f"model-pruned     : best {result.best_cost:12.0f} cycles after "
        f"{report.measured_evaluations} measurements "
        f"({report.measurement_savings * 100:.0f}% of measurements avoided)"
    )

    slowdown = result.best_cost / full.best_cost
    print(
        f"\nThe pruned search kept {(1 - report.pruned_fraction) * 100:.0f}% of the "
        f"candidates and found a plan within {100 * (slowdown - 1):.1f}% of the full "
        f"search's best."
    )
    print(f"full search best plan   : {full.best_plan}")
    print(f"pruned search best plan : {result.best_plan}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 120
    main(n, samples)
