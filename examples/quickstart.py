"""Quickstart: plans, transforms, measurements and models in five minutes.

Run with::

    python examples/quickstart.py

The script walks through the core objects of the library in the order a new
user meets them: build WHT plans (split trees), check they all compute the
same transform, measure them on the simulated machine, and evaluate the
analytic models the paper builds its search-pruning argument on.
"""

from __future__ import annotations

import numpy as np

from repro.machine import default_machine
from repro.models import CacheMissModel, InstructionCountModel
from repro.wht import (
    iterative_plan,
    left_recursive_plan,
    parse_plan,
    random_plans,
    right_recursive_plan,
)
from repro.wht.transform import apply_plan, random_input, wht_reference


def main() -> None:
    n = 10  # transform size 2^10 = 1024

    # 1. Plans are split trees; the canonical algorithms are one-liners and
    #    arbitrary algorithms can be parsed from the WHT package's syntax.
    plans = {
        "iterative": iterative_plan(n),
        "right recursive": right_recursive_plan(n),
        "left recursive": left_recursive_plan(n),
        "custom": parse_plan("split[small[4],split[small[3],small[3]]]"),
    }
    print("Plans under study:")
    for name, plan in plans.items():
        print(f"  {name:16s} {plan}")

    # 2. Every plan computes the same Walsh–Hadamard transform.
    x = random_input(n, seed=42)
    reference = wht_reference(x)
    for name, plan in plans.items():
        assert np.allclose(apply_plan(plan, x), reference), name
    print("\nAll plans agree with the reference transform.")

    # 3. The simulated machine plays the role of the paper's Opteron + PAPI.
    machine = default_machine()
    print(f"\nMachine: {machine.config.describe()}")
    print(f"{'plan':16s} {'instructions':>14s} {'L1 misses':>10s} {'cycles':>12s}")
    for name, plan in plans.items():
        m = machine.measure(plan)
        print(f"{name:16s} {m.instructions:>14d} {m.l1_misses:>10d} {m.cycles:>12.0f}")

    # 4. The analytic models give the same instruction counts without running
    #    anything, and a cache-miss estimate from the plan structure alone.
    instruction_model = InstructionCountModel(machine.config.instruction_model)
    miss_model = CacheMissModel.from_machine_config(machine.config)
    print("\nAnalytic models (no execution):")
    print(f"{'plan':16s} {'model instructions':>20s} {'model misses':>14s}")
    for name, plan in plans.items():
        print(
            f"{name:16s} {instruction_model.count(plan):>20d} "
            f"{miss_model.misses(plan):>14d}"
        )

    # 5. Random algorithms from the paper's sampling distribution.
    sample = random_plans(n, 5, rng=0)
    print("\nFive RSU-random plans and their measured cycles:")
    for plan in sample:
        print(f"  {machine.measure(plan).cycles:>12.0f}  {plan}")


if __name__ == "__main__":
    main()
