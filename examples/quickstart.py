"""Quickstart: sessions, plans, campaigns and models in five minutes.

Run with::

    python examples/quickstart.py

The script walks through the library in the order a new user meets it: open a
:func:`repro.session` (the single entry point owning machine, scale, execution
backend and campaign store), build WHT plans, check they all compute the same
transform, measure them through the session, run a measurement campaign, and
evaluate the analytic models the paper builds its search-pruning argument on.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.models import CacheMissModel, InstructionCountModel
from repro.wht import (
    iterative_plan,
    left_recursive_plan,
    parse_plan,
    right_recursive_plan,
)
from repro.wht.transform import apply_plan, random_input, wht_reference


def main() -> None:
    n = 10  # transform size 2^10 = 1024

    # 1. A session bundles the simulated machine, the experiment scale, an
    #    execution backend and a campaign store.  Presets cover the common
    #    cases; pass backend="multiprocess" to fan campaigns out across
    #    worker processes, or store="./campaigns" to persist completed
    #    campaigns to disk so later runs skip re-measurement.
    sess = repro.session(machine="default", scale="default", backend="serial")
    print(sess.describe())

    # 2. Plans are split trees; the canonical algorithms are one-liners and
    #    arbitrary algorithms can be parsed from the WHT package's syntax.
    plans = {
        "iterative": iterative_plan(n),
        "right recursive": right_recursive_plan(n),
        "left recursive": left_recursive_plan(n),
        "custom": parse_plan("split[small[4],split[small[3],small[3]]]"),
    }
    print("\nPlans under study:")
    for name, plan in plans.items():
        print(f"  {name:16s} {plan}")

    # 3. Every plan computes the same Walsh–Hadamard transform.
    x = random_input(n, seed=42)
    reference = wht_reference(x)
    for name, plan in plans.items():
        assert np.allclose(apply_plan(plan, x), reference), name
    print("\nAll plans agree with the reference transform.")

    # 4. The session measures plans on its machine (the paper's Opteron+PAPI
    #    stand-in); one table row per plan.
    table = sess.measure_plans(plans.values())
    print(f"\n{'plan':16s} {'instructions':>14s} {'L1 misses':>10s} {'cycles':>12s}")
    for name, instructions, misses, cycles in zip(
        plans, table.instructions, table.l1_misses, table.cycles
    ):
        print(f"{name:16s} {instructions:>14.0f} {misses:>10.0f} {cycles:>12.0f}")

    # 5. Campaigns are the paper's random-sampling methodology: RSU-random
    #    plans measured through the session's backend and cached in its
    #    store.  (This is what sess.run_all() builds every figure from.)
    campaign = sess.campaign(n, 5)
    print("\nFive RSU-random plans and their measured cycles:")
    for plan, cycles in zip(campaign.plans, campaign.cycles):
        print(f"  {cycles:>12.0f}  {plan}")

    # 6. The analytic models give instruction counts without running
    #    anything, and a cache-miss estimate from the plan structure alone.
    machine = sess.machine
    instruction_model = InstructionCountModel(machine.config.instruction_model)
    miss_model = CacheMissModel.from_machine_config(machine.config)
    print("\nAnalytic models (no execution):")
    print(f"{'plan':16s} {'model instructions':>20s} {'model misses':>14s}")
    for name, plan in plans.items():
        print(
            f"{name:16s} {instruction_model.count(plan):>20d} "
            f"{miss_model.misses(plan):>14d}"
        )

    # 7. The DP search the WHT package uses to find its best algorithm:
    best = sess.search(n)
    print(f"\nDP-best plan at 2^{n}: {best.best_plan} ({best.best_cost:.0f} cycles)")

    # 8. Searches are parameterised by an *objective* over named metrics.
    #    objective="cycles" is the classic search through the session's
    #    batched cost engine (one simulated run populates every hardware
    #    counter metric, and all records persist in the session's store);
    #    model metrics and weighted composites — the paper's alpha*I +
    #    beta*M — plug into the same API and reuse every cached record.
    by_cycles = sess.search(n, use_engine=True, objective="cycles")
    by_misses = sess.search(n, objective="l1_misses")
    combined = sess.search(n, objective=repro.WeightedObjective.combined(1.0, 0.05))
    model_only = sess.search(n, objective="model_instructions")  # zero measurements
    print("\nThe same search under four objectives (the paper's point: they differ):")
    for label, result in (
        ("cycles", by_cycles),
        ("l1_misses", by_misses),
        ("1.00*I + 0.05*M", combined),
        ("model instructions", model_only),
    ):
        print(f"  {label:20s} best = {result.best_plan} ({result.best_cost:.0f})")

    # 9. Batches are where the measurement substrate earns its keep: the
    #    engine fuses a candidate list's distinct plans into one cross-plan
    #    workload (one vectorised cache pass per level, analytic shortcuts
    #    for footprints that fit a cache level — see DESIGN.md §10).  Timing
    #    notes, one laptop core, Opteron-like geometry: an engine-cold DP
    #    search at n=16 runs in ~0.3 s and the paper's 1000-candidate pruned
    #    search at n=14 in ~2 s (both were several seconds per-plan; a
    #    warm-store resume is still milliseconds with zero measurements).
    import time

    from repro.wht.random_plans import RSUSampler

    engine = sess.cost_engine()
    batch = RSUSampler().sample_many(n, 200, rng=0)
    measured_before = engine.measured
    start = time.perf_counter()
    engine.records(batch, ("cycles",))
    elapsed = time.perf_counter() - start
    print(
        f"\nBatched measurement: {len(batch)} RSU plans in {elapsed:.3f} s "
        f"({engine.measured - measured_before} simulated; duplicates and "
        f"already-searched plans came from the record cache)"
    )

    # 10. Many sessions, one measurement pipeline: a campaign service owns a
    #     job queue, a worker fleet and a sharded record store, and any
    #     number of sessions connect to it (threads here; across processes
    #     with a disk-backed service store).  Overlapping work is deduped
    #     fleet-wide — the second session's whole search is served from the
    #     first one's measurements, and both match a private session's
    #     result bit for bit.
    with repro.serve(workers=2) as service:
        first = repro.Session.connect(service)
        second = repro.Session.connect(service)
        best_first = first.search(n)
        measured_after_first = service.stats().measured
        best_second = second.search(n)
        stats = service.stats()
        assert str(best_first.best_plan) == str(best_second.best_plan)
        assert stats.measured == measured_after_first  # second session: zero
        print(
            f"\nCampaign service: two sessions searched n={n}; "
            f"{stats.measured} real measurements total, "
            f"{stats.store_hits + stats.dedup_savings} duplicate requests "
            f"served without touching the machine"
        )

    # 11. Chaos run: the service survives injected failures without changing
    #     a single answer.  A FaultPlan schedules faults deterministically
    #     from a seed; here ~25% of backend batches fail and the plan that
    #     won step 8's cycles search is poisoned outright (its batch always
    #     fails, ending in the dead-letter quarantine).  A fallback-armed
    #     session degrades gracefully — batches the service cannot answer
    #     run through a private engine, bit-identically — so the search
    #     still completes and still agrees with the fault-free result.
    fault_plan = repro.FaultPlan(
        seed=0,
        backend=repro.FaultSpec(error_rate=0.2, crash_rate=0.05),
        poison_plans=[by_cycles.best_plan],
    )
    chaotic_backend = repro.FaultyBackend(repro.BatchedBackend(), fault_plan)
    with repro.CampaignService(
        backend=chaotic_backend, workers=2, max_attempts=3, backoff_base=0.005
    ) as service:
        survivor = repro.Session.connect(service, fallback=True)
        best_chaos = survivor.search(n, use_engine=True)
        assert str(best_chaos.best_plan) == str(by_cycles.best_plan)
        assert best_chaos.best_cost == by_cycles.best_cost
        stats = service.stats()
        print(
            f"\nChaos run: {fault_plan.injected()} injected failures, "
            f"{stats.retries} retries, {stats.quarantined} poison batch(es) "
            f"quarantined, {survivor.cost_engine().fallbacks} batch(es) "
            f"served by fallback — result bit-identical to the clean search "
            f"({service.health().describe()})"
        )

    # 12. Multi-host: the same service behind a socket.  serve_tcp fronts a
    #     CampaignService with a length-prefixed JSON-frame protocol, and
    #     Session.connect("tcp://host:port") gives a remote session the full
    #     engine surface — request-id idempotency, heartbeats and reconnect
    #     with deterministic backoff guarantee no duplicate measurements even
    #     across network failures (DESIGN.md §13).  The remote search matches
    #     the in-process one bit for bit.
    with repro.CampaignService(workers=2) as service:
        local = repro.Session.connect(service)
        best_local = local.search(n, use_engine=True)
        with repro.serve_tcp(service, host="127.0.0.1", port=0) as server:
            remote = repro.Session.connect(server.url)
            best_remote = remote.search(n, use_engine=True)
            assert str(best_remote.best_plan) == str(best_local.best_plan)
            assert best_remote.best_cost == best_local.best_cost
            wire_stats = server.stats()
            remote.close()
            print(
                f"\nRemote session over {server.url}: "
                f"{wire_stats['requests']} framed requests, result "
                f"bit-identical to the in-process session"
            )

    # 13. The whole experiment catalogue as data: a suite spec declares
    #     machines x scale x seeds x experiments, and repro.suite(spec).run()
    #     executes it baseline-first (shared campaigns measured once per
    #     context), streams tables to sinks, and records a manifest so an
    #     interrupted run resumes where it stopped.  Re-running against the
    #     same store measures nothing — and extra objectives in a sweep are
    #     evaluated from cached records at zero measurement cost
    #     (DESIGN.md §14).  The committed paper spec lives at
    #     benchmarks/suites/paper.json; here a CI-sized inline spec.
    result = repro.suite(
        {
            "name": "quickstart-suite",
            "machines": ["tiny"],
            "scale": "ci",
            "experiments": [
                "figure5",
                {
                    "id": "sweep",
                    "kind": "objective_sweep",
                    "options": {"objectives": ["cycles", "instructions"], "sizes": [6]},
                },
            ],
        }
    ).run()
    assert result.ok
    sweep = result.get("sweep").figure
    rho, tau = sweep.disagreement(6, "cycles", "instructions")
    print(
        f"\nSuite run: {len(result.completed)} experiments, "
        f"{result.total_measured} measurements; cycles-vs-instructions "
        f"rank agreement at n=6: rho={rho:.3f}, tau={tau:.3f}"
    )

    # 14. The fleet: many servers, one record space.  A *list* of URLs turns
    #     Session.connect into a fleet tenant — every batch is striped over a
    #     rendezvous-hash ring of servers sharing one sharded record store,
    #     membership rides the existing heartbeats, and when a member dies
    #     mid-run the client rehashes its keys to the survivors under the
    #     original request ids.  The search completes, bit-identical to the
    #     single-session result, with zero duplicate measurements
    #     (DESIGN.md §15).
    import tempfile

    with tempfile.TemporaryDirectory() as shared_dir:
        services = [
            repro.CampaignService(
                store=repro.ShardedRecordStore(shared_dir, auto_compact=None),
                workers=2,
                shared_store=True,
            )
            for _ in range(3)
        ]
        servers = [
            repro.serve_tcp(service, host="127.0.0.1", port=0)
            for service in services
        ]
        urls = [server.url for server in servers]
        for server in servers:
            server.join_fleet(urls, self_url=server.url)
        fleet_sess = repro.Session.connect(urls)
        engine = fleet_sess.cost_engine()
        victim = 1
        servers[victim].close()  # one member dies out from under the client
        services[victim].shutdown()
        best_fleet = fleet_sess.search(n, use_engine=True)
        assert str(best_fleet.best_plan) == str(by_cycles.best_plan)
        assert best_fleet.best_cost == by_cycles.best_cost
        assert engine.failovers >= 1
        print(
            f"\nFleet run over {len(urls)} servers with one killed mid-run: "
            f"{engine.failovers} failover(s), zero duplicate measurements, "
            f"search bit-identical to the single-session result ({engine!r})"
        )
        fleet_sess.close()
        for index, server in enumerate(servers):
            if index != victim:
                server.close()
                services[index].shutdown()


if __name__ == "__main__":
    main()
