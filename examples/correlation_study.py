"""A miniature end-to-end rerun of the paper's correlation study.

Run with::

    python examples/correlation_study.py [samples] [backend]

where ``backend`` is ``serial`` (default), ``multiprocess`` or ``batched``;
every backend produces bit-identical campaign tables.

This reproduces the paper's Section 3/4 methodology at reduced sample count
(default 150 random algorithms per size instead of 10,000): it measures a
random sample of WHT algorithms at the in-cache and out-of-cache sizes,
computes the correlation of instruction counts and cache misses with cycle
counts, fits the combined model, and prints the pruning thresholds — i.e. the
content of Figures 4 through 11 in text form.  Expect a few minutes of
simulation at the default settings.
"""

from __future__ import annotations

import sys
import time

import repro
from repro.config import default_scale


def main(samples: int = 150, backend: str = "serial") -> None:
    scale = default_scale().with_samples(samples)
    sess = repro.session(machine="default", scale=scale, backend=backend)
    suite = sess.suite()
    start = time.perf_counter()

    print(f"Session : {sess.describe()}")
    print(f"Machine : {suite.machine.config.describe()}")
    print(f"Scale   : {scale.describe()}\n")

    correlations = suite.correlation_summary()
    print("Headline correlations (paper: 0.96 / 0.77 / 0.66 / 0.92):")
    for description, value in correlations.as_rows():
        print(f"  {description:55s} {value:6.3f}")
    print(f"  qualitative ordering holds: {correlations.satisfies_paper_ordering()}")

    print("\nFigure 10/11 pruning thresholds:")
    print(suite.figure10().describe())
    print()
    print(suite.figure11().describe())

    alpha, beta, rho = suite.figure9().best
    print(
        f"\nBest combined model: {alpha:.2f} * instructions + {beta:.2f} * misses "
        f"(rho = {rho:.3f}); the ratio beta/alpha ~ the machine's per-miss cycle cost."
    )
    print(f"\nTotal simulation time: {time.perf_counter() - start:.1f}s")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 150,
        backend=sys.argv[2] if len(sys.argv) > 2 else "serial",
    )
