"""Find the fastest WHT algorithm for a machine (the WHT package's workload).

Run with::

    python examples/find_best_plan.py [n]

This is the generate-and-test scenario the paper's introduction motivates: an
adaptive library wants the fastest WHT implementation for *this* machine.  The
script runs the WHT package's dynamic-programming search on the simulated
machine, compares the result against the three canonical algorithms at every
size up to ``n`` (default 13), and prints the speedups — a textual version of
the paper's Figure 1 with the DP-best plan as the baseline.
"""

from __future__ import annotations

import sys

from repro.machine import default_machine
from repro.search import dp_best_plan
from repro.util.tables import format_table
from repro.wht import canonical_plans


def main(max_n: int = 13) -> None:
    machine = default_machine()
    print(f"Machine: {machine.config.describe()}\n")

    rows = []
    best_plans = {}
    for n in range(4, max_n + 1):
        result = dp_best_plan(machine, n, max_children=2)
        best_plans[n] = result.best_plan
        canonicals = {
            name: machine.measure(plan).cycles for name, plan in canonical_plans(n).items()
        }
        rows.append(
            [
                n,
                f"{result.best_cost:.3g}",
                f"{canonicals['iterative'] / result.best_cost:.2f}x",
                f"{canonicals['right'] / result.best_cost:.2f}x",
                f"{canonicals['left'] / result.best_cost:.2f}x",
                str(result.best_plan)[:48],
            ]
        )

    print(
        format_table(
            ["n", "best cycles", "iterative/best", "right/best", "left/best", "best plan"],
            rows,
            title="DP search results (ratios > 1 mean the canonical algorithm is slower)",
        )
    )

    boundary = machine.config.l2_capacity_exponent()
    print(
        f"\nNote how the iterative algorithm stays close to the best until the "
        f"L2 boundary (2^{boundary} elements) and falls behind beyond it, while the "
        f"best plans keep using large unrolled codelets — the paper's Figure 1 story."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
