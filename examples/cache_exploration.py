"""Explore how the cache hierarchy shapes the best WHT algorithm.

Run with::

    python examples/cache_exploration.py

The correlation the paper measures "depends on the architecture on which the
algorithms are executed" (its closing remark).  This script makes that
dependence concrete: it defines three machines with different L1 sizes and
associativities, runs the DP search on each, and shows how the winning plan
and the iterative/recursive crossover move with the hierarchy.
"""

from __future__ import annotations

from repro.machine import CacheConfig, MachineConfig, SimulatedMachine
from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.search import dp_best_plan
from repro.util.tables import format_table
from repro.wht import canonical_plans


def make_machine(name: str, l1_kb: int, l1_assoc: int, l2_kb: int) -> SimulatedMachine:
    """A machine with the given L1/L2 geometry and the default cost models."""
    config = MachineConfig(
        name=name,
        l1=CacheConfig(size_bytes=l1_kb * 1024, line_size=64, associativity=l1_assoc, name="L1d"),
        l2=CacheConfig(size_bytes=l2_kb * 1024, line_size=64, associativity=16, name="L2"),
        instruction_model=InstructionCostModel(),
        cycle_model=CycleModel(noise_sigma=0.0),
    )
    return SimulatedMachine(config)


def main() -> None:
    machines = [
        make_machine("small-L1, direct-mapped", l1_kb=4, l1_assoc=1, l2_kb=64),
        make_machine("medium-L1, 2-way", l1_kb=16, l1_assoc=2, l2_kb=64),
        make_machine("large-L1, 4-way", l1_kb=64, l1_assoc=4, l2_kb=256),
    ]
    n = 13

    rows = []
    for machine in machines:
        best = dp_best_plan(machine, n, max_children=2)
        canonicals = {
            name: machine.measure(plan).cycles for name, plan in canonical_plans(n).items()
        }
        fastest_canonical = min(canonicals, key=canonicals.get)
        rows.append(
            [
                machine.config.name,
                machine.config.l1_capacity_exponent(),
                f"{best.best_cost:.3g}",
                fastest_canonical,
                f"{canonicals[fastest_canonical] / best.best_cost:.2f}x",
                str(best.best_plan)[:44],
            ]
        )

    print(
        format_table(
            [
                "machine",
                "L1 holds 2^k doubles",
                "best cycles",
                "fastest canonical",
                "canonical/best",
                "best plan",
            ],
            rows,
            title=f"How the cache hierarchy changes the best WHT plan (size 2^{n})",
        )
    )
    print(
        "\nSmaller or less associative L1 caches push the best plans toward deeper "
        "recursive structure (better locality), while large caches reward the "
        "low-overhead iterative structure — the architecture dependence the paper "
        "points to in its conclusion."
    )


if __name__ == "__main__":
    main()
