"""Exhaustive search: evaluate every plan of a (small) size."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.search.costs import bind_cost, evaluate_cost_batch
from repro.search.result import SearchResult
from repro.util.validation import check_positive_int
from repro.wht.enumeration import count_plans, enumerate_plans
from repro.wht.plan import MAX_UNROLLED, Plan

__all__ = ["ExhaustiveSearch"]


@dataclass
class ExhaustiveSearch:
    """Evaluate every plan of exponent ``n``; exact but exponential.

    ``limit`` guards against accidentally launching an enumeration of an
    infeasibly large space (the space grows roughly like ``7^n``); exceeding it
    raises instead of silently truncating, so an "exhaustive" result can never
    be partial.

    Candidates are evaluated in rounds of ``batch_size`` plans straight off
    the enumeration stream (which is duplicate-free by construction), so
    batch-capable costs amortise work per round while only one round of plans
    is in flight beyond the recorded history.

    ``cost`` may be a plain callable, or an
    :class:`~repro.runtime.objectives.Objective` / metric name evaluated
    through ``engine`` (a :class:`~repro.runtime.cost_engine.CostEngine`).
    """

    cost: "Callable[[Plan], float] | object"
    max_leaf: int = MAX_UNROLLED
    limit: int = 200_000
    batch_size: int = 2048
    engine: object | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.limit, "limit")
        check_positive_int(self.batch_size, "batch_size")
        self.cost = bind_cost(self.cost, self.engine)

    def space_size(self, n: int) -> int:
        """Number of plans that would be evaluated for exponent ``n``."""
        return count_plans(n, max_leaf=self.max_leaf)

    def search(self, n: int) -> SearchResult:
        """Run the exhaustive search for exponent ``n``."""
        check_positive_int(n, "n")
        size = self.space_size(n)
        if size > self.limit:
            raise ValueError(
                f"exhaustive search of exponent {n} would evaluate {size} plans, "
                f"exceeding the limit of {self.limit}; use RandomSearch, "
                "ModelPrunedSearch or the DP search instead"
            )
        history: list[tuple[Plan, float]] = []
        best_plan: Plan | None = None
        best_cost = float("inf")
        stream = enumerate_plans(n, max_leaf=self.max_leaf)
        while True:
            round_plans: list[Plan] = []
            for plan in stream:
                round_plans.append(plan)
                if len(round_plans) >= self.batch_size:
                    break
            if not round_plans:
                break
            for plan, value in zip(
                round_plans, evaluate_cost_batch(self.cost, round_plans)
            ):
                history.append((plan, value))
                if value < best_cost:
                    best_cost = value
                    best_plan = plan
        assert best_plan is not None
        return SearchResult(
            n=n,
            best_plan=best_plan,
            best_cost=best_cost,
            evaluated=len(history),
            considered=len(history),
            strategy="exhaustive",
            history=history,
        )
