"""Common result container for search strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wht.plan import Plan

__all__ = ["SearchResult"]


@dataclass
class SearchResult:
    """Outcome of one search run."""

    #: Size exponent searched.
    n: int
    #: Best plan found.
    best_plan: Plan
    #: Cost of the best plan (in whatever units the cost function uses).
    best_cost: float
    #: Number of candidate plans whose cost was evaluated.
    evaluated: int
    #: Number of candidate plans considered (>= evaluated for pruned searches).
    considered: int
    #: Name of the strategy that produced the result.
    strategy: str
    #: Every evaluated (plan, cost) pair, in evaluation order.
    history: list[tuple[Plan, float]] = field(default_factory=list)

    @property
    def evaluation_fraction(self) -> float:
        """Evaluated candidates as a fraction of considered candidates."""
        return self.evaluated / self.considered if self.considered else 0.0

    def top(self, count: int = 5) -> list[tuple[Plan, float]]:
        """The ``count`` cheapest evaluated candidates."""
        return sorted(self.history, key=lambda item: item[1])[:count]

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.strategy}: n={self.n}, best cost {self.best_cost:.4g} "
            f"({self.evaluated}/{self.considered} candidates measured), "
            f"best plan {self.best_plan}"
        )
