"""Plain random search: sample plans, evaluate each, keep the best."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.search.costs import bind_cost, evaluate_cost_batch
from repro.search.result import SearchResult
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.plan import MAX_UNROLLED, Plan
from repro.wht.random_plans import RSUSampler

__all__ = ["RandomSearch"]


@dataclass
class RandomSearch:
    """Evaluate ``samples`` RSU-random plans and return the cheapest.

    Duplicate plans (the RSU distribution frequently re-draws common shapes at
    small sizes) are evaluated only once; the duplicate draws still count
    toward ``considered`` so search budgets are comparable across strategies.

    ``cost`` may be a plain callable, or an
    :class:`~repro.runtime.objectives.Objective` / metric name evaluated
    through ``engine`` (a :class:`~repro.runtime.cost_engine.CostEngine`).
    """

    cost: "Callable[[Plan], float] | object"
    samples: int = 100
    max_leaf: int = MAX_UNROLLED
    max_children: int | None = None
    dedupe: bool = True
    engine: object | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.samples, "samples")
        self.cost = bind_cost(self.cost, self.engine)

    def search(self, n: int, rng: RandomState = None) -> SearchResult:
        """Run the search for exponent ``n``.

        Sampling and evaluation are two phases: the full sample is drawn and
        deduplicated by plan key first, then the surviving candidates are
        evaluated as one batch (vectorised models, backend fan-out, cost
        caches).  The draw sequence, the evaluation order and — for costs
        without a batch method — every individual cost call are identical to
        the historical interleaved loop.
        """
        check_positive_int(n, "n")
        generator = as_generator(rng)
        sampler = RSUSampler(max_leaf=self.max_leaf, max_children=self.max_children)
        seen: set[str] = set()
        plans: list[Plan] = []
        for _ in range(self.samples):
            plan = sampler.sample(n, generator)
            if self.dedupe:
                key = plan_key(plan)
                if key in seen:
                    continue
                seen.add(key)
            plans.append(plan)
        values = evaluate_cost_batch(self.cost, plans)
        history = list(zip(plans, values))
        best_plan: Plan | None = None
        best_cost = float("inf")
        for plan, value in history:
            if value < best_cost:
                best_cost = value
                best_plan = plan
        assert best_plan is not None  # samples >= 1 guarantees at least one evaluation
        return SearchResult(
            n=n,
            best_plan=best_plan,
            best_cost=best_cost,
            evaluated=len(history),
            considered=self.samples,
            strategy="random",
            history=history,
        )
