"""Search strategies over the WHT algorithm space.

The WHT package's original contribution is *generate and test*: search a huge
algorithm space for the implementation that is fastest on a given machine.
The paper's contribution is showing that analytic models can prune that
search.  This subpackage provides both sides:

* :mod:`repro.search.costs` — cost functions (simulated cycles, analytic
  instruction count, combined model, wall clock) usable by every strategy;
* :mod:`repro.search.dp` — the dynamic-programming search (the package's
  default strategy, used to define the "best" baseline of Figures 1–3);
* :mod:`repro.search.random_search` — plain random sampling;
* :mod:`repro.search.exhaustive` — exhaustive enumeration for small sizes;
* :mod:`repro.search.pruned` — the paper's model-pruned search: evaluate the
  cheap model on every candidate, keep only the candidates below a threshold
  (or the best fraction), and measure only those.
"""

from repro.search.costs import (
    CombinedModelCost,
    InstructionModelCost,
    MeasuredCyclesCost,
    WallClockCost,
    bind_cost,
    evaluate_cost_batch,
)
from repro.search.result import SearchResult
from repro.search.dp import dp_best_plan, dp_search
from repro.search.random_search import RandomSearch
from repro.search.exhaustive import ExhaustiveSearch
from repro.search.pruned import ModelPrunedSearch, PrunedSearchReport

__all__ = [
    "MeasuredCyclesCost",
    "InstructionModelCost",
    "CombinedModelCost",
    "WallClockCost",
    "evaluate_cost_batch",
    "bind_cost",
    "SearchResult",
    "dp_search",
    "dp_best_plan",
    "RandomSearch",
    "ExhaustiveSearch",
    "ModelPrunedSearch",
    "PrunedSearchReport",
]
