"""Cost functions shared by the search strategies.

Every cost is a callable mapping a plan to a float (lower is better), so the
strategies are agnostic to whether they optimise measured cycles, an analytic
model, or wall-clock time.  Costs additionally implement two optional pieces
of protocol that the strategies exploit when present:

* ``batch(plans) -> sequence of floats`` — evaluate a whole candidate list at
  once.  The analytic model costs implement it with the vectorised batch
  models (one shared :class:`~repro.wht.encoding.EncodedPlans` per batch);
  :class:`~repro.runtime.cost_engine.CostEngine` implements it with
  backend-parallel measurement plus its persistent cost cache.
  :func:`evaluate_cost_batch` is the helper the strategies call: it falls
  back to a plain evaluation loop, so arbitrary callables keep working.
* the ``evaluations`` / ``measured`` counter pair — ``evaluations`` counts
  cost *requests* (one per plan per call, batched or not) while ``measured``
  counts the evaluations that performed real work (prepares/measures or
  model computations).  For the plain costs below the two coincide; for a
  caching cost such as the engine they diverge, which is what lets pruning
  reports stay honest about how much measurement a strategy actually bought.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.machine.machine import SimulatedMachine
from repro.models.cache_misses import CacheMissModel
from repro.models.combined import CombinedModel
from repro.models.instruction_count import InstructionCountModel
from repro.util.batching import evaluate_cost_batch
from repro.wht.encoding import MAX_ENCODABLE_EXPONENT, encode_plans
from repro.wht.plan import Plan


def _encodable(plans: Sequence[Plan]) -> bool:
    """Whether the batch encoder's exact-int64 range covers every plan.

    The scalar models compute in arbitrary-precision Python ints and work at
    any size; the model costs fall back to them for out-of-range plans so
    the strategies' unconditional ``batch`` dispatch never narrows the
    supported plan space.
    """
    return all(plan.n <= MAX_ENCODABLE_EXPONENT for plan in plans)

__all__ = [
    "MeasuredCyclesCost",
    "InstructionModelCost",
    "CombinedModelCost",
    "WallClockCost",
    "evaluate_cost_batch",
    "bind_cost",
]


def bind_cost(cost, engine=None):
    """Resolve a cost spec into the callable the strategies evaluate.

    The metric-first way to parameterise a search is an
    :class:`~repro.runtime.objectives.Objective` (or a bare metric name such
    as ``"cycles"`` or ``"model_instructions"``) plus the
    :class:`~repro.runtime.cost_engine.CostEngine` that supplies its metric
    values; this helper binds the two.  Plain callables — the historical
    ad-hoc cost functions, including everything in this module — pass
    through unchanged, so existing code keeps working.
    """
    from repro.runtime.objectives import Objective, resolve_objective

    if isinstance(cost, (str, Objective)):
        objective = resolve_objective(cost)  # validates metric names early
        if engine is None:
            raise ValueError(
                f"objective cost {objective.describe()!r} needs a CostEngine to "
                "supply its metric values; pass engine=... "
                "(e.g. session.cost_engine())"
            )
        return engine.cost(objective)
    if callable(cost):
        return cost  # already bound; a provided engine is simply not needed
    raise TypeError(
        f"cannot interpret {cost!r} as a search cost; pass a callable, an "
        "Objective, or a metric name with engine=..."
    )


@dataclass
class MeasuredCyclesCost:
    """Simulated cycle count of one run on a given machine.

    Noise draws come from the machine's shared generator in evaluation
    order (the historical behaviour); every evaluation prepares and measures,
    so ``measured`` always equals ``evaluations``.  Use
    :class:`~repro.runtime.cost_engine.CostEngine` for cached, batched,
    order-independent measured costs.
    """

    machine: SimulatedMachine
    evaluations: int = field(default=0, init=False)
    measured: int = field(default=0, init=False)

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        self.measured += 1
        return float(self.machine.measure(plan).cycles)

    def batch(self, plans: Sequence[Plan]) -> list[float]:
        """Measure every plan, in order (identical to repeated calls)."""
        return [self(plan) for plan in plans]


@dataclass
class InstructionModelCost:
    """Analytic instruction count (no execution, no simulation)."""

    model: InstructionCountModel = field(default_factory=InstructionCountModel)
    evaluations: int = field(default=0, init=False)
    measured: int = field(default=0, init=False)

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        self.measured += 1
        return float(self.model.count(plan))

    def batch(self, plans: Sequence[Plan]) -> "np.ndarray | list[float]":
        """Vectorised scoring of the whole candidate list."""
        if not _encodable(plans):
            return [self(plan) for plan in plans]
        self.evaluations += len(plans)
        self.measured += len(plans)
        return self.model.count_batch(plans).astype(float)


@dataclass
class CombinedModelCost:
    """The paper's combined model ``alpha * I + beta * M`` from analytic inputs."""

    instruction_model: InstructionCountModel
    miss_model: CacheMissModel
    combined: CombinedModel = field(default_factory=CombinedModel)
    evaluations: int = field(default=0, init=False)
    measured: int = field(default=0, init=False)

    @classmethod
    def for_machine(
        cls,
        machine: SimulatedMachine,
        combined: CombinedModel | None = None,
    ) -> "CombinedModelCost":
        """Build the cost with models matching a machine's L1 geometry."""
        return cls(
            instruction_model=InstructionCountModel(machine.config.instruction_model),
            miss_model=CacheMissModel.from_machine_config(machine.config, level="l1"),
            combined=combined if combined is not None else CombinedModel(),
        )

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        self.measured += 1
        return self.combined.value(
            self.instruction_model.count(plan),
            self.miss_model.misses(plan),
        )

    def batch(self, plans: Sequence[Plan]) -> "np.ndarray | list[float]":
        """Vectorised scoring: one shared encoding feeds both batch models."""
        if not _encodable(plans):
            return [self(plan) for plan in plans]
        self.evaluations += len(plans)
        self.measured += len(plans)
        encoded = encode_plans(plans)
        return self.combined.values(
            self.instruction_model.count_batch(encoded).astype(float),
            self.miss_model.misses_batch(encoded).astype(float),
        )


@dataclass
class WallClockCost:
    """Median wall-clock seconds of actually executing the plan in Python.

    Provided for completeness; dominated by interpreter overhead (see
    DESIGN.md) and therefore not used by the default experiments.
    """

    machine: SimulatedMachine
    repetitions: int = 1
    evaluations: int = field(default=0, init=False)
    measured: int = field(default=0, init=False)

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        self.measured += 1
        return float(self.machine.measure_wall_time(plan, repetitions=self.repetitions))
