"""Cost functions shared by the search strategies.

Every cost is a callable mapping a plan to a float (lower is better), so the
strategies are agnostic to whether they optimise measured cycles, an analytic
model, or wall-clock time.  Each cost also counts its invocations, which the
experiments use to report how much measurement a strategy needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.machine import SimulatedMachine
from repro.models.cache_misses import CacheMissModel
from repro.models.combined import CombinedModel
from repro.models.instruction_count import InstructionCountModel
from repro.wht.plan import Plan

__all__ = [
    "MeasuredCyclesCost",
    "InstructionModelCost",
    "CombinedModelCost",
    "WallClockCost",
]


@dataclass
class MeasuredCyclesCost:
    """Simulated cycle count of one run on a given machine."""

    machine: SimulatedMachine
    evaluations: int = field(default=0, init=False)

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        return float(self.machine.measure(plan).cycles)


@dataclass
class InstructionModelCost:
    """Analytic instruction count (no execution, no simulation)."""

    model: InstructionCountModel = field(default_factory=InstructionCountModel)
    evaluations: int = field(default=0, init=False)

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        return float(self.model.count(plan))


@dataclass
class CombinedModelCost:
    """The paper's combined model ``alpha * I + beta * M`` from analytic inputs."""

    instruction_model: InstructionCountModel
    miss_model: CacheMissModel
    combined: CombinedModel = field(default_factory=CombinedModel)
    evaluations: int = field(default=0, init=False)

    @classmethod
    def for_machine(
        cls,
        machine: SimulatedMachine,
        combined: CombinedModel | None = None,
    ) -> "CombinedModelCost":
        """Build the cost with models matching a machine's L1 geometry."""
        return cls(
            instruction_model=InstructionCountModel(machine.config.instruction_model),
            miss_model=CacheMissModel.from_machine_config(machine.config, level="l1"),
            combined=combined if combined is not None else CombinedModel(),
        )

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        return self.combined.value(
            self.instruction_model.count(plan),
            self.miss_model.misses(plan),
        )


@dataclass
class WallClockCost:
    """Median wall-clock seconds of actually executing the plan in Python.

    Provided for completeness; dominated by interpreter overhead (see
    DESIGN.md) and therefore not used by the default experiments.
    """

    machine: SimulatedMachine
    repetitions: int = 1
    evaluations: int = field(default=0, init=False)

    def __call__(self, plan: Plan) -> float:
        self.evaluations += 1
        return float(self.machine.measure_wall_time(plan, repetitions=self.repetitions))
