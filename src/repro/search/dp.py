"""Dynamic-programming search conveniences.

The underlying machinery lives in :mod:`repro.wht.dp_search`; the helpers here
wire it to a simulated machine (or any other cost) and adapt the outcome to
the common :class:`repro.search.result.SearchResult` shape.  The DP-best plan
is the baseline the paper's Figures 1–3 normalise against.

Both helpers speak the metric-first cost API: ``cost`` may be a plain
callable (the historical ad-hoc cost functions), or an
:class:`~repro.runtime.objectives.Objective` / metric name bound through a
:class:`~repro.runtime.cost_engine.CostEngine` — pass the engine via
``engine=`` (or let :func:`dp_best_plan` build a private one from its
machine).
"""

from __future__ import annotations

from typing import Callable

from repro.machine.machine import SimulatedMachine
from repro.search.costs import MeasuredCyclesCost, bind_cost
from repro.search.result import SearchResult
from repro.util.validation import check_positive_int
from repro.wht.dp_search import DPSearch, DPSearchResult
from repro.wht.plan import MAX_UNROLLED, Plan

__all__ = ["dp_search", "dp_best_plan"]


def dp_search(
    n: int,
    cost: "Callable[[Plan], float] | object",
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = 2,
    include_iterative: bool = True,
    record_candidates: bool = True,
    engine=None,
) -> DPSearchResult:
    """Run the package's DP search up to exponent ``n`` with an arbitrary cost.

    ``cost`` may be a callable, or an Objective/metric name together with
    ``engine=`` (a :class:`~repro.runtime.cost_engine.CostEngine`).
    """
    check_positive_int(n, "n")
    searcher = DPSearch(
        bind_cost(cost, engine),
        max_leaf=max_leaf,
        max_children=max_children,
        include_iterative=include_iterative,
        record_candidates=record_candidates,
    )
    return searcher.search(n)


def dp_best_plan(
    machine: SimulatedMachine,
    n: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = 2,
    include_iterative: bool = True,
    cost: "Callable[[Plan], float] | object | None" = None,
    record_candidates: bool = True,
    objective: "str | object | None" = None,
    engine=None,
) -> SearchResult:
    """The DP-best plan for ``n`` under simulated cycle counts.

    This is the reproduction's analogue of "the best algorithm determined by
    the dynamic programming search performed by the WHT package".  ``cost``
    overrides the default per-call :class:`MeasuredCyclesCost` — pass a
    :class:`~repro.runtime.cost_engine.CostEngine` for batched, cached
    evaluation, or select *what* to optimise with ``objective=`` (a metric
    name or :class:`~repro.runtime.objectives.Objective`), which evaluates
    through ``engine`` (one is built over ``machine`` when omitted).  Any
    cost exposing the ``evaluations``/``measured`` counters is reported
    faithfully.
    """
    check_positive_int(n, "n")
    if objective is not None:
        if cost is not None:
            raise ValueError("pass either cost= or objective=, not both")
        if engine is None:
            from repro.runtime.cost_engine import CostEngine

            engine = CostEngine(machine)
        cost = engine.cost(objective)
    elif cost is None:
        cost = MeasuredCyclesCost(machine)
    else:
        cost = bind_cost(cost, engine)
    evaluations_before = int(getattr(cost, "evaluations", 0))
    result = dp_search(
        n,
        cost,
        max_leaf=max_leaf,
        max_children=max_children,
        include_iterative=include_iterative,
        record_candidates=record_candidates,
    )
    evaluated = int(getattr(cost, "evaluations", evaluations_before)) - evaluations_before
    if evaluated <= 0:
        evaluated = result.evaluations
    best = result.best(n)
    history = [(record.plan, record.cost) for record in result.candidates_for(n)]
    return SearchResult(
        n=n,
        best_plan=best,
        best_cost=result.best_costs[n],
        evaluated=evaluated,
        considered=evaluated,
        strategy="dynamic-programming",
        history=history,
    )
