"""Dynamic-programming search conveniences.

The underlying machinery lives in :mod:`repro.wht.dp_search`; the helpers here
wire it to a simulated machine (or any other cost) and adapt the outcome to
the common :class:`repro.search.result.SearchResult` shape.  The DP-best plan
is the baseline the paper's Figures 1–3 normalise against.
"""

from __future__ import annotations

from typing import Callable

from repro.machine.machine import SimulatedMachine
from repro.search.costs import MeasuredCyclesCost
from repro.search.result import SearchResult
from repro.util.validation import check_positive_int
from repro.wht.dp_search import DPSearch, DPSearchResult
from repro.wht.plan import MAX_UNROLLED, Plan

__all__ = ["dp_search", "dp_best_plan"]


def dp_search(
    n: int,
    cost: Callable[[Plan], float],
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = 2,
    include_iterative: bool = True,
    record_candidates: bool = True,
) -> DPSearchResult:
    """Run the package's DP search up to exponent ``n`` with an arbitrary cost."""
    check_positive_int(n, "n")
    searcher = DPSearch(
        cost,
        max_leaf=max_leaf,
        max_children=max_children,
        include_iterative=include_iterative,
        record_candidates=record_candidates,
    )
    return searcher.search(n)


def dp_best_plan(
    machine: SimulatedMachine,
    n: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = 2,
    include_iterative: bool = True,
    cost: Callable[[Plan], float] | None = None,
    record_candidates: bool = True,
) -> SearchResult:
    """The DP-best plan for ``n`` under simulated cycle counts.

    This is the reproduction's analogue of "the best algorithm determined by
    the dynamic programming search performed by the WHT package".  ``cost``
    overrides the default per-call :class:`MeasuredCyclesCost` — pass a
    :class:`~repro.runtime.cost_engine.CostEngine` for batched, cached
    evaluation; any cost exposing the ``evaluations``/``measured`` counters
    is reported faithfully.
    """
    check_positive_int(n, "n")
    if cost is None:
        cost = MeasuredCyclesCost(machine)
    evaluations_before = int(getattr(cost, "evaluations", 0))
    result = dp_search(
        n,
        cost,
        max_leaf=max_leaf,
        max_children=max_children,
        include_iterative=include_iterative,
        record_candidates=record_candidates,
    )
    evaluated = int(getattr(cost, "evaluations", evaluations_before)) - evaluations_before
    if evaluated <= 0:
        evaluated = result.evaluations
    best = result.best(n)
    history = [(record.plan, record.cost) for record in result.candidates_for(n)]
    return SearchResult(
        n=n,
        best_plan=best,
        best_cost=result.best_costs[n],
        evaluated=evaluated,
        considered=evaluated,
        strategy="dynamic-programming",
        history=history,
    )
