"""Model-pruned search — the paper's proposed use of its performance models.

The conclusion of the paper: because instruction counts (and, for large sizes,
the combined instruction/miss model) correlate with runtime and can be
computed from the high-level plan description, a search can discard every
candidate whose model value is large *without measuring it*, and spend its
measurement budget only on the remaining fraction.

:class:`ModelPrunedSearch` implements exactly that two-stage strategy:

1. generate candidates (RSU random sample by default, or a caller-provided
   list, or the exhaustive space for small sizes);
2. evaluate the cheap model on every candidate and keep either the best
   ``keep_fraction`` of them or all candidates below ``threshold``;
3. measure the survivors with the expensive cost and return the best.

The report records both costs' evaluation counts plus the quality of the
result relative to measuring everything, so the pruning trade-off studied in
Figures 10/11 can be quantified directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.search.costs import bind_cost, evaluate_cost_batch
from repro.search.result import SearchResult
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_int, check_probability
from repro.wht.encoding import plan_key
from repro.wht.plan import MAX_UNROLLED, Plan
from repro.wht.random_plans import RSUSampler

__all__ = ["ModelPrunedSearch", "PrunedSearchReport"]


@dataclass(frozen=True)
class PrunedSearchReport:
    """Extended result of a pruned search."""

    result: SearchResult
    #: Number of candidates scored with the cheap model.
    model_evaluations: int
    #: Number of expensive measurements actually performed.  Equals the
    #: survivor count for a plain measured cost; smaller when the measured
    #: cost caches (cache hits cost nothing and are not counted).
    measured_evaluations: int
    #: Model threshold actually applied.
    threshold: float
    #: Fraction of candidates discarded by the model stage.
    pruned_fraction: float

    @property
    def measurement_savings(self) -> float:
        """Fraction of expensive measurements avoided by pruning."""
        if self.model_evaluations == 0:
            return 0.0
        return 1.0 - self.measured_evaluations / self.model_evaluations


@dataclass
class ModelPrunedSearch:
    """Two-stage search: cheap model filter, then expensive measurement.

    Exactly one of ``keep_fraction`` and ``threshold`` is used: when
    ``threshold`` is ``None`` the survivors are the best ``keep_fraction`` of
    the candidates by model value.

    Both costs may be plain callables, or
    :class:`~repro.runtime.objectives.Objective`\\ s / metric names evaluated
    through ``engine`` (a :class:`~repro.runtime.cost_engine.CostEngine`) —
    the paper's strategy is ``model_cost="model_instructions"`` (or the
    composite model objective) with ``measure_cost="cycles"``, sharing one
    engine so the measuring stage reuses every cached record.
    """

    model_cost: "Callable[[Plan], float] | object"
    measure_cost: "Callable[[Plan], float] | object"
    samples: int = 200
    keep_fraction: float = 0.25
    threshold: float | None = None
    max_leaf: int = MAX_UNROLLED
    max_children: int | None = None
    engine: object | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.samples, "samples")
        check_probability(self.keep_fraction, "keep_fraction")
        if self.keep_fraction == 0.0 and self.threshold is None:
            raise ValueError("keep_fraction must be positive when no threshold is given")
        self.model_cost = bind_cost(self.model_cost, self.engine)
        self.measure_cost = bind_cost(self.measure_cost, self.engine)

    # -- candidate generation ---------------------------------------------------

    def generate_candidates(self, n: int, rng: RandomState = None) -> list[Plan]:
        """Draw the default candidate set (deduplicated by plan key)."""
        generator = as_generator(rng)
        sampler = RSUSampler(max_leaf=self.max_leaf, max_children=self.max_children)
        seen: set[str] = set()
        candidates: list[Plan] = []
        for _ in range(self.samples):
            plan = sampler.sample(n, generator)
            key = plan_key(plan)
            if key not in seen:
                seen.add(key)
                candidates.append(plan)
        return candidates

    # -- search -----------------------------------------------------------------

    def search(
        self,
        n: int,
        rng: RandomState = None,
        candidates: Sequence[Plan] | None = None,
    ) -> PrunedSearchReport:
        """Run the two-stage search for exponent ``n``."""
        check_positive_int(n, "n")
        plans = list(candidates) if candidates is not None else self.generate_candidates(n, rng)
        if not plans:
            raise ValueError("no candidate plans to search")
        for plan in plans:
            if plan.n != n:
                raise ValueError(
                    f"candidate {plan} has exponent {plan.n}, expected {n}"
                )

        model_values = np.array(evaluate_cost_batch(self.model_cost, plans))
        if self.threshold is not None:
            threshold = float(self.threshold)
        else:
            keep = max(int(np.ceil(self.keep_fraction * len(plans))), 1)
            threshold = float(np.partition(model_values, keep - 1)[keep - 1])
        survivor_mask = model_values <= threshold
        survivors = [plan for plan, keep_it in zip(plans, survivor_mask) if keep_it]
        if not survivors:
            # A caller-provided threshold may be below every model value; fall
            # back to the single cheapest candidate so the search always
            # returns something measurable.
            best_index = int(np.argmin(model_values))
            survivors = [plans[best_index]]
            survivor_mask = np.zeros(len(plans), dtype=bool)
            survivor_mask[best_index] = True

        measured_before = getattr(self.measure_cost, "measured", None)
        values = evaluate_cost_batch(self.measure_cost, survivors)
        history = list(zip(survivors, values))
        best_plan: Plan | None = None
        best_cost = float("inf")
        for plan, value in history:
            # Explicit fold (not argmin) so a NaN cost can never be selected.
            if value < best_cost:
                best_cost = value
                best_plan = plan
        assert best_plan is not None

        # With a caching measured cost (e.g. the runtime's CostEngine) some
        # survivors are served from the cost cache; report the measurements
        # that actually happened rather than the survivor count.
        if measured_before is not None:
            measured = int(self.measure_cost.measured) - int(measured_before)
        else:
            measured = len(survivors)

        result = SearchResult(
            n=n,
            best_plan=best_plan,
            best_cost=best_cost,
            evaluated=len(history),
            considered=len(plans),
            strategy="model-pruned",
            history=history,
        )
        return PrunedSearchReport(
            result=result,
            model_evaluations=len(plans),
            measured_evaluations=measured,
            threshold=threshold,
            pruned_fraction=float(1.0 - survivor_mask.mean()),
        )
