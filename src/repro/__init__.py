"""repro — reproduction of "Performance Analysis of a Family of WHT Algorithms".

The package reimplements, in Python, the full system behind Andrews & Johnson
(IPPS 2007): the WHT package's algorithm space (split-tree plans, unrolled
codelets, the triple-loop interpreter, canonical plans, RSU random sampling,
DP search), a simulated machine standing in for the paper's Opteron + PAPI
measurements, the analytic instruction-count and cache-miss models, the
combined ``alpha*I + beta*M`` model, and the statistical analysis (Pearson
correlation, IQR filtering, histograms, percentile pruning curves) used in the
paper's evaluation, together with an experiment harness that regenerates every
figure.

Quickstart
----------
>>> from repro import wht, machine, models
>>> plan = wht.right_recursive_plan(10)
>>> mach = machine.default_machine()
>>> measurement = mach.measure(plan)
>>> models.instruction_count(plan)  # analytic, no execution needed
"""

from repro import analysis, config, experiments, machine, models, search, util, wht
from repro.config import ExperimentScale, ci_scale, default_scale, paper_scale
from repro.machine import Measurement, SimulatedMachine, default_machine
from repro.models import (
    CacheMissModel,
    CombinedModel,
    InstructionCountModel,
    instruction_count,
    optimize_combined_model,
)
from repro.wht import (
    Plan,
    Small,
    Split,
    iterative_plan,
    left_recursive_plan,
    parse_plan,
    random_plans,
    right_recursive_plan,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "config",
    "experiments",
    "machine",
    "models",
    "search",
    "util",
    "wht",
    "ExperimentScale",
    "default_scale",
    "paper_scale",
    "ci_scale",
    "Measurement",
    "SimulatedMachine",
    "default_machine",
    "CacheMissModel",
    "CombinedModel",
    "InstructionCountModel",
    "instruction_count",
    "optimize_combined_model",
    "Plan",
    "Small",
    "Split",
    "iterative_plan",
    "left_recursive_plan",
    "right_recursive_plan",
    "parse_plan",
    "random_plans",
    "__version__",
]
