"""repro — reproduction of "Performance Analysis of a Family of WHT Algorithms".

The package reimplements, in Python, the full system behind Andrews & Johnson
(IPPS 2007): the WHT package's algorithm space (split-tree plans, unrolled
codelets, the triple-loop interpreter, canonical plans, RSU random sampling,
DP search), a simulated machine standing in for the paper's Opteron + PAPI
measurements, the analytic instruction-count and cache-miss models, the
combined ``alpha*I + beta*M`` model, and the statistical analysis (Pearson
correlation, IQR filtering, histograms, percentile pruning curves) used in the
paper's evaluation, together with an experiment harness that regenerates every
figure.

Quickstart
----------
The single entry point for running the paper's evaluation is
:func:`repro.session`, which bundles a machine, an experiment scale, an
execution backend and a campaign store:

>>> import repro
>>> sess = repro.session(machine="default", scale="default", backend="serial")
>>> table = sess.small_table()          # one measurement campaign
>>> results = sess.run_all()            # all eleven paper figures
>>> best = sess.search(10)              # DP-best plan on this machine

Campaigns fan out across worker processes with ``backend="multiprocess"``
(one persistent pool for the whole session) and deduplicate repeated plans
with ``backend="batched"`` — every backend produces bit-identical tables.
Passing ``store="./campaigns"`` persists completed campaigns as JSON — and
every per-plan cost record as an append-log — so later processes (figure
reruns, CI) complete the same campaigns via cache hits instead of
re-measuring.

Searches are parameterised by an *objective* over named cost metrics — the
paper's whole point is that different cost functions rank plans differently:

>>> sess.search(10, objective="cycles")                 # classic search
>>> sess.search(10, objective="l1_misses")              # optimise misses
>>> sess.search(10, objective=repro.WeightedObjective.combined(1.0, 0.05))
>>> sess.search(10, objective="model_instructions")     # analytic: no measuring

One simulated run populates every hardware counter metric at once
(``cycles``, ``instructions``, ``l1_misses``, ``l2_misses``,
``l1_accesses``), model metrics never touch the machine, and all records
share one persistent cache — switching objectives re-measures nothing.

Many sessions can share one measurement pipeline through the campaign
service — a job queue plus worker fleet that dedupes overlapping work
fleet-wide and persists records in per-machine shards:

>>> service = repro.serve(store="./campaigns", workers=4)
>>> a = repro.Session.connect(service)
>>> b = repro.Session.connect(service)     # shares a's measurements
>>> best = a.search(14)                    # each plan measured once, total
>>> service.stats().dedup_savings          # duplicates that never ran

The same service serves tenants on *other hosts* over a supervised socket
transport — same bit-identical results, same exactly-once measurement,
now with reconnect, heartbeats and idempotent resubmission on the wire:

>>> server = repro.serve_tcp(service)      # tcp://127.0.0.1:<port>
>>> remote = repro.Session.connect(server.url, fallback=True)
>>> best = remote.search(14)               # bit-identical to the local search

A whole evaluation — figures, summary tables, objective sweeps — can be
declared as one JSON/dict spec and run as a suite, baseline-first, with
pluggable result sinks and store-native resume (re-running against the
same store performs zero new measurements):

>>> run = repro.suite("benchmarks/suites/paper.json",
...                   store="./campaigns", artifacts="./artifacts")
>>> result = run.run()              # figures 1-11 + tables + sweeps
>>> result.total_measured           # 0 on a warm store

(also: ``python -m repro.suite run spec.json``)

Lower-level objects remain available for direct use:

>>> from repro import wht, machine, models
>>> plan = wht.right_recursive_plan(10)
>>> mach = machine.default_machine()
>>> measurement = mach.measure(plan)
>>> models.instruction_count(plan)  # analytic, no execution needed
"""

from repro import analysis, config, experiments, machine, models, runtime, search, util, wht
from repro.config import ExperimentScale, ci_scale, default_scale, paper_scale
from repro.machine import Measurement, SimulatedMachine, default_machine
from repro.models import (
    CacheMissModel,
    CombinedModel,
    InstructionCountModel,
    instruction_count,
    optimize_combined_model,
)
from repro.runtime import (
    BatchedBackend,
    CampaignService,
    CampaignStore,
    CostEngine,
    CostRecord,
    CustomObjective,
    DiskStore,
    ExecutionBackend,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    FaultyStore,
    FleetClient,
    MeasurementTable,
    MemoryStore,
    MetricObjective,
    FaultyTransport,
    MultiprocessBackend,
    Objective,
    RemoteServiceClient,
    SerialBackend,
    ServiceClient,
    ServiceServer,
    Session,
    ShardedRecordStore,
    TransportError,
    WeightedObjective,
    serve,
    serve_tcp,
    serve_unix,
    session,
)
from repro.wht import (
    Plan,
    Small,
    Split,
    iterative_plan,
    left_recursive_plan,
    parse_plan,
    random_plans,
    right_recursive_plan,
)
from repro.suite import (
    ExperimentResult,
    MemorySink,
    SpecError,
    SuiteResult,
    SuiteRun,
    SuiteSpec,
    load_spec,
)

# ``repro.suite`` is callable *and* a package: importing the subpackage above
# bound the module object as an attribute of this package; rebinding the name
# to the façade function afterwards wins the attribute lookup, while
# ``from repro.suite.x import y`` and ``python -m repro.suite`` still resolve
# the package through importlib.  (Edge case: ``import repro.suite as m``
# binds this function, not the module.)
from repro.suite.api import suite

__version__ = "1.7.0"

__all__ = [
    "analysis",
    "config",
    "experiments",
    "machine",
    "models",
    "runtime",
    "search",
    "util",
    "wht",
    "ExperimentScale",
    "default_scale",
    "paper_scale",
    "ci_scale",
    "Measurement",
    "SimulatedMachine",
    "default_machine",
    "CacheMissModel",
    "CombinedModel",
    "InstructionCountModel",
    "instruction_count",
    "optimize_combined_model",
    "Session",
    "session",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "BatchedBackend",
    "CampaignStore",
    "MemoryStore",
    "DiskStore",
    "ShardedRecordStore",
    "CampaignService",
    "ServiceClient",
    "serve",
    "ServiceServer",
    "serve_tcp",
    "serve_unix",
    "RemoteServiceClient",
    "FleetClient",
    "FaultyTransport",
    "TransportError",
    "FaultPlan",
    "FaultSpec",
    "FaultyBackend",
    "FaultyStore",
    "MeasurementTable",
    "CostEngine",
    "CostRecord",
    "Objective",
    "MetricObjective",
    "WeightedObjective",
    "CustomObjective",
    "Plan",
    "Small",
    "Split",
    "iterative_plan",
    "left_recursive_plan",
    "right_recursive_plan",
    "parse_plan",
    "random_plans",
    "suite",
    "SuiteRun",
    "SuiteSpec",
    "SuiteResult",
    "ExperimentResult",
    "MemorySink",
    "SpecError",
    "load_spec",
    "__version__",
]
