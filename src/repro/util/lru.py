"""A minimal bounded least-recently-used mapping.

Shared by the caching layers of the batched evaluation engine (the machine's
prepared-plan cache, the interpreter's sub-plan template cache) so the
recency/eviction mechanics live in one place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

from repro.util.validation import check_positive_int

__all__ = ["LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping evicting the least recently used entry.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts the
    oldest entries beyond ``capacity``.  Not thread-safe, like the rest of
    the simulator.
    """

    def __init__(self, capacity: int):
        check_positive_int(capacity, "capacity")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K) -> V | None:
        """The value for ``key`` (refreshing its recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: K, value: V) -> None:
        """Insert ``value`` under ``key``, evicting the oldest beyond capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries
