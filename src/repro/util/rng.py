"""Random-number-generator helpers.

Every stochastic component of the package (RSU plan sampling, cycle-model
noise, search heuristics) accepts either a seed or a ``numpy.random.Generator``
and normalises it through :func:`as_generator` so experiments are reproducible
end-to-end from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomState", "as_generator", "spawn_generators", "derive_seed"]

RandomState = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a ``numpy.random.Generator``.

    ``None`` produces a nondeterministic generator; an integer or
    ``SeedSequence`` produces a deterministic one; an existing generator is
    returned unchanged (shared state, by design, so callers can interleave
    draws).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to derive child seeds.
        seeds = seed.integers(0, 2**63 - 1, size=count, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]
    if isinstance(seed, np.random.SeedSequence):
        children = seed.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(c) for c in children]


def derive_seed(seed: RandomState, *tags: int | str) -> int:
    """Derive a deterministic 63-bit child seed from ``seed`` and ``tags``.

    Used where a component needs a stable per-(size, index) seed, e.g. one
    seed per sampled plan so campaigns can be resumed and parallelised.
    """
    base: int
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.entropy if isinstance(seed.entropy, int) else 0)
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    mask64 = (1 << 64) - 1
    acc = (base * 0x9E3779B97F4A7C15) & mask64
    for tag in tags:
        if isinstance(tag, str):
            # Stable across processes (unlike built-in str hashing).
            tag_val = 0
            for char in tag:
                tag_val = (tag_val * 131 + ord(char)) & mask64
        else:
            tag_val = int(tag) & mask64
        acc = ((acc ^ tag_val) * 0xBF58476D1CE4E5B9) & mask64
    return acc & ((1 << 63) - 1)
