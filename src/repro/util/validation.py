"""Argument validation helpers shared across the package."""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_power_of_two",
    "check_probability",
    "ensure_in_range",
]


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ValueError`` unless it is >= 1."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"{name} must be an integer, got {value!r}") from exc
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 1:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ValueError`` unless it is >= 0."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"{name} must be an integer, got {value!r}") from exc
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 0:
        raise ValueError(f"{name} must be a nonnegative integer, got {value}")
    return int(value)


def check_power_of_two(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising unless it is a power of two (>= 1)."""
    ivalue = check_positive_int(value, name)
    if ivalue & (ivalue - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {ivalue}")
    return ivalue


def check_probability(value: Any, name: str) -> float:
    """Return ``value`` as a float in [0, 1]."""
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {fvalue}")
    return fvalue


def ensure_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Return ``value`` unchanged, raising ``ValueError`` if outside [lo, hi]."""
    fvalue = float(value)
    if not lo <= fvalue <= hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {fvalue}")
    return fvalue
