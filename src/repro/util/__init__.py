"""Shared utilities used across the :mod:`repro` package.

The utilities here are intentionally dependency-light: integer composition
helpers (the combinatorial backbone of the WHT algorithm space), seeded RNG
construction, validation helpers and plain-text table rendering used by the
experiment harness.
"""

from repro.util.compositions import (
    compositions,
    count_compositions,
    random_composition,
    weak_compositions,
)
from repro.util.rng import RandomState, as_generator, spawn_generators
from repro.util.tables import format_series, format_table
from repro.util.validation import (
    check_positive_int,
    check_power_of_two,
    check_probability,
    ensure_in_range,
)

__all__ = [
    "compositions",
    "count_compositions",
    "random_composition",
    "weak_compositions",
    "RandomState",
    "as_generator",
    "spawn_generators",
    "format_series",
    "format_table",
    "check_positive_int",
    "check_power_of_two",
    "check_probability",
    "ensure_in_range",
]
