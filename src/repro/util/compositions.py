"""Integer composition utilities.

A *composition* of the integer ``n`` is an ordered tuple of positive integers
summing to ``n``.  The WHT algorithm space is built from compositions: each
application of the factorisation

    WHT_{2^n} = prod_i (I (x) WHT_{2^{n_i}} (x) I),      n = n_1 + ... + n_t

chooses a composition ``(n_1, ..., n_t)`` of ``n`` with ``t >= 2`` (a single
part corresponds to not splitting at all, i.e. a base-case codelet).

These helpers are used by the plan enumerator (:mod:`repro.wht.enumeration`),
the recursive-split-uniform sampler (:mod:`repro.wht.random_plans`) and the
theoretical model module (:mod:`repro.models.theory`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "compositions",
    "count_compositions",
    "weak_compositions",
    "random_composition",
    "compositions_with_max_part",
    "count_compositions_with_max_part",
]


def compositions(n: int, min_parts: int = 1, max_part: int | None = None) -> Iterator[tuple[int, ...]]:
    """Yield every composition of ``n`` in lexicographic order.

    Parameters
    ----------
    n:
        Positive integer to compose.
    min_parts:
        Only yield compositions with at least this many parts.  ``min_parts=2``
        yields the *proper* compositions used for split nodes.
    max_part:
        If given, no part may exceed ``max_part`` (used to model a maximum
        unrolled codelet size).
    """
    check_positive_int(n, "n")
    if min_parts < 1:
        raise ValueError(f"min_parts must be >= 1, got {min_parts}")
    limit = n if max_part is None else int(max_part)
    if limit < 1:
        raise ValueError(f"max_part must be >= 1, got {max_part}")

    def _gen(remaining: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            if len(prefix) >= min_parts:
                yield prefix
            return
        for part in range(1, min(remaining, limit) + 1):
            yield from _gen(remaining - part, prefix + (part,))

    yield from _gen(n, ())


def count_compositions(n: int, min_parts: int = 1, max_part: int | None = None) -> int:
    """Count compositions of ``n`` without enumerating them when possible.

    Without a ``max_part`` restriction there are ``2**(n-1)`` compositions of
    ``n`` and ``2**(n-1) - 1`` compositions with at least two parts.  With a
    ``max_part`` restriction a dynamic program over (remaining, parts-so-far
    saturating at ``min_parts``) is used.
    """
    check_positive_int(n, "n")
    if max_part is None or max_part >= n:
        total = 1 << (n - 1)
        if min_parts <= 1:
            return total
        if min_parts == 2:
            return total - 1
        # Fall through to the DP for the general (rare) case.
    limit = n if max_part is None else int(max_part)
    # dp[r][k] = number of ways to compose r using parts <= limit with
    # k parts already placed (k saturates at min_parts).
    sat = max(min_parts, 1)
    dp = [[0] * (sat + 1) for _ in range(n + 1)]
    dp[0][0] = 1
    for total in range(n + 1):
        for k in range(sat + 1):
            ways = dp[total][k]
            if ways == 0:
                continue
            for part in range(1, min(limit, n - total) + 1):
                nk = min(sat, k + 1)
                dp[total + part][nk] += ways
    return sum(dp[n][k] for k in range(min(min_parts, sat), sat + 1))


def compositions_with_max_part(n: int, max_part: int) -> Iterator[tuple[int, ...]]:
    """Compositions of ``n`` whose parts are all ``<= max_part``."""
    yield from compositions(n, min_parts=1, max_part=max_part)


def count_compositions_with_max_part(n: int, max_part: int) -> int:
    """Count compositions of ``n`` whose parts are all ``<= max_part``."""
    return count_compositions(n, min_parts=1, max_part=max_part)


def weak_compositions(n: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield compositions of ``n`` into exactly ``parts`` nonnegative parts."""
    check_positive_int(parts, "parts")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")

    def _gen(remaining: int, slots: int) -> Iterator[tuple[int, ...]]:
        if slots == 1:
            yield (remaining,)
            return
        for first in range(remaining + 1):
            for rest in _gen(remaining - first, slots - 1):
                yield (first,) + rest

    yield from _gen(n, parts)


def random_composition(
    n: int,
    rng: np.random.Generator,
    min_parts: int = 2,
    max_part: int | None = None,
) -> tuple[int, ...]:
    """Draw a composition of ``n`` uniformly at random.

    This is the building block of the *recursive split uniform* distribution
    used by the paper (each admissible composition of ``n`` is equally likely
    at every application of the factorisation).

    The draw is exact: a composition of ``n`` corresponds to a subset of the
    ``n - 1`` gaps between unit cells, so without a ``max_part`` restriction we
    draw the gap subset directly.  With restrictions we fall back to an exact
    DP-weighted sequential draw.
    """
    check_positive_int(n, "n")
    if min_parts > n:
        raise ValueError(f"cannot compose {n} into at least {min_parts} parts")
    limit = n if max_part is None else int(max_part)
    if limit * n < n:  # pragma: no cover - defensive
        raise ValueError("max_part too small")

    if limit >= n and min_parts <= 2:
        # Rejection-free draw over gap subsets.  For min_parts == 2 we simply
        # exclude the empty subset by redrawing (probability 2^-(n-1)).
        while True:
            gaps = rng.random(n - 1) < 0.5 if n > 1 else np.zeros(0, dtype=bool)
            parts: list[int] = []
            run = 1
            for gap in gaps:
                if gap:
                    parts.append(run)
                    run = 1
                else:
                    run += 1
            parts.append(run)
            if len(parts) >= min_parts:
                return tuple(parts)
            if n == 1 and min_parts <= 1:  # pragma: no cover - unreachable by guard
                return (1,)
            if min_parts <= 1:
                return tuple(parts)

    # Exact sequential draw weighted by the number of completions.
    def completions(remaining: int, placed: int) -> int:
        if remaining == 0:
            return 1 if placed >= min_parts else 0
        total = 0
        for part in range(1, min(limit, remaining) + 1):
            total += completions(remaining - part, placed + 1)
        return total

    parts_out: list[int] = []
    remaining = n
    while remaining > 0:
        weights = []
        options = list(range(1, min(limit, remaining) + 1))
        for part in options:
            weights.append(completions(remaining - part, len(parts_out) + 1))
        total = sum(weights)
        if total == 0:
            raise ValueError(
                f"no composition of {n} with min_parts={min_parts}, max_part={max_part}"
            )
        probs = np.asarray(weights, dtype=float) / float(total)
        choice = int(rng.choice(len(options), p=probs))
        parts_out.append(options[choice])
        remaining -= options[choice]
    return tuple(parts_out)
