"""Batched evaluation of cost functions over plan lists.

The single dispatch point of the search layer's batched-evaluation protocol:
a *cost* is any callable mapping a plan to a float, and a cost that also
exposes ``batch(plans)`` gets whole candidate lists at once (vectorised
analytic models, the runtime's backend-parallel cost engine).  Plain
callables are evaluated in a loop in list order, so the two paths request
evaluations in the same order and remain interchangeable — costs drawing
noise from a shared generator produce identical sequences either way.

Lives in ``repro.util`` because both the ``wht`` layer (the DP search) and
the ``search`` strategies dispatch through it, and ``wht`` must stay
importable without the search/machine layers.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = ["evaluate_cost_batch"]

_Plan = TypeVar("_Plan")


def evaluate_cost_batch(
    cost: Callable[[_Plan], float], plans: Sequence[_Plan]
) -> list[float]:
    """Evaluate ``cost`` on every plan, using ``cost.batch`` when available."""
    batch = getattr(cost, "batch", None)
    if callable(batch):
        return [float(value) for value in batch(plans)]
    return [float(cost(plan)) for plan in plans]
