"""Plain-text rendering of tables and series.

The experiment harness reproduces the paper's figures as *data series*; these
helpers render them in a compact, aligned, ASCII form so benchmark output and
EXPERIMENTS.md stay human-readable without a plotting dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_histogram"]


def _fmt_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned ASCII table with ``headers``."""
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    x_label: str = "x",
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render one or more aligned series against a shared x axis."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, xv in enumerate(x):
        row = [xv]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, float_fmt=float_fmt, title=title)


def format_histogram(
    edges: Sequence[float],
    counts: Sequence[int],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render a histogram as horizontal ASCII bars."""
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must have exactly one more element than counts")
    peak = max(counts) if len(counts) else 0
    lines: list[str] = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else int(round(width * count / peak)))
        lines.append(f"[{edges[i]:>12.4g}, {edges[i + 1]:>12.4g})  {count:>8d}  {bar}")
    return "\n".join(lines)
