"""Experiment-scale configuration.

The paper's campaigns use transform sizes 2^9 and 2^18 with 10,000 random
samples each, measured on real hardware.  A pure-Python execution-driven
simulation cannot sweep that scale in interactive time, so every experiment in
this reproduction is parameterised by an :class:`ExperimentScale`:

* :func:`default_scale` — the scaled campaign used by the benchmark harness
  (sizes matched to the scaled machine of
  :func:`repro.machine.configs.default_machine_config`).
* :func:`paper_scale` — the paper's true sizes and sample count, for use with
  the Opteron-like machine when long runtimes are acceptable.
* :func:`ci_scale` — a miniature campaign for unit tests.

All knobs can be overridden through environment variables
(``REPRO_SMALL_SIZE``, ``REPRO_LARGE_SIZE``, ``REPRO_CANONICAL_MAX_SIZE``,
``REPRO_SAMPLE_COUNT``, ``REPRO_SEED``) so the same benchmark code can be run
at larger scale without edits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.util.validation import check_positive_int

__all__ = ["ExperimentScale", "default_scale", "paper_scale", "ci_scale", "scale_from_env"]


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by all experiments."""

    #: Exponent of the in-cache ("small") transform size.
    small_size: int = 9
    #: Exponent of the out-of-cache ("large") transform size.
    large_size: int = 13
    #: Largest exponent in the canonical-algorithm sweeps (Figures 1–3).
    canonical_max_size: int = 15
    #: Number of RSU random samples per campaign (the paper uses 10,000).
    sample_count: int = 400
    #: Base random seed for samplers and the cycle-noise draws.
    seed: int = 20070122

    def __post_init__(self) -> None:
        check_positive_int(self.small_size, "small_size")
        check_positive_int(self.large_size, "large_size")
        check_positive_int(self.canonical_max_size, "canonical_max_size")
        check_positive_int(self.sample_count, "sample_count")
        if self.small_size >= self.large_size:
            raise ValueError(
                f"small_size ({self.small_size}) must be smaller than large_size "
                f"({self.large_size})"
            )

    def with_samples(self, sample_count: int) -> "ExperimentScale":
        """A copy with a different sample count."""
        return replace(self, sample_count=sample_count)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"small=2^{self.small_size}, large=2^{self.large_size}, "
            f"canonical sweep up to 2^{self.canonical_max_size}, "
            f"{self.sample_count} samples, seed={self.seed}"
        )


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"environment variable {name} must be an integer, got {raw!r}") from exc


def default_scale() -> ExperimentScale:
    """The scaled campaign used by the benchmarks (see DESIGN.md)."""
    return ExperimentScale()


def paper_scale() -> ExperimentScale:
    """The paper's true campaign sizes (2^9, 2^18, sweep to 2^20, 10,000 samples)."""
    return ExperimentScale(
        small_size=9,
        large_size=18,
        canonical_max_size=20,
        sample_count=10_000,
    )


def ci_scale() -> ExperimentScale:
    """A miniature campaign for fast unit tests (paired with the tiny machine)."""
    return ExperimentScale(
        small_size=4,
        large_size=7,
        canonical_max_size=8,
        sample_count=40,
    )


def scale_from_env(base: ExperimentScale | None = None) -> ExperimentScale:
    """The default scale with environment-variable overrides applied."""
    scale = base if base is not None else default_scale()
    return ExperimentScale(
        small_size=_env_int("REPRO_SMALL_SIZE", scale.small_size),
        large_size=_env_int("REPRO_LARGE_SIZE", scale.large_size),
        canonical_max_size=_env_int("REPRO_CANONICAL_MAX_SIZE", scale.canonical_max_size),
        sample_count=_env_int("REPRO_SAMPLE_COUNT", scale.sample_count),
        seed=_env_int("REPRO_SEED", scale.seed),
    )
