"""PAPI-like performance counter facade.

The paper collects its data with PAPI event counters.  This module offers the
same vocabulary on top of the simulated machine so that experiment code reads
like the original methodology: create a :class:`CounterSet` with the events of
interest, ``start`` it, run a plan, ``stop`` it and read the counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.machine.measurement import Measurement
from repro.wht.plan import Plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.machine.machine import SimulatedMachine

__all__ = ["PAPI_EVENTS", "CounterSet", "counters_from_measurement"]

#: Supported PAPI-style event names and their meaning in the simulation.
PAPI_EVENTS: dict[str, str] = {
    "PAPI_TOT_CYC": "total simulated cycles",
    "PAPI_TOT_INS": "total retired instructions",
    "PAPI_L1_DCM": "level 1 data cache misses",
    "PAPI_L2_DCM": "level 2 data cache misses",
    "PAPI_LD_INS": "element load instructions",
    "PAPI_SR_INS": "element store instructions",
    "PAPI_FP_OPS": "floating point operations",
    "PAPI_L1_DCA": "level 1 data cache accesses",
}


def counters_from_measurement(measurement: Measurement) -> dict[str, float]:
    """Map a :class:`Measurement` onto the PAPI event vocabulary."""
    return {
        "PAPI_TOT_CYC": float(measurement.cycles),
        "PAPI_TOT_INS": float(measurement.instructions),
        "PAPI_L1_DCM": float(measurement.l1_misses),
        "PAPI_L2_DCM": float(measurement.l2_misses),
        "PAPI_LD_INS": float(measurement.loads),
        "PAPI_SR_INS": float(measurement.stores),
        "PAPI_FP_OPS": float(measurement.arithmetic_ops),
        "PAPI_L1_DCA": float(measurement.l1_accesses),
    }


@dataclass
class CounterSet:
    """A PAPI-style event set bound to a simulated machine.

    Example
    -------
    >>> from repro.machine import default_machine
    >>> from repro.wht import iterative_plan
    >>> counters = CounterSet(default_machine(), ["PAPI_TOT_CYC", "PAPI_TOT_INS"])
    >>> counters.start()
    >>> counters.run(iterative_plan(8))
    >>> counts = counters.stop()
    """

    machine: "SimulatedMachine"
    events: list[str] = field(default_factory=lambda: list(PAPI_EVENTS))
    _running: bool = field(default=False, init=False)
    _accumulated: dict[str, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        unknown = [e for e in self.events if e not in PAPI_EVENTS]
        if unknown:
            raise ValueError(
                f"unknown PAPI events {unknown}; supported: {sorted(PAPI_EVENTS)}"
            )

    def start(self) -> None:
        """Begin counting; zeroes any previously accumulated counts."""
        self._running = True
        self._accumulated = {event: 0.0 for event in self.events}

    def run(self, plan: Plan) -> Measurement:
        """Run one plan on the bound machine, accumulating its counters."""
        if not self._running:
            raise RuntimeError("CounterSet.run called before start()")
        measurement = self.machine.measure(plan)
        values = counters_from_measurement(measurement)
        for event in self.events:
            self._accumulated[event] += values[event]
        return measurement

    def read(self) -> dict[str, float]:
        """Current accumulated counts (without stopping)."""
        if not self._running:
            raise RuntimeError("CounterSet.read called before start()")
        return dict(self._accumulated)

    def stop(self) -> dict[str, float]:
        """Stop counting and return the accumulated counts."""
        if not self._running:
            raise RuntimeError("CounterSet.stop called before start()")
        self._running = False
        return dict(self._accumulated)
