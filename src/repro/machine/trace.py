"""Memory-trace generation from plan execution.

The plan interpreter summarises execution as a sequence of :class:`LeafNest`
events (one per leaf loop nest, in execution order).  This module expands
those events into the byte-address trace the cache hierarchy consumes.

Per codelet call the WHT package's unrolled code loads its ``2^k`` input
elements and then stores the ``2^k`` results back to the same locations; the
trace therefore contains, for every call, one read pass followed by one write
pass over the call's strided element block.  Expansion is a single NumPy
broadcast per nest, so generating a multi-million access trace stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.util.validation import check_positive_int
from repro.wht.interpreter import LeafNest

__all__ = ["MemoryTrace", "trace_from_nests", "nest_addresses", "collapse_consecutive"]

#: Size of a double-precision vector element in bytes (the WHT package
#: computes on doubles).
DEFAULT_ELEMENT_SIZE = 8


@dataclass(frozen=True)
class MemoryTrace:
    """A data-access trace: byte addresses in exact access order.

    ``addresses`` may be consumed directly by the cache simulators.  The trace
    also records how many of the accesses were element loads vs stores (the
    counts are equal for WHT plans, but the split is kept for generality).
    """

    addresses: np.ndarray
    loads: int
    stores: int
    element_size: int = DEFAULT_ELEMENT_SIZE

    def __post_init__(self) -> None:
        if self.addresses.ndim != 1:
            raise ValueError("trace addresses must form a 1-D array")
        if self.loads + self.stores != self.addresses.shape[0]:
            raise ValueError(
                f"loads ({self.loads}) + stores ({self.stores}) must equal the "
                f"trace length ({self.addresses.shape[0]})"
            )

    @property
    def accesses(self) -> int:
        """Total number of element accesses."""
        return int(self.addresses.shape[0])

    @property
    def footprint_bytes(self) -> int:
        """Number of distinct bytes touched (distinct elements x element size)."""
        if self.accesses == 0:
            return 0
        return int(np.unique(self.addresses).shape[0]) * self.element_size

    def line_addresses(self, line_size: int) -> np.ndarray:
        """Cache-line numbers of every access, in order."""
        check_positive_int(line_size, "line_size")
        return self.addresses // int(line_size)


def nest_addresses(
    nest: LeafNest,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    base_address: int = 0,
) -> np.ndarray:
    """Byte addresses of one nest, read pass then write pass per codelet call."""
    check_positive_int(element_size, "element_size")
    j = np.arange(nest.outer_count, dtype=np.int64) * nest.outer_stride
    k = np.arange(nest.inner_count, dtype=np.int64) * nest.inner_stride
    e = np.arange(nest.elements_per_call, dtype=np.int64) * nest.elem_stride
    # Element indices per call: shape (outer, inner, elems).
    per_call = nest.base + j[:, None, None] + k[None, :, None] + e[None, None, :]
    # Duplicate each call's block: axis 2 distinguishes the read and write pass.
    doubled = np.broadcast_to(
        per_call[:, :, None, :],
        (nest.outer_count, nest.inner_count, 2, nest.elements_per_call),
    )
    flat = doubled.reshape(-1)
    return base_address + flat * element_size


def trace_from_nests(
    nests: Sequence[LeafNest] | Iterable[LeafNest],
    element_size: int = DEFAULT_ELEMENT_SIZE,
    base_address: int = 0,
) -> MemoryTrace:
    """Expand interpreter leaf-nest events into a full byte-address trace."""
    check_positive_int(element_size, "element_size")
    chunks: list[np.ndarray] = []
    loads = 0
    stores = 0
    for nest in nests:
        chunks.append(nest_addresses(nest, element_size=element_size, base_address=base_address))
        loads += nest.total_elements
        stores += nest.total_elements
    if chunks:
        addresses = np.concatenate(chunks)
    else:
        addresses = np.zeros(0, dtype=np.int64)
    return MemoryTrace(
        addresses=addresses,
        loads=loads,
        stores=stores,
        element_size=element_size,
    )


def collapse_consecutive(line_addresses: np.ndarray) -> tuple[np.ndarray, int]:
    """Remove runs of consecutive identical line addresses.

    All accesses of a run after the first are guaranteed hits in any level of
    the hierarchy and do not change LRU state, so dropping them preserves the
    miss count exactly while shrinking the trace (typically by the number of
    elements per line for unit-stride passes).  Returns the collapsed array
    and the number of removed (guaranteed-hit) accesses.
    """
    arr = np.asarray(line_addresses)
    if arr.ndim != 1:
        raise ValueError("line_addresses must be a 1-D array")
    if arr.size == 0:
        return arr.astype(np.int64, copy=False), 0
    keep = np.empty(arr.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = arr[1:] != arr[:-1]
    collapsed = arr[keep].astype(np.int64, copy=False)
    return collapsed, int(arr.shape[0] - collapsed.shape[0])
