"""Memory-trace generation from plan execution.

The plan interpreter summarises execution as a sequence of :class:`LeafNest`
events (one per leaf loop nest, in execution order).  This module expands
those events into the data-access trace the cache hierarchy consumes.

Per codelet call the WHT package's unrolled code loads its ``2^k`` input
elements and then stores the ``2^k`` results back to the same locations; the
trace therefore contains, for every call, one read pass followed by one write
pass over the call's strided element block.

Two expansion paths are provided (see DESIGN.md):

* :func:`stream_line_chunks` — the default pipeline.  Nest blocks are grouped
  by shape and expanded with one broadcast per group, directly at cache-line
  granularity, with runs of consecutive identical lines collapsed per chunk
  at generation time (line-aligned unit-stride nests collapse analytically,
  without ever materialising their per-element accesses).  The full trace is
  never held in memory; bounded :class:`LineChunk` batches stream into the
  hierarchy simulators.
* :func:`trace_from_nests` / :class:`MemoryTrace` — the eager byte-address
  view, retained as a thin compatibility layer for tests, ablations and any
  consumer that wants the exact per-element access sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.util.validation import check_positive_int
from repro.wht.interpreter import _SINGLE_OFFSET, LeafNest, NestBlock

__all__ = [
    "MemoryTrace",
    "LineChunk",
    "SplicedLineChunk",
    "trace_from_nests",
    "nest_addresses",
    "collapse_consecutive",
    "stream_line_chunks",
    "splice_line_chunks",
]

#: Size of a double-precision vector element in bytes (the WHT package
#: computes on doubles).
DEFAULT_ELEMENT_SIZE = 8

#: Default upper bound on raw (pre-collapse) accesses expanded per chunk.
#: Bounds the pipeline's peak memory: every intermediate array (expansion
#: grids, scatter positions, simulator sort buffers) scales with the chunk
#: length, and 2^18 accesses keep them all in the single-digit megabytes
#: while staying far above the vectorisation break-even point.
DEFAULT_CHUNK_ACCESSES = 1 << 18


@dataclass(frozen=True)
class MemoryTrace:
    """A data-access trace: byte addresses in exact access order.

    ``addresses`` may be consumed directly by the cache simulators.  The trace
    also records how many of the accesses were element loads vs stores (the
    counts are equal for WHT plans, but the split is kept for generality).
    """

    addresses: np.ndarray
    loads: int
    stores: int
    element_size: int = DEFAULT_ELEMENT_SIZE

    def __post_init__(self) -> None:
        if self.addresses.ndim != 1:
            raise ValueError("trace addresses must form a 1-D array")
        if self.loads + self.stores != self.addresses.shape[0]:
            raise ValueError(
                f"loads ({self.loads}) + stores ({self.stores}) must equal the "
                f"trace length ({self.addresses.shape[0]})"
            )

    @property
    def accesses(self) -> int:
        """Total number of element accesses."""
        return int(self.addresses.shape[0])

    @property
    def footprint_bytes(self) -> int:
        """Number of distinct bytes touched (distinct elements x element size)."""
        if self.accesses == 0:
            return 0
        return int(np.unique(self.addresses).shape[0]) * self.element_size

    def line_addresses(self, line_size: int) -> np.ndarray:
        """Cache-line numbers of every access, in order."""
        check_positive_int(line_size, "line_size")
        return self.addresses // int(line_size)


def nest_addresses(
    nest: LeafNest,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    base_address: int = 0,
) -> np.ndarray:
    """Byte addresses of one nest, read pass then write pass per codelet call."""
    check_positive_int(element_size, "element_size")
    j = np.arange(nest.outer_count, dtype=np.int64) * nest.outer_stride
    k = np.arange(nest.inner_count, dtype=np.int64) * nest.inner_stride
    e = np.arange(nest.elements_per_call, dtype=np.int64) * nest.elem_stride
    # Element indices per call: shape (outer, inner, elems).
    per_call = nest.base + j[:, None, None] + k[None, :, None] + e[None, None, :]
    # Duplicate each call's block: axis 2 distinguishes the read and write pass.
    doubled = np.broadcast_to(
        per_call[:, :, None, :],
        (nest.outer_count, nest.inner_count, 2, nest.elements_per_call),
    )
    flat = doubled.reshape(-1)
    return base_address + flat * element_size


def trace_from_nests(
    nests: Sequence[LeafNest] | Iterable[LeafNest],
    element_size: int = DEFAULT_ELEMENT_SIZE,
    base_address: int = 0,
) -> MemoryTrace:
    """Expand interpreter leaf-nest events into a full byte-address trace."""
    check_positive_int(element_size, "element_size")
    chunks: list[np.ndarray] = []
    loads = 0
    stores = 0
    for nest in nests:
        chunks.append(nest_addresses(nest, element_size=element_size, base_address=base_address))
        loads += nest.total_elements
        stores += nest.total_elements
    if chunks:
        addresses = np.concatenate(chunks)
    else:
        addresses = np.zeros(0, dtype=np.int64)
    return MemoryTrace(
        addresses=addresses,
        loads=loads,
        stores=stores,
        element_size=element_size,
    )


@dataclass(frozen=True)
class LineChunk:
    """One streamed batch of the line-granular, duplicate-collapsed trace.

    ``lines`` holds cache-line numbers in exact access order with runs of
    consecutive identical lines removed; ``accesses`` records how many raw
    element accesses the chunk represents (before collapsing), which is what
    the hierarchy reports as L1 accesses.
    """

    lines: np.ndarray
    accesses: int

    def __post_init__(self) -> None:
        lines = np.asarray(self.lines)
        if lines.ndim != 1:
            raise ValueError("chunk lines must form a 1-D array")
        # Chunk construction is the validation boundary: the simulators
        # downstream run with their non-negativity scan disabled (negative
        # values would collide with their invalid-slot sentinels).
        if lines.size and lines.min() < 0:
            raise ValueError("chunk lines must be nonnegative")
        object.__setattr__(self, "lines", lines.astype(np.int64, copy=False))
        if self.accesses < lines.shape[0]:
            raise ValueError(
                f"accesses ({self.accesses}) cannot be fewer than the collapsed "
                f"line count ({lines.shape[0]})"
            )


@dataclass(frozen=True)
class SplicedLineChunk:
    """One batch of a cross-plan spliced super-stream.

    ``lines`` concatenates segments of several plans' collapsed line streams
    (each already shifted into its plan's disjoint slice of the line space —
    see :meth:`repro.machine.hierarchy.MemoryHierarchy.batch_line_offsets`).
    ``seg_bounds`` delimits the segments within ``lines`` (length = number of
    segments + 1), ``seg_plan`` names the plan each segment belongs to, and
    ``seg_accesses`` records the raw (pre-collapse) accesses each segment
    represents.  Several segments of one chunk may belong to the same plan
    (a long stream spans chunks) and a chunk may carry many plans (short
    streams fuse).
    """

    lines: np.ndarray
    seg_bounds: np.ndarray
    seg_plan: np.ndarray
    seg_accesses: np.ndarray

    @property
    def segments(self) -> int:
        """Number of per-plan segments in the chunk."""
        return int(self.seg_plan.shape[0])


def splice_line_chunks(
    streams: "Sequence[Iterable[LineChunk]]",
    line_offsets: "Sequence[int] | np.ndarray",
    chunk_lines: int = DEFAULT_CHUNK_ACCESSES,
) -> Iterator[SplicedLineChunk]:
    """Fuse per-plan :class:`LineChunk` streams into one spliced super-stream.

    Streams are consumed in order (plan 0 exhausted before plan 1 starts), so
    within the super-stream each plan occupies one contiguous run of
    segments.  Every incoming chunk becomes one segment with its plan's line
    offset added; segments accumulate until roughly ``chunk_lines`` lines are
    buffered, then flush as one :class:`SplicedLineChunk`.  Incoming chunks
    are never split, so a chunk bounded by ``chunk_accesses`` upstream keeps
    the spliced chunks bounded as well.

    The caller provides ``line_offsets`` that give each plan a disjoint,
    set-mapping-preserving slice of the line space; with such offsets a
    single warm-started simulator pass over the spliced stream is equivalent
    to one cold pass per plan (no two plans ever share a cache line, so
    cross-plan accesses can neither hit each other nor change each other's
    stack distances).
    """
    check_positive_int(chunk_lines, "chunk_lines")
    if len(line_offsets) != len(streams):
        raise ValueError(
            f"got {len(streams)} streams but {len(line_offsets)} line offsets"
        )
    buf_lines: list[np.ndarray] = []
    buf_plan: list[int] = []
    buf_accesses: list[int] = []
    buffered = 0

    def flush() -> SplicedLineChunk:
        nonlocal buffered
        lengths = np.array([lines.shape[0] for lines in buf_lines], dtype=np.int64)
        bounds = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=bounds[1:])
        chunk = SplicedLineChunk(
            lines=(
                np.concatenate(buf_lines)
                if buf_lines
                else np.zeros(0, dtype=np.int64)
            ),
            seg_bounds=bounds,
            seg_plan=np.array(buf_plan, dtype=np.int64),
            seg_accesses=np.array(buf_accesses, dtype=np.int64),
        )
        buf_lines.clear()
        buf_plan.clear()
        buf_accesses.clear()
        buffered = 0
        return chunk

    for plan_index, stream in enumerate(streams):
        offset = int(line_offsets[plan_index])
        if offset < 0:
            raise ValueError(f"line offsets must be nonnegative, got {offset}")
        for chunk in stream:
            buf_lines.append(chunk.lines + offset if offset else chunk.lines)
            buf_plan.append(plan_index)
            buf_accesses.append(chunk.accesses)
            buffered += int(chunk.lines.shape[0])
            if buffered >= chunk_lines:
                yield flush()
    if buf_plan:
        yield flush()


def _nest_min_element(nest: LeafNest, min_offset: int) -> int:
    """Smallest element index any instance of the nest can touch."""
    low = nest.base + min_offset
    if nest.outer_count > 1:
        low += min(0, (nest.outer_count - 1) * nest.outer_stride)
    if nest.inner_count > 1:
        low += min(0, (nest.inner_count - 1) * nest.inner_stride)
    if nest.elements_per_call > 1:
        low += min(0, (nest.elements_per_call - 1) * nest.elem_stride)
    return low


def _analytic_lines_per_call(
    nest: LeafNest,
    bases: np.ndarray,
    line_size: int,
    element_size: int,
    base_address: int,
) -> int:
    """Lines per call when the nest collapses analytically, else 0.

    A nest collapses analytically when every call is a unit-stride pass over
    whole cache lines: contiguous elements (``elem_stride == 1``), a call
    length that is a multiple of the line length, and line-aligned bases and
    strides.  Each call then touches exactly ``elements_per_call / epl``
    consecutive lines, each ``epl`` times per pass, so its collapsed form is
    known without expanding per-element addresses.
    """
    if nest.elem_stride != 1:
        return 0
    if line_size % element_size != 0:
        return 0
    epl = line_size // element_size  # elements per line
    epc = nest.elements_per_call
    if epc % epl != 0:
        return 0
    if nest.outer_count > 1 and (nest.outer_stride * element_size) % line_size != 0:
        return 0
    if nest.inner_count > 1 and (nest.inner_stride * element_size) % line_size != 0:
        return 0
    if base_address % line_size != 0:
        return 0
    if np.any((bases * element_size) % line_size != 0):
        return 0
    return epc // epl


def _write_pass_elidable(
    nest: LeafNest,
    element_size: int,
    line_size: int,
    num_sets: int,
    ways: int,
) -> bool:
    """Whether the write pass of every call of ``nest`` may be elided.

    A codelet call touches its element block twice: a read pass immediately
    followed by a write pass over the same addresses.  When no cache set
    receives more than ``ways`` of the call's distinct lines (the per-set
    *cohort* bound), every write-pass access finds its line within the
    ``ways`` most recently used distinct lines of its set — a guaranteed hit
    whose re-reference leaves the set's final recency order exactly as the
    read pass left it (re-applying an access sequence to the state it
    produced reproduces that state), and which, being a hit, never reaches
    the next cache level.  Such write passes can be dropped from the emitted
    stream without changing any hierarchy statistic at any level; the raw
    ``accesses`` bookkeeping is unaffected.

    The cohort test is conservative: it is evaluated exactly when the
    element stride is a whole number of lines (an arithmetic line
    progression distributes over ``num_sets / gcd`` sets) or a divisor of
    the line size (the call spans a short consecutive line run), and
    anything else keeps the doubled emission.
    """
    elements = nest.elements_per_call
    if elements == 1:
        return True  # read and write hit the same single line back to back
    stride_bytes = nest.elem_stride * element_size
    if stride_bytes <= 0:
        return False
    if stride_bytes % line_size == 0:
        sets_hit = max(num_sets // math.gcd(stride_bytes // line_size, num_sets), 1)
        return -(-elements // sets_hit) <= ways
    if line_size % stride_bytes == 0:
        span = (elements * stride_bytes + line_size - 1) // line_size + 1
        return span <= num_sets * ways
    return False


def _lines_of_elements(
    grid: np.ndarray, base_address: int, element_size: int, line_size: int
) -> np.ndarray:
    """Cache-line numbers of nonnegative element indices.

    Equivalent to ``(base_address + grid * element_size) // line_size`` but
    expressed as a right shift when the geometry allows it (power-of-two
    elements per line, element-aligned base) — integer division is by far
    the slowest ALU pass of the expansion pipeline.
    """
    if line_size % element_size == 0 and base_address % element_size == 0:
        ratio = line_size // element_size
        if ratio & (ratio - 1) == 0:
            shift = ratio.bit_length() - 1
            base = base_address // element_size
            return (base + grid) >> shift if base else grid >> shift
    return (base_address + grid * element_size) // line_size


def _expand_group_analytic(
    k: int,
    outer_count: int,
    inner_count: int,
    lines_per_call: int,
    passes: int,
    bases: np.ndarray,
    outer_stride: int,
    inner_stride: int,
    line_size: int,
    element_size: int,
    base_address: int,
) -> np.ndarray:
    """Collapsed line numbers of a group of line-aligned unit-stride nests.

    Returns shape ``(instances, emitted_per_instance)``: per call, one line
    when the call fits a single line (the read and the write pass collapse
    together), otherwise the ``lines_per_call`` run once (``passes == 1``,
    the write pass elided) or twice (read pass then write pass, each already
    collapsed to one entry per line).
    """
    base_lines = (base_address + bases * element_size) // line_size
    outer_lines = outer_stride * element_size // line_size
    inner_lines = inner_stride * element_size // line_size
    j = np.arange(outer_count, dtype=np.int64) * outer_lines
    kk = np.arange(inner_count, dtype=np.int64) * inner_lines
    grid = base_lines[:, None, None] + j[None, :, None] + kk[None, None, :]
    runs = grid[..., None] + np.arange(lines_per_call, dtype=np.int64)
    if lines_per_call == 1 or passes == 1:
        return runs.reshape(bases.shape[0], -1)
    doubled = np.broadcast_to(
        runs[:, :, :, None, :],
        (bases.shape[0], outer_count, inner_count, 2, lines_per_call),
    )
    return doubled.reshape(bases.shape[0], -1)


def _expand_group_raw(
    k: int,
    outer_count: int,
    inner_count: int,
    passes: int,
    bases: np.ndarray,
    outer_stride: int,
    inner_stride: int,
    elem_stride: int,
    line_size: int,
    element_size: int,
    base_address: int,
) -> np.ndarray:
    """Per-access line numbers of a group of same-shape nests.

    ``passes == 2`` emits the read and the write pass per call; ``passes ==
    1`` emits only the read pass (the write pass was proven an elidable
    guaranteed hit).
    """
    elements = 1 << k
    j = np.arange(outer_count, dtype=np.int64) * outer_stride
    kk = np.arange(inner_count, dtype=np.int64) * inner_stride
    e = np.arange(elements, dtype=np.int64) * elem_stride
    grid = (
        bases[:, None, None, None]
        + j[None, :, None, None]
        + kk[None, None, :, None]
        + e[None, None, None, :]
    )
    lines = _lines_of_elements(grid, base_address, element_size, line_size)
    if passes == 1:
        return lines.reshape(bases.shape[0], -1)
    doubled = np.broadcast_to(
        lines[:, :, :, None, :],
        (bases.shape[0], outer_count, inner_count, 2, elements),
    )
    return doubled.reshape(bases.shape[0], -1)


class _BlockTable:
    """Per-block metadata and per-instance arrays collected from a nest stream.

    Collecting first and chunking afterwards keeps the Python-level work
    proportional to the number of *blocks* (the plan's structure) while every
    per-instance quantity — stream position, base, chunk assignment, scatter
    offset — is handled with vectorised array operations.  The per-instance
    arrays are a few machine words per nest, orders of magnitude smaller than
    the trace itself.
    """

    def __init__(
        self,
        line_size: int,
        element_size: int,
        base_address: int,
        chunk_accesses: int,
        hit_elision_sets: int | None = None,
        hit_elision_ways: int = 1,
    ):
        self.line_size = line_size
        self.element_size = element_size
        self.base_address = base_address
        self.chunk_accesses = chunk_accesses
        self.hit_elision_sets = hit_elision_sets
        self.hit_elision_ways = hit_elision_ways
        self.nests: list[LeafNest] = []
        self.bases: list[np.ndarray] = []
        self.starts: list[np.ndarray] = []
        self.raw: list[int] = []
        self.emitted: list[int] = []
        self.group_ids: list[int] = []
        self._groups: dict[tuple, int] = {}
        self.group_info: list[tuple] = []

    def add(self, block: NestBlock) -> None:
        nest = block.nest
        if 2 * nest.total_elements > self.chunk_accesses and nest.calls > 1:
            # A single instance overflows the chunk budget: split it along its
            # outer (or, failing that, inner) loop axis into budget-sized
            # sub-nests.  The pieces cover the original call sequence in
            # order, so expansion and collapse are unchanged; only the chunk
            # boundaries (which are semantically irrelevant) move.
            elements = nest.elements_per_call
            if nest.outer_count > 1:
                per_row = nest.inner_count * 2 * elements
                rows = max(1, self.chunk_accesses // per_row)
                for row in range(0, nest.outer_count, rows):
                    top = min(row + rows, nest.outer_count)
                    sub = replace(
                        nest,
                        base=nest.base + row * nest.outer_stride,
                        outer_count=top - row,
                    )
                    self.add(NestBlock(sub, block.offsets, block.starts + row * per_row))
                return
            per_row = 2 * elements
            rows = max(1, self.chunk_accesses // per_row)
            for row in range(0, nest.inner_count, rows):
                top = min(row + rows, nest.inner_count)
                sub = replace(
                    nest,
                    base=nest.base + row * nest.inner_stride,
                    inner_count=top - row,
                )
                self.add(NestBlock(sub, block.offsets, block.starts + row * per_row))
            return
        offsets = block.offsets
        bases = nest.base + offsets if offsets.shape[0] > 1 or offsets[0] else None
        if bases is None:
            bases = np.full(1, nest.base, dtype=np.int64)
        min_element = _nest_min_element(nest, int(bases.min()) - nest.base)
        if self.base_address + min_element * self.element_size < 0:
            raise ValueError(
                f"nest {nest} produces negative byte addresses "
                f"(min element index {min_element})"
            )
        lines_per_call = _analytic_lines_per_call(
            nest, bases, self.line_size, self.element_size, self.base_address
        )
        passes = 2
        elision_sets = self.hit_elision_sets
        if elision_sets is not None:
            if lines_per_call:
                # Line-aligned unit-stride calls touch ``lines_per_call``
                # consecutive lines; their per-set cohort is bounded by
                # ceil(lines_per_call / sets).
                if lines_per_call <= elision_sets * self.hit_elision_ways:
                    passes = 1
            elif _write_pass_elidable(
                nest,
                self.element_size,
                self.line_size,
                elision_sets,
                self.hit_elision_ways,
            ):
                passes = 1
        if lines_per_call == 1:
            # The read and the write pass over a one-line call collapse to a
            # single emitted entry.
            emitted = nest.calls
        elif lines_per_call:
            emitted = nest.calls * passes * lines_per_call
        else:
            emitted = passes * nest.total_elements
        key = (
            nest.k,
            nest.outer_count,
            nest.inner_count,
            nest.outer_stride,
            nest.inner_stride,
            nest.elem_stride,
            lines_per_call,
            passes,
        )
        group_id = self._groups.get(key)
        if group_id is None:
            group_id = self._groups[key] = len(self.group_info)
            self.group_info.append(key + (emitted,))
        self.nests.append(nest)
        self.bases.append(bases)
        self.starts.append(block.starts)
        self.raw.append(2 * nest.total_elements)
        self.emitted.append(emitted)
        self.group_ids.append(group_id)


def _expand_chunk(
    table: _BlockTable,
    bases: np.ndarray,
    group_ids: np.ndarray,
    emitted: np.ndarray,
) -> np.ndarray:
    """Expand one chunk's instances (given in execution order) to line numbers."""
    scatter_starts = np.zeros(emitted.shape[0], dtype=np.int64)
    np.cumsum(emitted[:-1], out=scatter_starts[1:])
    total_emitted = int(scatter_starts[-1] + emitted[-1])
    out = np.empty(total_emitted, dtype=np.int64)
    for group_id in np.unique(group_ids):
        (
            k,
            outer_count,
            inner_count,
            ostride,
            istride,
            estride,
            lines_per_call,
            passes,
            per,
        ) = table.group_info[group_id]
        mask = group_ids == group_id
        group_bases = bases[mask]
        if lines_per_call:
            block = _expand_group_analytic(
                k, outer_count, inner_count, lines_per_call, passes, group_bases,
                ostride, istride,
                table.line_size, table.element_size, table.base_address,
            )
        else:
            block = _expand_group_raw(
                k, outer_count, inner_count, passes, group_bases,
                ostride, istride, estride,
                table.line_size, table.element_size, table.base_address,
            )
        positions = scatter_starts[mask][:, None] + np.arange(per, dtype=np.int64)[None, :]
        out[positions.reshape(-1)] = block.reshape(-1)
    return out


def stream_line_chunks(
    nests: Iterable[LeafNest | NestBlock],
    line_size: int,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    base_address: int = 0,
    chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
    hit_elision_sets: int | None = None,
    hit_elision_ways: int = 1,
) -> Iterator[LineChunk]:
    """Stream a nest sequence as bounded, duplicate-collapsed line chunks.

    Accepts :class:`NestBlock` groups (as produced by
    :meth:`repro.wht.interpreter.PlanInterpreter.iter_nest_blocks`, instances
    ordered by their ``starts``) or plain :class:`LeafNest` events (taken in
    iteration order), and yields :class:`LineChunk` batches of roughly
    ``chunk_accesses`` raw accesses each (instances larger than the budget
    are split along their loop axes; only a single oversized codelet *call*,
    which never occurs for realistic leaf sizes, can exceed the bound).
    Concatenating the chunks' ``lines``
    yields exactly ``collapse_consecutive(full_trace.line_addresses(...))``;
    the full trace is never materialised — only per-nest descriptors and one
    bounded chunk of expanded lines exist at any time.

    ``hit_elision_sets``/``hit_elision_ways`` (the first cache level's set
    count and associativity) additionally drop each codelet call's *write
    pass* whenever no set provably receives more than ``hit_elision_ways``
    of the call's lines (see :func:`_write_pass_elidable`): those accesses
    are guaranteed hits that leave every simulator's final state unchanged
    at every level, so the shortened stream produces bit-identical hierarchy
    statistics while the chunks' raw ``accesses`` counts still include them.
    With the default ``None`` the exact collapsed line sequence is emitted.

    Addresses are validated non-negative here, once, at the pipeline
    boundary — per block, from the nest geometry — so the downstream
    simulators can skip their per-call validation scans.
    """
    check_positive_int(line_size, "line_size")
    check_positive_int(element_size, "element_size")
    check_positive_int(chunk_accesses, "chunk_accesses")
    if hit_elision_sets is not None:
        check_positive_int(hit_elision_sets, "hit_elision_sets")
        check_positive_int(hit_elision_ways, "hit_elision_ways")
    if base_address < 0:
        raise ValueError(f"base_address must be nonnegative, got {base_address}")

    table = _BlockTable(
        line_size,
        element_size,
        base_address,
        chunk_accesses,
        hit_elision_sets,
        hit_elision_ways,
    )
    cursor = 0
    for item in nests:
        if isinstance(item, NestBlock):
            block = item
            if block.instances == 0:
                continue
            cursor = max(
                cursor,
                int(block.starts.max()) + block.accesses_per_instance,
            )
        else:
            block = NestBlock(
                item, _SINGLE_OFFSET, np.array([cursor], dtype=np.int64)
            )
            cursor += block.accesses_per_instance
        table.add(block)
    if not table.nests:
        return

    counts = np.array([b.shape[0] for b in table.bases])
    block_ids = np.repeat(np.arange(len(table.nests)), counts)
    all_bases = np.concatenate(table.bases)
    all_starts = np.concatenate(table.starts)
    table.bases.clear()
    table.starts.clear()
    order = np.argsort(all_starts, kind="stable")
    del all_starts

    sorted_blocks = block_ids[order]
    sorted_bases = all_bases[order]
    del block_ids, all_bases, order
    raw_arr = np.array(table.raw, dtype=np.int64)
    emitted_arr = np.array(table.emitted, dtype=np.int64)
    gid_arr = np.array(table.group_ids)
    sorted_raw = raw_arr[sorted_blocks]
    sorted_emitted = emitted_arr[sorted_blocks]
    sorted_gids = gid_arr[sorted_blocks]
    cumulative_raw = np.cumsum(sorted_raw)
    del sorted_raw

    instances = sorted_blocks.shape[0]
    prev_last: int | None = None
    low = 0
    consumed_raw = 0
    while low < instances:
        # Greedy chunking: take the shortest instance prefix reaching the
        # access budget (matching a "flush once the buffer fills" stream).
        high = int(
            np.searchsorted(
                cumulative_raw, consumed_raw + chunk_accesses, side="left"
            )
        ) + 1
        high = min(high, instances)
        lines = _expand_chunk(
            table,
            sorted_bases[low:high],
            sorted_gids[low:high],
            sorted_emitted[low:high],
        )
        collapsed, _removed = collapse_consecutive(lines)
        if prev_last is not None and collapsed.shape[0] and int(collapsed[0]) == prev_last:
            collapsed = collapsed[1:]
        if collapsed.shape[0]:
            prev_last = int(collapsed[-1])
        chunk_raw = int(cumulative_raw[high - 1]) - consumed_raw
        consumed_raw += chunk_raw
        low = high
        yield LineChunk(lines=collapsed, accesses=chunk_raw)


def collapse_consecutive(line_addresses: np.ndarray) -> tuple[np.ndarray, int]:
    """Remove runs of consecutive identical line addresses.

    All accesses of a run after the first are guaranteed hits in any level of
    the hierarchy and do not change LRU state, so dropping them preserves the
    miss count exactly while shrinking the trace (typically by the number of
    elements per line for unit-stride passes).  Returns the collapsed array
    and the number of removed (guaranteed-hit) accesses.
    """
    arr = np.asarray(line_addresses)
    if arr.ndim != 1:
        raise ValueError("line_addresses must be a 1-D array")
    if arr.size == 0:
        return arr.astype(np.int64, copy=False), 0
    keep = np.empty(arr.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = arr[1:] != arr[:-1]
    collapsed = arr[keep].astype(np.int64, copy=False)
    return collapsed, int(arr.shape[0] - collapsed.shape[0])
