"""Simulated machine substrate.

The paper measures cycle counts, instruction counts and data-cache misses with
PAPI hardware counters on an AMD Opteron.  Neither the hardware nor PAPI is
available here, and wall-clock timing of interpreted Python would be dominated
by interpreter overhead rather than by the cache effects the paper studies
(see DESIGN.md, substitution table).  This subpackage therefore provides an
execution-driven *simulated machine*:

* :mod:`repro.machine.cache` — direct-mapped / set-associative LRU cache
  simulators (reference per-access versions plus vectorised trace versions),
* :mod:`repro.machine.hierarchy` — a two-level data-cache hierarchy,
* :mod:`repro.machine.trace` — memory-trace generation from plan execution,
* :mod:`repro.machine.cpu` — instruction-cost and cycle models,
* :mod:`repro.machine.counters` — a PAPI-like counter facade,
* :mod:`repro.machine.machine` — :class:`SimulatedMachine`, the top-level
  object that turns a plan into a :class:`Measurement`,
* :mod:`repro.machine.configs` — machine presets (scaled default,
  Opteron-like, tiny test machine).
"""

from repro.machine.cache import (
    CacheConfig,
    CacheStatistics,
    DirectMappedCache,
    NWayLRUCache,
    SetAssociativeLRUCache,
    TwoWayLRUCache,
    make_cache,
    simulate_trace,
)
from repro.machine.hierarchy import HierarchyStatistics, MemoryHierarchy
from repro.machine.trace import (
    LineChunk,
    MemoryTrace,
    SplicedLineChunk,
    splice_line_chunks,
    stream_line_chunks,
    trace_from_nests,
)
from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.machine.measurement import Measurement
from repro.machine.counters import PAPI_EVENTS, CounterSet, counters_from_measurement
from repro.machine.machine import (
    MachineConfig,
    PreparedPlan,
    PreparedPlanCache,
    SimulatedMachine,
)
from repro.machine.configs import (
    default_machine,
    default_machine_config,
    opteron_like,
    opteron_like_config,
    tiny_machine,
    tiny_machine_config,
)

__all__ = [
    "CacheConfig",
    "CacheStatistics",
    "DirectMappedCache",
    "NWayLRUCache",
    "SetAssociativeLRUCache",
    "TwoWayLRUCache",
    "make_cache",
    "simulate_trace",
    "HierarchyStatistics",
    "MemoryHierarchy",
    "LineChunk",
    "MemoryTrace",
    "SplicedLineChunk",
    "splice_line_chunks",
    "stream_line_chunks",
    "trace_from_nests",
    "CycleModel",
    "InstructionCostModel",
    "Measurement",
    "PAPI_EVENTS",
    "CounterSet",
    "counters_from_measurement",
    "MachineConfig",
    "PreparedPlan",
    "PreparedPlanCache",
    "SimulatedMachine",
    "default_machine",
    "default_machine_config",
    "opteron_like",
    "opteron_like_config",
    "tiny_machine",
    "tiny_machine_config",
]
