"""Machine presets.

Three configurations are provided:

* :func:`default_machine_config` — the *scaled* machine used by the default
  experiment campaigns.  Its cache hierarchy keeps the Opteron's structure
  (two levels, 64-byte lines, 2-way L1, 16-way L2) but is scaled down so that
  the paper's in-L1 / out-of-L1 regimes are crossed at transform sizes that a
  pure-Python trace simulation can sweep in seconds: the L1 holds ``2^11``
  doubles (so the default "small" size 2^9 occupies a quarter of L1, just as
  the paper's 2^9 sits comfortably inside the Opteron's L1) and the L2 holds
  ``2^13`` doubles (so the default "large" size 2^13 fills L2 but overflows
  L1, mirroring the paper's 2^18 relative to the real 64 KB / 1 MB hierarchy).
* :func:`opteron_like_config` — the full Opteron 244 geometry (64 KB 2-way L1,
  1 MB 16-way L2).  Usable for smaller sweeps or when longer runtimes are
  acceptable.
* :func:`tiny_machine_config` — a very small machine for unit tests, where
  cache boundaries are crossed by transforms of only a few dozen elements.
"""

from __future__ import annotations

from repro.machine.cache import CacheConfig
from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.util.rng import RandomState

__all__ = [
    "default_machine_config",
    "default_machine",
    "opteron_like_config",
    "opteron_like",
    "tiny_machine_config",
    "tiny_machine",
    "MACHINE_PRESETS",
]


def default_machine_config(noise_sigma: float = 0.05) -> MachineConfig:
    """The scaled two-level machine used by the default experiments."""
    return MachineConfig(
        name="scaled-opteron",
        l1=CacheConfig(size_bytes=16 * 1024, line_size=64, associativity=2, name="L1d"),
        l2=CacheConfig(size_bytes=64 * 1024, line_size=64, associativity=16, name="L2"),
        instruction_model=InstructionCostModel(),
        cycle_model=CycleModel(noise_sigma=noise_sigma),
    )


def opteron_like_config(noise_sigma: float = 0.05) -> MachineConfig:
    """The paper's Opteron 244 cache geometry (64 KB 2-way L1, 1 MB 16-way L2)."""
    return MachineConfig(
        name="opteron-244",
        l1=CacheConfig(size_bytes=64 * 1024, line_size=64, associativity=2, name="L1d"),
        l2=CacheConfig(size_bytes=1024 * 1024, line_size=64, associativity=16, name="L2"),
        instruction_model=InstructionCostModel(),
        cycle_model=CycleModel(noise_sigma=noise_sigma),
    )


def tiny_machine_config(noise_sigma: float = 0.0) -> MachineConfig:
    """A miniature machine whose cache boundaries sit at tiny transform sizes.

    L1 holds 32 doubles (2^5) and L2 holds 256 doubles (2^8); unit tests can
    exercise in-cache and out-of-cache behaviour with transforms of size 2^4
    to 2^9 in microseconds.  Noise is disabled by default so tests are exact.
    """
    return MachineConfig(
        name="tiny",
        l1=CacheConfig(size_bytes=256, line_size=32, associativity=2, name="L1d"),
        l2=CacheConfig(size_bytes=2048, line_size=32, associativity=4, name="L2"),
        instruction_model=InstructionCostModel(),
        cycle_model=CycleModel(noise_sigma=noise_sigma),
    )


def default_machine(noise_sigma: float = 0.05, rng: RandomState = None) -> SimulatedMachine:
    """A ready-to-use :class:`SimulatedMachine` with the default configuration."""
    return SimulatedMachine(default_machine_config(noise_sigma=noise_sigma), rng=rng)


def opteron_like(noise_sigma: float = 0.05, rng: RandomState = None) -> SimulatedMachine:
    """A ready-to-use machine with the Opteron-like configuration."""
    return SimulatedMachine(opteron_like_config(noise_sigma=noise_sigma), rng=rng)


def tiny_machine(noise_sigma: float = 0.0, rng: RandomState = None) -> SimulatedMachine:
    """A ready-to-use miniature machine for tests and quick examples."""
    return SimulatedMachine(tiny_machine_config(noise_sigma=noise_sigma), rng=rng)


#: Mapping of preset names to configuration factories (used by the CLI-style
#: experiment entry points and by the documentation).
MACHINE_PRESETS = {
    "default": default_machine_config,
    "scaled-opteron": default_machine_config,
    "opteron": opteron_like_config,
    "opteron-244": opteron_like_config,
    "tiny": tiny_machine_config,
}
