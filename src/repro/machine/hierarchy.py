"""Two-level data-cache hierarchy.

The Opteron of the paper has a 64 KB 2-way L1 data cache and a 1 MB 16-way L2.
:class:`MemoryHierarchy` models an inclusive two-level hierarchy: every access
probes L1, and L1 misses probe L2.  Both levels use the fastest exact
simulator available for their geometry (vectorised for direct-mapped, 2-way
and arbitrary N-way LRU configurations).

The default entry point is :meth:`MemoryHierarchy.process_line_chunks`, which
consumes the streamed, duplicate-collapsed line chunks produced by
:func:`repro.machine.trace.stream_line_chunks`.  Simulator state carries
across chunks (the vectorised caches support warm continuation), so the
resulting miss counts are bit-identical to a single-shot simulation of the
full trace while only ever holding one bounded chunk in memory.
:meth:`MemoryHierarchy.process_trace` is retained as the eager compatibility
view over a fully materialised :class:`MemoryTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.machine.cache import (
    CacheConfig,
    CacheSimulator,
    make_cache,
)
from repro.machine.trace import LineChunk, MemoryTrace, collapse_consecutive

__all__ = ["HierarchyStatistics", "MemoryHierarchy"]


@dataclass(frozen=True)
class HierarchyStatistics:
    """Access/miss counts of one trace run through the hierarchy."""

    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int

    @property
    def l1_miss_ratio(self) -> float:
        """L1 misses / L1 accesses."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        """L2 misses / L2 accesses."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat dictionary view."""
        return {
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l1_miss_ratio": self.l1_miss_ratio,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "l2_miss_ratio": self.l2_miss_ratio,
        }


class MemoryHierarchy:
    """An inclusive L1 + L2 data-cache hierarchy fed by element traces."""

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig | None = None,
        vectorized: bool = True,
    ):
        if l2 is not None and l2.size_bytes < l1.size_bytes:
            raise ValueError(
                f"L2 ({l2.size_bytes} B) must be at least as large as L1 "
                f"({l1.size_bytes} B)"
            )
        self.l1_config = l1
        self.l2_config = l2
        self.vectorized = vectorized

    def build_l1(self) -> CacheSimulator:
        """A fresh (cold) L1 simulator."""
        return make_cache(self.l1_config, vectorized=self.vectorized)

    def build_l2(self) -> CacheSimulator | None:
        """A fresh (cold) L2 simulator, or ``None`` when no L2 is configured."""
        if self.l2_config is None:
            return None
        return make_cache(self.l2_config, vectorized=self.vectorized)

    def process_line_chunks(self, chunks: Iterable[LineChunk]) -> HierarchyStatistics:
        """Stream collapsed line chunks through warm-started simulators.

        Each chunk's lines are simulated at L1 and the surviving miss stream
        at L2, with simulator state carried across chunk boundaries, so the
        returned statistics are bit-identical to simulating the whole trace
        in one shot — regardless of how the stream was chunked.  Consecutive
        duplicate lines may already be collapsed away (they are guaranteed
        hits at every level and do not change LRU state; see
        :func:`repro.machine.trace.collapse_consecutive`); each chunk's raw
        ``accesses`` count is what L1 reports.
        """
        l1 = self.build_l1()
        l2 = self.build_l2()
        offset_bits = self.l1_config.offset_bits
        total_accesses = 0
        l2_accesses = 0
        l2_misses = 0
        for chunk in chunks:
            total_accesses += chunk.accesses
            if chunk.lines.shape[0] == 0:
                continue
            # Rebuild byte addresses at line granularity for the simulators
            # (the sub-line offset is irrelevant to hit/miss behaviour).
            addresses = chunk.lines << offset_bits
            l1_miss_mask = l1.simulate(addresses, check=False)
            if l2 is not None:
                miss_addresses = addresses[l1_miss_mask]
                if miss_addresses.shape[0]:
                    l2.simulate(miss_addresses, check=False)
        l1_misses = l1.stats.misses
        if l2 is not None:
            l2_accesses = l2.stats.accesses
            l2_misses = l2.stats.misses
        return HierarchyStatistics(
            l1_accesses=total_accesses,
            l1_misses=l1_misses,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
        )

    def process_trace(self, trace: MemoryTrace) -> HierarchyStatistics:
        """Run a fully materialised trace through cold caches.

        Compatibility view over :meth:`process_line_chunks`: the trace is
        validated once, collapsed to line granularity and simulated as a
        single chunk, which produces exactly the statistics of the seed
        implementation (and of any other chunking of the same trace).
        """
        addresses = trace.addresses
        total_accesses = int(addresses.shape[0])
        if total_accesses == 0:
            return HierarchyStatistics(0, 0, 0, 0)
        if int(addresses.min()) < 0:
            raise ValueError("addresses must be nonnegative")

        l1_lines = addresses >> self.l1_config.offset_bits
        collapsed_lines, _removed = collapse_consecutive(l1_lines)
        chunk = LineChunk(lines=collapsed_lines, accesses=total_accesses)
        return self.process_line_chunks([chunk])

    def describe(self) -> str:
        """Human-readable summary of the hierarchy geometry."""
        parts = [self.l1_config.describe()]
        if self.l2_config is not None:
            parts.append(self.l2_config.describe())
        else:
            parts.append("no L2")
        return " | ".join(parts)
