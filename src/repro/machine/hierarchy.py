"""Two-level data-cache hierarchy.

The Opteron of the paper has a 64 KB 2-way L1 data cache and a 1 MB 16-way L2.
:class:`MemoryHierarchy` models an inclusive two-level hierarchy: every access
probes L1, and L1 misses probe L2.  The L1 level is simulated with the fastest
exact simulator available for its geometry (vectorised for direct-mapped and
2-way configurations); the L2 level only ever sees the L1 miss stream, which
is orders of magnitude shorter, so the reference LRU simulator is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import (
    CacheConfig,
    CacheSimulator,
    make_cache,
)
from repro.machine.trace import MemoryTrace, collapse_consecutive

__all__ = ["HierarchyStatistics", "MemoryHierarchy"]


@dataclass(frozen=True)
class HierarchyStatistics:
    """Access/miss counts of one trace run through the hierarchy."""

    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int

    @property
    def l1_miss_ratio(self) -> float:
        """L1 misses / L1 accesses."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        """L2 misses / L2 accesses."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat dictionary view."""
        return {
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l1_miss_ratio": self.l1_miss_ratio,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "l2_miss_ratio": self.l2_miss_ratio,
        }


class MemoryHierarchy:
    """An inclusive L1 + L2 data-cache hierarchy fed by element traces."""

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig | None = None,
        vectorized: bool = True,
    ):
        if l2 is not None and l2.size_bytes < l1.size_bytes:
            raise ValueError(
                f"L2 ({l2.size_bytes} B) must be at least as large as L1 "
                f"({l1.size_bytes} B)"
            )
        self.l1_config = l1
        self.l2_config = l2
        self.vectorized = vectorized

    def build_l1(self) -> CacheSimulator:
        """A fresh (cold) L1 simulator."""
        return make_cache(self.l1_config, vectorized=self.vectorized)

    def build_l2(self) -> CacheSimulator | None:
        """A fresh (cold) L2 simulator, or ``None`` when no L2 is configured."""
        if self.l2_config is None:
            return None
        return make_cache(self.l2_config, vectorized=self.vectorized)

    def process_trace(self, trace: MemoryTrace) -> HierarchyStatistics:
        """Run a full trace through cold caches and return the miss counts.

        Runs of consecutive accesses to the same L1 line are collapsed before
        simulation; they are guaranteed hits at every level and do not change
        LRU state, so the miss counts are exact while the simulated trace is
        typically several times shorter (see
        :func:`repro.machine.trace.collapse_consecutive`).
        """
        addresses = trace.addresses
        total_accesses = int(addresses.shape[0])
        if total_accesses == 0:
            return HierarchyStatistics(0, 0, 0, 0)

        l1_lines = addresses >> self.l1_config.offset_bits
        collapsed_lines, _removed = collapse_consecutive(l1_lines)
        # Rebuild byte addresses at line granularity for the simulators (the
        # sub-line offset is irrelevant to hit/miss behaviour).
        collapsed_addresses = collapsed_lines << self.l1_config.offset_bits

        l1 = self.build_l1()
        l1_miss_mask = l1.simulate(collapsed_addresses)
        l1_misses = int(l1_miss_mask.sum())

        l2_accesses = 0
        l2_misses = 0
        if self.l2_config is not None:
            l2 = self.build_l2()
            assert l2 is not None
            miss_addresses = collapsed_addresses[l1_miss_mask]
            l2_accesses = int(miss_addresses.shape[0])
            if l2_accesses:
                l2_miss_mask = l2.simulate(miss_addresses)
                l2_misses = int(l2_miss_mask.sum())

        return HierarchyStatistics(
            l1_accesses=total_accesses,
            l1_misses=l1_misses,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
        )

    def describe(self) -> str:
        """Human-readable summary of the hierarchy geometry."""
        parts = [self.l1_config.describe()]
        if self.l2_config is not None:
            parts.append(self.l2_config.describe())
        else:
            parts.append("no L2")
        return " | ".join(parts)
