"""Two-level data-cache hierarchy.

The Opteron of the paper has a 64 KB 2-way L1 data cache and a 1 MB 16-way L2.
:class:`MemoryHierarchy` models an inclusive two-level hierarchy: every access
probes L1, and L1 misses probe L2.  Both levels use the fastest exact
simulator available for their geometry (vectorised for direct-mapped, 2-way
and arbitrary N-way LRU configurations).

The default entry point is :meth:`MemoryHierarchy.process_line_chunks`, which
consumes the streamed, duplicate-collapsed line chunks produced by
:func:`repro.machine.trace.stream_line_chunks`.  Simulator state carries
across chunks (the vectorised caches support warm continuation), so the
resulting miss counts are bit-identical to a single-shot simulation of the
full trace while only ever holding one bounded chunk in memory.
:meth:`MemoryHierarchy.process_trace` is retained as the eager compatibility
view over a fully materialised :class:`MemoryTrace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.machine.cache import (
    CacheConfig,
    CacheSimulator,
    make_cache,
)
from repro.machine.trace import (
    LineChunk,
    MemoryTrace,
    SplicedLineChunk,
    collapse_consecutive,
)

__all__ = ["HierarchyStatistics", "MemoryHierarchy"]


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


@dataclass(frozen=True)
class HierarchyStatistics:
    """Access/miss counts of one trace run through the hierarchy."""

    l1_accesses: int
    l1_misses: int
    l2_accesses: int
    l2_misses: int

    @property
    def l1_miss_ratio(self) -> float:
        """L1 misses / L1 accesses."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_miss_ratio(self) -> float:
        """L2 misses / L2 accesses."""
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat dictionary view."""
        return {
            "l1_accesses": self.l1_accesses,
            "l1_misses": self.l1_misses,
            "l1_miss_ratio": self.l1_miss_ratio,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "l2_miss_ratio": self.l2_miss_ratio,
        }


class MemoryHierarchy:
    """An inclusive L1 + L2 data-cache hierarchy fed by element traces."""

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig | None = None,
        vectorized: bool = True,
    ):
        if l2 is not None and l2.size_bytes < l1.size_bytes:
            raise ValueError(
                f"L2 ({l2.size_bytes} B) must be at least as large as L1 "
                f"({l1.size_bytes} B)"
            )
        self.l1_config = l1
        self.l2_config = l2
        self.vectorized = vectorized

    def build_l1(self) -> CacheSimulator:
        """A fresh (cold) L1 simulator."""
        return make_cache(self.l1_config, vectorized=self.vectorized)

    def build_l2(self) -> CacheSimulator | None:
        """A fresh (cold) L2 simulator, or ``None`` when no L2 is configured."""
        if self.l2_config is None:
            return None
        return make_cache(self.l2_config, vectorized=self.vectorized)

    def process_line_chunks(self, chunks: Iterable[LineChunk]) -> HierarchyStatistics:
        """Stream collapsed line chunks through warm-started simulators.

        Each chunk's lines are simulated at L1 and the surviving miss stream
        at L2, with simulator state carried across chunk boundaries, so the
        returned statistics are bit-identical to simulating the whole trace
        in one shot — regardless of how the stream was chunked.  Consecutive
        duplicate lines may already be collapsed away (they are guaranteed
        hits at every level and do not change LRU state; see
        :func:`repro.machine.trace.collapse_consecutive`); each chunk's raw
        ``accesses`` count is what L1 reports.
        """
        l1 = self.build_l1()
        l2 = self.build_l2()
        offset_bits = self.l1_config.offset_bits
        total_accesses = 0
        l2_accesses = 0
        l2_misses = 0
        for chunk in chunks:
            total_accesses += chunk.accesses
            if chunk.lines.shape[0] == 0:
                continue
            # Rebuild byte addresses at line granularity for the simulators
            # (the sub-line offset is irrelevant to hit/miss behaviour).
            addresses = chunk.lines << offset_bits
            l1_miss_mask = l1.simulate(addresses, check=False)
            if l2 is not None:
                miss_addresses = addresses[l1_miss_mask]
                if miss_addresses.shape[0]:
                    l2.simulate(miss_addresses, check=False)
        l1_misses = l1.stats.misses
        if l2 is not None:
            l2_accesses = l2.stats.accesses
            l2_misses = l2.stats.misses
        return HierarchyStatistics(
            l1_accesses=total_accesses,
            l1_misses=l1_misses,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
        )

    # -- analytic fast paths for full-coverage workloads -------------------------
    #
    # A WHT plan touches every element of its contiguous [0, 2^n) vector, so
    # its trace *fully covers* the byte range [0, footprint).  When such a
    # footprint fits a cache level, no line of that level is ever evicted
    # (a set holding at most ``associativity`` distinct lines never selects a
    # victim), so an access misses exactly when it is the first touch of its
    # line: the level's miss count equals its distinct-line count, computable
    # from the geometry alone.  The predicates below prove the fit *exactly*
    # — contiguous coverage distributes lines across sets uniformly — and the
    # test suite pins the counts against full simulation.

    def _coverage_l2_misses(self, l1_lines: int) -> int | None:
        """Exact L2 miss count of a cold full-coverage run, or ``None``.

        ``l1_lines`` is the footprint in L1 lines; L2 sees each of them at
        least once (every L1 line's first touch is a cold L1 miss), at
        L1-line-granular addresses.  Returns the distinct probed L2 line
        count when those lines provably all stay resident, ``None`` when the
        fit cannot be established.
        """
        l2 = self.l2_config
        if l2 is None or l1_lines <= 0:
            return None
        l1_line_size = self.l1_config.line_size
        if l2.line_size >= l1_line_size:
            # Probed L2 lines form the contiguous range [0, f2).
            f2 = _ceil_div(l1_lines * l1_line_size, l2.line_size)
            return f2 if f2 <= l2.num_lines else None
        # L2 lines are finer than L1 lines: the probes are the L1 line start
        # addresses, one distinct L2 line each, spaced d L2-lines apart.
        d = l1_line_size // l2.line_size
        sets_hit = max(l2.num_sets // math.gcd(d, l2.num_sets), 1)
        if _ceil_div(l1_lines, sets_hit) > l2.associativity:
            return None
        return l1_lines

    def covers_analytically(self, footprint_bytes: int) -> bool:
        """Whether a cold full-coverage run of ``footprint_bytes`` (starting
        at byte 0) has analytically exact statistics — i.e. the footprint
        provably fits L1 (and the induced probe set fits L2).

        "Full coverage" is the caller's contract: the trace must touch
        every L1 line of ``[0, footprint_bytes)`` at least once (true for
        element-granular traces whose element size does not exceed the L1
        line size — consecutive addresses are at most a line apart)."""
        if footprint_bytes <= 0 or footprint_bytes > self.l1_config.size_bytes:
            return False
        if self.l2_config is None:
            return True
        f1 = _ceil_div(footprint_bytes, self.l1_config.line_size)
        return self._coverage_l2_misses(f1) is not None

    def analytic_coverage_stats(
        self, footprint_bytes: int, accesses: int
    ) -> HierarchyStatistics | None:
        """Exact statistics of a cold, fully-covering run that fits L1.

        The caller asserts that the trace touches *every L1 line* of
        ``[0, footprint_bytes)`` (any order, any multiplicity) starting from
        cold caches at base address 0 — true for every WHT plan prepared by
        the simulated machine whenever the element size does not exceed the
        L1 line size.  Returns ``None`` when the fit cannot be proven, in
        which case the trace must be simulated.
        """
        if not self.covers_analytically(footprint_bytes):
            return None
        f1 = _ceil_div(footprint_bytes, self.l1_config.line_size)
        if self.l2_config is None:
            return HierarchyStatistics(accesses, f1, 0, 0)
        f2 = self._coverage_l2_misses(f1)
        if f2 is None:  # pragma: no cover - covers_analytically already checked
            return None
        return HierarchyStatistics(accesses, f1, f1, f2)

    def analytic_l2_misses(self, footprint_bytes: int) -> int | None:
        """Exact L2 miss count of a cold full-coverage run, or ``None``.

        Unlike :meth:`analytic_coverage_stats` this does not require the
        footprint to fit L1: whatever subset of accesses misses L1, every L1
        line reaches L2 at least once, so the L2 misses of a fitting
        footprint are its distinct probed lines regardless of L1 behaviour.
        """
        if self.l2_config is None or footprint_bytes <= 0:
            return None
        if footprint_bytes > self.l2_config.size_bytes:
            return None  # cannot fit; simulate
        return self._coverage_l2_misses(
            _ceil_div(footprint_bytes, self.l1_config.line_size)
        )

    # -- cross-plan batched simulation -------------------------------------------

    def batch_line_offsets(self, span_lines: Sequence[int]) -> np.ndarray:
        """Per-plan line offsets giving each plan a disjoint slice of the
        line space while preserving every level's set mapping.

        ``span_lines[p]`` bounds plan ``p``'s largest touched L1 line + 1.
        Each offset is a multiple of ``lcm(L1 sets x L1 line, L2 sets x L2
        line) / L1 line`` bytes' worth of lines, so shifting a plan's
        addresses by its offset changes tags only; and consecutive offsets
        are at least a span apart, so no two plans ever share a cache line
        at either level.  A warm simulator pass over streams spliced at
        these offsets is therefore equivalent to one cold pass per plan —
        a cross-plan access can neither hit a foreign line nor alter a
        foreign stack distance, and plans occupy contiguous stream runs.
        """
        l1 = self.l1_config
        align_bytes = l1.num_sets * l1.line_size
        if self.l2_config is not None:
            align_bytes = math.lcm(
                align_bytes, self.l2_config.num_sets * self.l2_config.line_size
            )
        unit = _ceil_div(align_bytes, l1.line_size)
        offsets = np.zeros(len(span_lines), dtype=np.int64)
        cursor = 0
        for index, span in enumerate(span_lines):
            if span < 0:
                raise ValueError(f"span_lines must be nonnegative, got {span}")
            offsets[index] = cursor
            cursor += _ceil_div(max(int(span), 1), unit) * unit
        if cursor * l1.line_size >= 1 << 62:
            raise ValueError(
                f"batch spans {cursor} lines; the spliced address space would "
                "overflow the exact int64 range"
            )
        return offsets

    def process_line_chunks_batch(
        self,
        chunks: Iterable[SplicedLineChunk],
        num_plans: int,
        footprint_bytes: "Sequence[int] | None" = None,
    ) -> list[HierarchyStatistics]:
        """Simulate a cross-plan spliced super-stream in one pass per level.

        ``chunks`` is the output of
        :func:`repro.machine.trace.splice_line_chunks` over per-plan streams
        shifted by :meth:`batch_line_offsets`; per-plan hit/miss counts are
        recovered by segment sums over each chunk's plan boundaries.  One
        warm-started L1 simulator consumes every plan's lines and one L2
        simulator consumes the surviving miss stream, yet the returned
        statistics are bit-identical to looping
        :meth:`process_line_chunks` over the plans individually: the
        disjoint line slices mean simulator state carried across a plan
        boundary can never be referenced again, which *is* the per-plan cold
        reset, enforced by the address space instead of by the simulators.

        ``footprint_bytes`` optionally carries each plan's contiguous
        full-coverage footprint; plans whose footprint provably fits L2
        (:meth:`analytic_l2_misses`) skip L2 simulation entirely — their L1
        miss streams are dropped before the L2 pass and the exact miss count
        is filled in analytically.
        """
        if num_plans < 0:
            raise ValueError(f"num_plans must be nonnegative, got {num_plans}")
        l1 = self.build_l1()
        l2 = self.build_l2()
        offset_bits = self.l1_config.offset_bits
        l1_accesses = np.zeros(num_plans, dtype=np.int64)
        l1_misses = np.zeros(num_plans, dtype=np.int64)
        l2_accesses = np.zeros(num_plans, dtype=np.int64)
        l2_misses = np.zeros(num_plans, dtype=np.int64)
        analytic_l2 = np.full(num_plans, -1, dtype=np.int64)
        if l2 is not None and footprint_bytes is not None:
            if len(footprint_bytes) != num_plans:
                raise ValueError(
                    f"footprint_bytes has {len(footprint_bytes)} entries "
                    f"for {num_plans} plans"
                )
            for plan, footprint in enumerate(footprint_bytes):
                known = self.analytic_l2_misses(int(footprint))
                if known is not None:
                    analytic_l2[plan] = known

        for chunk in chunks:
            seg_plan = chunk.seg_plan
            if seg_plan.shape[0] == 0:
                continue
            if int(seg_plan.max()) >= num_plans:
                raise ValueError(
                    f"chunk references plan {int(seg_plan.max())} "
                    f"but the batch has {num_plans} plans"
                )
            np.add.at(l1_accesses, seg_plan, chunk.seg_accesses)
            lines = chunk.lines
            if lines.shape[0] == 0:
                continue
            addresses = lines << offset_bits
            miss_mask = l1.simulate(addresses, check=False)
            prefix = np.zeros(miss_mask.shape[0] + 1, dtype=np.int64)
            np.cumsum(miss_mask, out=prefix[1:])
            bounds = chunk.seg_bounds
            seg_misses = prefix[bounds[1:]] - prefix[bounds[:-1]]
            np.add.at(l1_misses, seg_plan, seg_misses)
            if l2 is None:
                continue
            simulate_seg = analytic_l2[seg_plan] < 0
            if not simulate_seg.any():
                continue
            if simulate_seg.all():
                selected = miss_mask
                seg_selected = seg_misses
            else:
                lengths = np.diff(bounds)
                selected = miss_mask & np.repeat(simulate_seg, lengths)
                seg_selected = np.where(simulate_seg, seg_misses, 0)
            miss_addresses = addresses[selected]
            if miss_addresses.shape[0] == 0:
                continue
            l2_mask = l2.simulate(miss_addresses, check=False)
            prefix2 = np.zeros(l2_mask.shape[0] + 1, dtype=np.int64)
            np.cumsum(l2_mask, out=prefix2[1:])
            bounds2 = np.zeros(seg_selected.shape[0] + 1, dtype=np.int64)
            np.cumsum(seg_selected, out=bounds2[1:])
            np.add.at(l2_accesses, seg_plan, seg_selected)
            np.add.at(l2_misses, seg_plan, prefix2[bounds2[1:]] - prefix2[bounds2[:-1]])

        analytic = analytic_l2 >= 0
        if analytic.any():
            # Analytic plans: every L1 miss would have probed L2 and their
            # exact miss count is the proven distinct-line count (zero for a
            # plan that produced no accesses at all).
            l2_accesses[analytic] = l1_misses[analytic]
            l2_misses[analytic] = np.where(
                l1_misses[analytic] > 0, analytic_l2[analytic], 0
            )
        return [
            HierarchyStatistics(
                l1_accesses=int(l1_accesses[plan]),
                l1_misses=int(l1_misses[plan]),
                l2_accesses=int(l2_accesses[plan]),
                l2_misses=int(l2_misses[plan]),
            )
            for plan in range(num_plans)
        ]

    def process_trace(self, trace: MemoryTrace) -> HierarchyStatistics:
        """Run a fully materialised trace through cold caches.

        Compatibility view over :meth:`process_line_chunks`: the trace is
        validated once, collapsed to line granularity and simulated as a
        single chunk, which produces exactly the statistics of the seed
        implementation (and of any other chunking of the same trace).
        """
        addresses = trace.addresses
        total_accesses = int(addresses.shape[0])
        if total_accesses == 0:
            return HierarchyStatistics(0, 0, 0, 0)
        if int(addresses.min()) < 0:
            raise ValueError("addresses must be nonnegative")

        l1_lines = addresses >> self.l1_config.offset_bits
        collapsed_lines, _removed = collapse_consecutive(l1_lines)
        chunk = LineChunk(lines=collapsed_lines, accesses=total_accesses)
        return self.process_line_chunks([chunk])

    def describe(self) -> str:
        """Human-readable summary of the hierarchy geometry."""
        parts = [self.l1_config.describe()]
        if self.l2_config is not None:
            parts.append(self.l2_config.describe())
        else:
            parts.append("no L2")
        return " | ".join(parts)
