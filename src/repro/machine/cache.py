"""Cache simulators.

Four simulators are provided, all operating on byte addresses:

* :class:`SetAssociativeLRUCache` — the reference simulator: any associativity,
  true LRU replacement, one Python-level update per access.  Kept as the
  oracle the vectorised simulators are validated against (and selectable via
  ``vectorized=False`` for cross-checks and ablations).
* :class:`DirectMappedCache` — associativity 1, with a fully vectorised
  ``simulate`` path: an access misses exactly when the previous access to the
  same set carried a different tag, which reduces to a grouped comparison.
* :class:`TwoWayLRUCache` — associativity 2 (the Opteron's L1 geometry), also
  fully vectorised: within one set, after collapsing consecutive duplicate
  lines, an LRU pair contains exactly the two most recently used distinct
  lines, so an access hits iff it equals the previous or the
  previous-previous distinct line of its set.
* :class:`NWayLRUCache` — arbitrary associativity ``A`` (the 16-way L2 and
  the associativity ablation), vectorised via set-grouped stack distances:
  within one set, an access hits iff fewer than ``A`` distinct lines occurred
  since its previous occurrence.  The hit depth is resolved with ``A - 1``
  vectorised passes that track the contents of each LRU stack position over
  time (see DESIGN.md), so cost is ``O(A · n)`` NumPy work with no per-access
  Python loop.

All simulators implement the same small interface (``access``, ``simulate``,
``reset``, ``stats``) so the memory hierarchy can mix them freely, and all
``simulate`` paths support warm continuation: state carries exactly across
successive calls, which is what lets the hierarchy stream a trace in bounded
chunks while producing bit-identical miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.util.validation import check_power_of_two

__all__ = [
    "CacheConfig",
    "CacheStatistics",
    "CacheSimulator",
    "SetAssociativeLRUCache",
    "DirectMappedCache",
    "TwoWayLRUCache",
    "NWayLRUCache",
    "make_cache",
    "simulate_trace",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``size_bytes`` and ``line_size`` must be powers of two and the
    associativity must divide the number of lines (also a power of two), so
    that set indexing is a simple bit-field extraction, as on real hardware.
    """

    size_bytes: int
    line_size: int = 64
    associativity: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        check_power_of_two(self.size_bytes, "size_bytes")
        check_power_of_two(self.line_size, "line_size")
        check_power_of_two(self.associativity, "associativity")
        if self.line_size > self.size_bytes:
            raise ValueError("line_size cannot exceed size_bytes")
        if self.associativity > self.num_lines:
            raise ValueError(
                f"associativity {self.associativity} exceeds the number of lines "
                f"{self.num_lines}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return int(self.line_size).bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return int(self.num_sets).bit_length() - 1

    def line_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Line number(s) of byte address(es)."""
        return address >> self.offset_bits

    def set_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Set index(es) of byte address(es)."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Tag(s) of byte address(es)."""
        return (address >> self.offset_bits) >> self.index_bits

    def describe(self) -> str:
        """Human readable geometry summary."""
        return (
            f"{self.name}: {self.size_bytes} B, {self.line_size} B lines, "
            f"{self.associativity}-way, {self.num_sets} sets"
        )


@dataclass
class CacheStatistics:
    """Hit/miss accounting for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses divided by accesses (0.0 for an untouched cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, accesses: int, misses: int) -> None:
        """Accumulate a batch of accesses."""
        if misses > accesses:
            raise ValueError(f"misses ({misses}) cannot exceed accesses ({accesses})")
        self.accesses += int(accesses)
        self.misses += int(misses)

    def merged(self, other: "CacheStatistics") -> "CacheStatistics":
        """A new statistics object combining self and ``other``."""
        return CacheStatistics(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


class CacheSimulator(Protocol):
    """Common interface of all cache simulators."""

    config: CacheConfig
    stats: CacheStatistics

    def access(self, address: int) -> bool:
        """Process one byte address; return True on a miss."""

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        """Process a trace of byte addresses; return a boolean miss mask.

        ``check=False`` skips the non-negativity scan for callers that have
        already validated the trace at the pipeline boundary.
        """

    def reset(self) -> None:
        """Invalidate all contents and zero the statistics."""


def _as_address_array(addresses: np.ndarray, check: bool = True) -> np.ndarray:
    arr = np.asarray(addresses)
    if arr.ndim != 1:
        raise ValueError(f"trace must be a 1-D array of addresses, got shape {arr.shape}")
    if check and arr.size and arr.min() < 0:
        raise ValueError("addresses must be nonnegative")
    return arr.astype(np.int64, copy=False)


class SetAssociativeLRUCache:
    """Reference simulator: arbitrary associativity, true LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStatistics()
        # Per-set list of tags, most recently used first.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._sets = [[] for _ in range(self.config.num_sets)]

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        ways = self._sets[index]
        miss = tag not in ways
        if miss:
            ways.insert(0, tag)
            if len(ways) > config.associativity:
                ways.pop()
        else:
            ways.remove(tag)
            ways.insert(0, tag)
        self.stats.record(1, int(miss))
        return miss

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        config = self.config
        offset_bits = config.offset_bits
        index_mask = config.num_sets - 1
        index_bits = config.index_bits
        associativity = config.associativity
        sets = self._sets
        out = np.empty(arr.shape[0], dtype=bool)
        for i, address in enumerate(arr.tolist()):
            line = address >> offset_bits
            index = line & index_mask
            tag = line >> index_bits
            ways = sets[index]
            miss = tag not in ways
            if miss:
                ways.insert(0, tag)
                if len(ways) > associativity:
                    ways.pop()
            else:
                ways.remove(tag)
                ways.insert(0, tag)
            out[i] = miss
        self.stats.record(arr.shape[0], int(out.sum()))
        return out


class DirectMappedCache:
    """Direct-mapped cache with a vectorised trace simulation.

    For a direct-mapped cache an access misses exactly when the most recent
    access to the same set carried a different tag (or the set was never
    accessed).  Grouping the trace by set with a stable sort turns the whole
    simulation into a handful of NumPy comparisons.
    """

    def __init__(self, config: CacheConfig):
        if config.associativity != 1:
            raise ValueError(
                f"DirectMappedCache requires associativity 1, got {config.associativity}"
            )
        self.config = config
        self.stats = CacheStatistics()
        # Resident tag per set, -1 meaning invalid.
        self._tags = np.full(config.num_sets, -1, dtype=np.int64)

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._tags.fill(-1)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        miss = self._tags[index] != tag
        self._tags[index] = tag
        self.stats.record(1, int(miss))
        return bool(miss)

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        lines = arr >> config.offset_bits
        sets = lines & (config.num_sets - 1)
        tags = lines >> config.index_bits

        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        sorted_tags = tags[order]

        first_in_group = np.empty(arr.shape[0], dtype=bool)
        first_in_group[0] = True
        first_in_group[1:] = sorted_sets[1:] != sorted_sets[:-1]

        prev_tags = np.empty_like(sorted_tags)
        prev_tags[1:] = sorted_tags[:-1]
        # For the first access of each group the "previous" tag is whatever is
        # currently resident in that set (possibly -1 = invalid).
        prev_tags[first_in_group] = self._tags[sorted_sets[first_in_group]]

        miss_sorted = sorted_tags != prev_tags
        misses = np.empty(arr.shape[0], dtype=bool)
        misses[order] = miss_sorted

        # Update resident tags: the last access of each group wins.
        last_in_group = np.empty(arr.shape[0], dtype=bool)
        last_in_group[-1] = True
        last_in_group[:-1] = sorted_sets[1:] != sorted_sets[:-1]
        self._tags[sorted_sets[last_in_group]] = sorted_tags[last_in_group]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


class TwoWayLRUCache:
    """2-way set-associative LRU cache with a vectorised trace simulation.

    Within one set, an LRU pair always holds the two most recently used
    *distinct* lines.  After collapsing runs of consecutive identical lines
    (all but the first of a run are trivially hits), an access therefore hits
    iff its line equals either of the two previous distinct lines of the same
    set.  Both conditions are expressible with shifted comparisons on the
    set-grouped trace.
    """

    def __init__(self, config: CacheConfig):
        if config.associativity != 2:
            raise ValueError(
                f"TwoWayLRUCache requires associativity 2, got {config.associativity}"
            )
        self.config = config
        self.stats = CacheStatistics()
        # Most recently used and second most recently used tag per set (-1 invalid).
        self._mru = np.full(config.num_sets, -1, dtype=np.int64)
        self._lru = np.full(config.num_sets, -2, dtype=np.int64)

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._mru.fill(-1)
        self._lru.fill(-2)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        mru = self._mru[index]
        lru = self._lru[index]
        if tag == mru:
            miss = False
        elif tag == lru:
            miss = False
            self._lru[index] = mru
            self._mru[index] = tag
        else:
            miss = True
            self._lru[index] = mru
            self._mru[index] = tag
        self.stats.record(1, int(miss))
        return bool(miss)

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        lines = arr >> config.offset_bits
        sets = (lines & (config.num_sets - 1)).astype(np.int64)
        tags = (lines >> config.index_bits).astype(np.int64)

        # Prepend two virtual accesses per set currently holding valid state so
        # that warm-start behaviour matches the per-access simulator: first the
        # LRU way, then the MRU way (so the MRU ends up most recent).
        valid = self._mru >= 0
        virtual_sets_list = []
        virtual_tags_list = []
        if np.any(valid):
            valid_sets = np.nonzero(valid)[0].astype(np.int64)
            lru_tags = self._lru[valid_sets]
            mru_tags = self._mru[valid_sets]
            has_lru = lru_tags >= 0
            virtual_sets_list = [valid_sets[has_lru], valid_sets]
            virtual_tags_list = [lru_tags[has_lru], mru_tags]
        if virtual_sets_list:
            virtual_sets = np.concatenate(virtual_sets_list)
            virtual_tags = np.concatenate(virtual_tags_list)
        else:
            virtual_sets = np.zeros(0, dtype=np.int64)
            virtual_tags = np.zeros(0, dtype=np.int64)
        n_virtual = virtual_sets.shape[0]

        all_sets = np.concatenate([virtual_sets, sets])
        all_tags = np.concatenate([virtual_tags, tags])
        is_real = np.concatenate(
            [np.zeros(n_virtual, dtype=bool), np.ones(arr.shape[0], dtype=bool)]
        )

        order = np.argsort(all_sets, kind="stable")
        g_sets = all_sets[order]
        g_tags = all_tags[order]
        g_real = is_real[order]
        total = g_sets.shape[0]

        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = g_sets[1:] != g_sets[:-1]

        # Collapse consecutive duplicates within a group: they are hits and do
        # not change LRU state.
        prev_tag = np.empty_like(g_tags)
        prev_tag[1:] = g_tags[:-1]
        prev_tag[0] = g_tags[0] + 1  # force "different"
        duplicate = (~new_group) & (g_tags == prev_tag)

        # Positions of the collapsed (distinct) subsequence.
        distinct_idx = np.nonzero(~duplicate)[0]
        d_sets = g_sets[distinct_idx]
        d_tags = g_tags[distinct_idx]
        d_real = g_real[distinct_idx]
        m = distinct_idx.shape[0]

        d_new_group = np.empty(m, dtype=bool)
        d_new_group[0] = True
        d_new_group[1:] = d_sets[1:] != d_sets[:-1]
        # Second element of each group.
        d_second = np.zeros(m, dtype=bool)
        d_second[1:] = d_new_group[:-1] & ~d_new_group[1:]

        prev2 = np.empty_like(d_tags)
        prev2[2:] = d_tags[:-2]
        prev2[:2] = -10  # no valid "two back" for the first two entries overall
        # An entry hits iff it matches the distinct tag two back *within the
        # same group*; entries that are first or second in their group have no
        # such predecessor (their state is covered by the virtual accesses).
        has_prev2 = ~(d_new_group | d_second)
        d_hits = has_prev2 & (d_tags == prev2)
        d_miss = ~d_hits

        # Scatter distinct-position misses back; duplicates are hits.
        miss_grouped = np.zeros(total, dtype=bool)
        miss_grouped[distinct_idx] = d_miss

        misses_all = np.empty(total, dtype=bool)
        misses_all[order] = miss_grouped
        misses = misses_all[n_virtual:]

        # Update per-set state: the last two distinct tags of each group.
        if m:
            group_last = np.empty(m, dtype=bool)
            group_last[-1] = True
            group_last[:-1] = d_sets[1:] != d_sets[:-1]
            last_idx = np.nonzero(group_last)[0]
            last_sets = d_sets[last_idx]
            self._mru[last_sets] = d_tags[last_idx]
            usable = last_idx[~d_new_group[last_idx]]
            self._lru[d_sets[usable]] = d_tags[usable - 1]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


class NWayLRUCache:
    """Arbitrary-associativity LRU cache with a vectorised trace simulation.

    The simulation works on the set-grouped trace with runs of consecutive
    identical lines removed (those are depth-1 hits).  In the remaining
    *distinct* per-set sequence the LRU stack evolves mechanically: the
    incoming line always lands at stack position 1 and the old position-1
    line always drops to position 2, while position ``d`` receives the old
    position ``d-1`` line exactly at steps whose hit depth is ``>= d``.
    Tracking "content of stack position ``d`` before each step" therefore
    reduces to a masked forward-fill of the position ``d-1`` contents, and
    ``A - 1`` such passes classify every access: an access hits iff its tag
    equals the content of some position ``<= A``.  This is the stack-distance
    criterion — an access hits iff fewer than ``A`` distinct lines were
    referenced in its set since its previous occurrence — computed without a
    per-access Python loop.

    Warm continuation across ``simulate`` calls is exact: the per-set LRU
    stack state is replayed as virtual leading accesses (LRU way first) and
    re-extracted from the tail of the simulated chunk.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStatistics()
        # Per-set LRU stack of tags, most recently used first, -1 invalid.
        self._stack = np.full(
            (config.num_sets, config.associativity), -1, dtype=np.int64
        )

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._stack.fill(-1)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        row = self._stack[index]
        hits = np.nonzero(row == tag)[0]
        miss = hits.size == 0
        depth = row.shape[0] - 1 if miss else int(hits[0])
        row[1 : depth + 1] = row[:depth].copy()
        row[0] = tag
        self.stats.record(1, int(miss))
        return miss

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        associativity = config.associativity
        lines = arr >> config.offset_bits
        sets = (lines & (config.num_sets - 1)).astype(np.int64)
        tags = (lines >> config.index_bits).astype(np.int64)

        # Replay warm state as virtual leading accesses for the sets touched
        # by this chunk: LRU way first, so the MRU way ends up most recent.
        present = np.unique(sets)
        reversed_stacks = self._stack[present, ::-1]
        valid = reversed_stacks >= 0
        virtual_sets = np.repeat(present, valid.sum(axis=1))
        virtual_tags = reversed_stacks[valid]
        n_virtual = virtual_sets.shape[0]

        all_sets = np.concatenate([virtual_sets, sets])
        all_tags = np.concatenate([virtual_tags, tags])
        total = all_sets.shape[0]

        order = np.argsort(all_sets, kind="stable")
        g_sets = all_sets[order]
        g_tags = all_tags[order]

        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = g_sets[1:] != g_sets[:-1]

        # Depth-1 hits: consecutive duplicates within a set group.  They do
        # not change the LRU stack and are removed before depth resolution.
        duplicate = np.zeros(total, dtype=bool)
        duplicate[1:] = (~new_group[1:]) & (g_tags[1:] == g_tags[:-1])
        distinct_idx = np.nonzero(~duplicate)[0]
        d_sets = g_sets[distinct_idx]
        d_tags = g_tags[distinct_idx]
        m = distinct_idx.shape[0]

        d_new_group = np.empty(m, dtype=bool)
        d_new_group[0] = True
        d_new_group[1:] = d_sets[1:] != d_sets[:-1]
        positions = np.arange(m, dtype=np.int64)
        group_start = np.maximum.accumulate(np.where(d_new_group, positions, 0))

        # Content of stack position 2 before each step: the distinct line two
        # back in the same group (position 1 is always the previous line, and
        # a depth-2-or-deeper access never equals it by construction).
        current = np.full(m, -1, dtype=np.int64)
        if m > 2:
            current[2:] = np.where(
                positions[2:] >= group_start[2:] + 2, d_tags[:-2], -1
            )
        hit = np.zeros(m, dtype=bool)
        for depth in range(2, associativity + 1):
            hit |= (current >= 0) & (d_tags == current)
            if depth == associativity:
                break
            # Stack position depth+1 receives the old position-depth content
            # exactly at steps that did not hit at depth <= depth; its content
            # before step t is therefore the last such arrival before t.
            mask = ~hit
            last_arrival = np.maximum.accumulate(np.where(mask, positions, -1))
            previous = np.empty(m, dtype=np.int64)
            previous[0] = -1
            previous[1:] = last_arrival[:-1]
            current = np.where(
                previous >= group_start, current[np.maximum(previous, 0)], -1
            )

        miss_grouped = np.zeros(total, dtype=bool)
        miss_grouped[distinct_idx] = ~hit
        misses_all = np.empty(total, dtype=bool)
        misses_all[order] = miss_grouped
        misses = misses_all[n_virtual:]

        # Re-extract per-set warm state: the last occurrence of every
        # (set, tag) pair, ranked by recency, gives the final LRU stacks.
        last_order = np.lexsort((positions, d_tags, d_sets))
        s_sorted = d_sets[last_order]
        t_sorted = d_tags[last_order]
        last_of_pair = np.empty(m, dtype=bool)
        last_of_pair[-1] = True
        last_of_pair[:-1] = (s_sorted[1:] != s_sorted[:-1]) | (
            t_sorted[1:] != t_sorted[:-1]
        )
        pair_sets = s_sorted[last_of_pair]
        pair_tags = t_sorted[last_of_pair]
        pair_pos = last_order[last_of_pair]
        recency = np.lexsort((-pair_pos, pair_sets))
        r_sets = pair_sets[recency]
        r_tags = pair_tags[recency]
        r_positions = np.arange(r_sets.shape[0], dtype=np.int64)
        r_new = np.empty(r_sets.shape[0], dtype=bool)
        r_new[0] = True
        r_new[1:] = r_sets[1:] != r_sets[:-1]
        rank = r_positions - np.maximum.accumulate(np.where(r_new, r_positions, 0))
        keep = rank < associativity
        self._stack[present] = -1
        self._stack[r_sets[keep], rank[keep]] = r_tags[keep]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


def make_cache(config: CacheConfig, vectorized: bool = True) -> CacheSimulator:
    """Build the fastest exact simulator available for ``config``.

    With ``vectorized=False`` the reference LRU simulator is always returned
    (useful for cross-checking and the associativity ablation).
    """
    if not vectorized:
        return SetAssociativeLRUCache(config)
    if config.associativity == 1:
        return DirectMappedCache(config)
    if config.associativity == 2:
        return TwoWayLRUCache(config)
    return NWayLRUCache(config)


def simulate_trace(config: CacheConfig, addresses: np.ndarray, vectorized: bool = True) -> CacheStatistics:
    """One-shot convenience: simulate a cold cache over a trace, return stats."""
    cache = make_cache(config, vectorized=vectorized)
    cache.simulate(_as_address_array(addresses))
    return cache.stats
