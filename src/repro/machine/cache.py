"""Cache simulators.

Four simulators are provided, all operating on byte addresses:

* :class:`SetAssociativeLRUCache` — the reference simulator: any associativity,
  true LRU replacement, one Python-level update per access.  Kept as the
  oracle the vectorised simulators are validated against (and selectable via
  ``vectorized=False`` for cross-checks and ablations).
* :class:`DirectMappedCache` — associativity 1, with a fully vectorised
  ``simulate`` path: an access misses exactly when the previous access to the
  same set carried a different tag, which reduces to a grouped comparison.
* :class:`TwoWayLRUCache` — associativity 2 (the Opteron's L1 geometry), also
  fully vectorised: within one set, after collapsing consecutive duplicate
  lines, an LRU pair contains exactly the two most recently used distinct
  lines, so an access hits iff it equals the previous or the
  previous-previous distinct line of its set.
* :class:`NWayLRUCache` — arbitrary associativity ``A`` (the 16-way L2 and
  the associativity ablation), vectorised via set-grouped stack distances:
  within one set, an access hits iff fewer than ``A`` distinct lines occurred
  since its previous occurrence.  The hit depth is resolved with ``A - 1``
  vectorised passes that track the contents of each LRU stack position over
  time (see DESIGN.md), so cost is ``O(A · n)`` NumPy work with no per-access
  Python loop.

All simulators implement the same small interface (``access``, ``simulate``,
``reset``, ``stats``) so the memory hierarchy can mix them freely, and all
``simulate`` paths support warm continuation: state carries exactly across
successive calls, which is what lets the hierarchy stream a trace in bounded
chunks while producing bit-identical miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.util.validation import check_power_of_two

__all__ = [
    "CacheConfig",
    "CacheStatistics",
    "CacheSimulator",
    "SetAssociativeLRUCache",
    "DirectMappedCache",
    "TwoWayLRUCache",
    "NWayLRUCache",
    "make_cache",
    "simulate_trace",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``size_bytes`` and ``line_size`` must be powers of two and the
    associativity must divide the number of lines (also a power of two), so
    that set indexing is a simple bit-field extraction, as on real hardware.
    """

    size_bytes: int
    line_size: int = 64
    associativity: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        check_power_of_two(self.size_bytes, "size_bytes")
        check_power_of_two(self.line_size, "line_size")
        check_power_of_two(self.associativity, "associativity")
        if self.line_size > self.size_bytes:
            raise ValueError("line_size cannot exceed size_bytes")
        if self.associativity > self.num_lines:
            raise ValueError(
                f"associativity {self.associativity} exceeds the number of lines "
                f"{self.num_lines}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return int(self.line_size).bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return int(self.num_sets).bit_length() - 1

    def line_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Line number(s) of byte address(es)."""
        return address >> self.offset_bits

    def set_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Set index(es) of byte address(es)."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Tag(s) of byte address(es)."""
        return (address >> self.offset_bits) >> self.index_bits

    def describe(self) -> str:
        """Human readable geometry summary."""
        return (
            f"{self.name}: {self.size_bytes} B, {self.line_size} B lines, "
            f"{self.associativity}-way, {self.num_sets} sets"
        )


@dataclass
class CacheStatistics:
    """Hit/miss accounting for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses divided by accesses (0.0 for an untouched cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, accesses: int, misses: int) -> None:
        """Accumulate a batch of accesses."""
        if misses > accesses:
            raise ValueError(f"misses ({misses}) cannot exceed accesses ({accesses})")
        self.accesses += int(accesses)
        self.misses += int(misses)

    def merged(self, other: "CacheStatistics") -> "CacheStatistics":
        """A new statistics object combining self and ``other``."""
        return CacheStatistics(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


class CacheSimulator(Protocol):
    """Common interface of all cache simulators."""

    config: CacheConfig
    stats: CacheStatistics

    def access(self, address: int) -> bool:
        """Process one byte address; return True on a miss."""

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        """Process a trace of byte addresses; return a boolean miss mask.

        ``check=False`` skips the non-negativity scan for callers that have
        already validated the trace at the pipeline boundary.
        """

    def reset(self) -> None:
        """Invalidate all contents and zero the statistics."""


def _as_address_array(addresses: np.ndarray, check: bool = True) -> np.ndarray:
    arr = np.asarray(addresses)
    if arr.ndim != 1:
        raise ValueError(f"trace must be a 1-D array of addresses, got shape {arr.shape}")
    if check and arr.size and arr.min() < 0:
        raise ValueError("addresses must be nonnegative")
    return arr.astype(np.int64, copy=False)


def _set_sort_key(sets: np.ndarray, num_sets: int) -> np.ndarray:
    """Narrowest integer view of a set-index array for the grouping argsort.

    NumPy's stable sort is a radix sort for 8/16-bit integers but a
    comparison sort for wider types; set indices are bounded by the geometry,
    so narrowing the *sort key* (the data arrays stay int64) turns the
    dominant grouping pass into O(n) for every realistic configuration.
    """
    if num_sets <= (1 << 15):
        return sets.astype(np.int16)
    if num_sets <= (1 << 31):
        return sets.astype(np.int32)
    return sets


class SetAssociativeLRUCache:
    """Reference simulator: arbitrary associativity, true LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStatistics()
        # Per-set list of tags, most recently used first.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._sets = [[] for _ in range(self.config.num_sets)]

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        ways = self._sets[index]
        miss = tag not in ways
        if miss:
            ways.insert(0, tag)
            if len(ways) > config.associativity:
                ways.pop()
        else:
            ways.remove(tag)
            ways.insert(0, tag)
        self.stats.record(1, int(miss))
        return miss

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        config = self.config
        offset_bits = config.offset_bits
        index_mask = config.num_sets - 1
        index_bits = config.index_bits
        associativity = config.associativity
        sets = self._sets
        out = np.empty(arr.shape[0], dtype=bool)
        for i, address in enumerate(arr.tolist()):
            line = address >> offset_bits
            index = line & index_mask
            tag = line >> index_bits
            ways = sets[index]
            miss = tag not in ways
            if miss:
                ways.insert(0, tag)
                if len(ways) > associativity:
                    ways.pop()
            else:
                ways.remove(tag)
                ways.insert(0, tag)
            out[i] = miss
        self.stats.record(arr.shape[0], int(out.sum()))
        return out


class DirectMappedCache:
    """Direct-mapped cache with a vectorised trace simulation.

    For a direct-mapped cache an access misses exactly when the most recent
    access to the same set carried a different tag (or the set was never
    accessed).  Grouping the trace by set with a stable sort turns the whole
    simulation into a handful of NumPy comparisons.  All vectorised
    simulators work on whole *line numbers* instead of split (set, tag)
    pairs: within one set group, line equality is tag equality, so the tag
    extraction pass and one large gather disappear; the narrow
    :func:`_set_sort_key` is the only per-set quantity ever materialised.
    """

    def __init__(self, config: CacheConfig):
        if config.associativity != 1:
            raise ValueError(
                f"DirectMappedCache requires associativity 1, got {config.associativity}"
            )
        self.config = config
        self.stats = CacheStatistics()
        # Resident line per set, -1 meaning invalid.
        self._lines = np.full(config.num_sets, -1, dtype=np.int64)

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._lines.fill(-1)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        miss = self._lines[index] != line
        self._lines[index] = line
        self.stats.record(1, int(miss))
        return bool(miss)

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        lines = arr >> config.offset_bits
        key = _set_sort_key(lines & (config.num_sets - 1), config.num_sets)

        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        sorted_lines = lines[order]

        first_in_group = np.empty(arr.shape[0], dtype=bool)
        first_in_group[0] = True
        first_in_group[1:] = sorted_keys[1:] != sorted_keys[:-1]

        prev_lines = np.empty_like(sorted_lines)
        prev_lines[1:] = sorted_lines[:-1]
        # For the first access of each group the "previous" line is whatever
        # is currently resident in that set (possibly -1 = invalid).
        prev_lines[first_in_group] = self._lines[sorted_keys[first_in_group]]

        miss_sorted = sorted_lines != prev_lines
        misses = np.empty(arr.shape[0], dtype=bool)
        misses[order] = miss_sorted

        # Update resident lines: the last access of each group wins.
        last_in_group = np.empty(arr.shape[0], dtype=bool)
        last_in_group[-1] = True
        last_in_group[:-1] = sorted_keys[1:] != sorted_keys[:-1]
        self._lines[sorted_keys[last_in_group]] = sorted_lines[last_in_group]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


class TwoWayLRUCache:
    """2-way set-associative LRU cache with a vectorised trace simulation.

    Within one set, an LRU pair always holds the two most recently used
    *distinct* lines.  After collapsing runs of consecutive identical lines
    (all but the first of a run are trivially hits), an access therefore hits
    iff its line equals either of the two previous distinct lines of the same
    set.  Both conditions are expressible with shifted comparisons on the
    set-grouped trace.
    """

    def __init__(self, config: CacheConfig):
        if config.associativity != 2:
            raise ValueError(
                f"TwoWayLRUCache requires associativity 2, got {config.associativity}"
            )
        self.config = config
        self.stats = CacheStatistics()
        # Most recently used and second most recently used line per set
        # (-1/-2 invalid; whole lines, not tags — see DirectMappedCache).
        self._mru = np.full(config.num_sets, -1, dtype=np.int64)
        self._lru = np.full(config.num_sets, -2, dtype=np.int64)

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._mru.fill(-1)
        self._lru.fill(-2)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        mru = self._mru[index]
        lru = self._lru[index]
        if line == mru:
            miss = False
        elif line == lru:
            miss = False
            self._lru[index] = mru
            self._mru[index] = line
        else:
            miss = True
            self._lru[index] = mru
            self._mru[index] = line
        self.stats.record(1, int(miss))
        return bool(miss)

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        num_sets = config.num_sets
        lines = arr >> config.offset_bits

        # Prepend two virtual accesses per set currently holding valid state so
        # that warm-start behaviour matches the per-access simulator: first the
        # LRU way, then the MRU way (so the MRU ends up most recent).  A cold
        # simulator skips the concatenation entirely and sorts views.
        valid = self._mru >= 0
        if np.any(valid):
            valid_sets = np.nonzero(valid)[0].astype(np.int64)
            lru_lines = self._lru[valid_sets]
            mru_lines = self._mru[valid_sets]
            has_lru = lru_lines >= 0
            virtual_lines = np.concatenate([lru_lines[has_lru], mru_lines])
            n_virtual = virtual_lines.shape[0]
            all_lines = np.concatenate([virtual_lines, lines])
        else:
            n_virtual = 0
            all_lines = lines
        key = _set_sort_key(all_lines & (num_sets - 1), num_sets)

        order = np.argsort(key, kind="stable")
        g_keys = key[order]
        g_lines = all_lines[order]
        total = g_lines.shape[0]

        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = g_keys[1:] != g_keys[:-1]

        # Collapse consecutive duplicates within a group: they are hits and do
        # not change LRU state.
        duplicate = np.zeros(total, dtype=bool)
        duplicate[1:] = (~new_group[1:]) & (g_lines[1:] == g_lines[:-1])

        # Positions of the collapsed (distinct) subsequence.
        distinct_idx = np.nonzero(~duplicate)[0]
        d_keys = g_keys[distinct_idx]
        d_lines = g_lines[distinct_idx]
        m = distinct_idx.shape[0]

        d_new_group = np.empty(m, dtype=bool)
        d_new_group[0] = True
        d_new_group[1:] = d_keys[1:] != d_keys[:-1]
        # Second element of each group.
        d_second = np.zeros(m, dtype=bool)
        d_second[1:] = d_new_group[:-1] & ~d_new_group[1:]

        prev2 = np.empty_like(d_lines)
        prev2[2:] = d_lines[:-2]
        prev2[:2] = -10  # no valid "two back" for the first two entries overall
        # An entry hits iff it matches the distinct line two back *within the
        # same group*; entries that are first or second in their group have no
        # such predecessor (their state is covered by the virtual accesses).
        has_prev2 = ~(d_new_group | d_second)
        d_hits = has_prev2 & (d_lines == prev2)
        d_miss = ~d_hits

        # Scatter distinct-position misses back; duplicates are hits.
        miss_grouped = np.zeros(total, dtype=bool)
        miss_grouped[distinct_idx] = d_miss

        misses_all = np.empty(total, dtype=bool)
        misses_all[order] = miss_grouped
        misses = misses_all[n_virtual:]

        # Update per-set state: the last two distinct lines of each group.
        if m:
            group_last = np.empty(m, dtype=bool)
            group_last[-1] = True
            group_last[:-1] = d_keys[1:] != d_keys[:-1]
            last_idx = np.nonzero(group_last)[0]
            last_sets = d_keys[last_idx]
            self._mru[last_sets] = d_lines[last_idx]
            usable = last_idx[~d_new_group[last_idx]]
            self._lru[d_keys[usable]] = d_lines[usable - 1]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


class NWayLRUCache:
    """Arbitrary-associativity LRU cache with a vectorised trace simulation.

    The simulation works on the set-grouped trace with runs of consecutive
    identical lines removed (those are depth-1 hits).  In the remaining
    *distinct* per-set sequence the LRU stack evolves mechanically: the
    incoming line always lands at stack position 1 and the old position-1
    line always drops to position 2, while position ``d`` receives the old
    position ``d-1`` line exactly at steps whose hit depth is ``>= d``.
    Tracking "content of stack position ``d`` before each step" therefore
    reduces to a masked forward-fill of the position ``d-1`` contents, and
    ``A - 1`` such passes classify every access: an access hits iff its tag
    equals the content of some position ``<= A``.  This is the stack-distance
    criterion — an access hits iff fewer than ``A`` distinct lines were
    referenced in its set since its previous occurrence — computed without a
    per-access Python loop.

    Warm continuation across ``simulate`` calls is exact: the per-set LRU
    stack state is replayed as virtual leading accesses (LRU way first) and
    re-extracted from the tail of the simulated chunk.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStatistics()
        # Per-set LRU stack of lines, most recently used first, -1 invalid
        # (whole lines, not tags — see DirectMappedCache).
        self._stack = np.full(
            (config.num_sets, config.associativity), -1, dtype=np.int64
        )

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._stack.fill(-1)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        row = self._stack[index]
        hits = np.nonzero(row == line)[0]
        miss = hits.size == 0
        depth = row.shape[0] - 1 if miss else int(hits[0])
        row[1 : depth + 1] = row[:depth].copy()
        row[0] = line
        self.stats.record(1, int(miss))
        return miss

    def simulate(self, addresses: np.ndarray, check: bool = True) -> np.ndarray:
        arr = _as_address_array(addresses, check=check)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        num_sets = config.num_sets
        associativity = config.associativity
        lines = arr >> config.offset_bits

        # Replay warm state as virtual leading accesses for the sets touched
        # by this chunk: LRU way first, so the MRU way ends up most recent.
        # A cold simulator (nothing resident anywhere) skips the whole replay.
        if np.any(self._stack[:, 0] >= 0):
            present = np.unique(
                _set_sort_key(lines & (num_sets - 1), num_sets)
            ).astype(np.int64)
            reversed_stacks = self._stack[present, ::-1]
            valid = reversed_stacks >= 0
            virtual_lines = reversed_stacks[valid]
            n_virtual = virtual_lines.shape[0]
            all_lines = np.concatenate([virtual_lines, lines])
        else:
            present = None
            n_virtual = 0
            all_lines = lines
        total = all_lines.shape[0]
        key = _set_sort_key(all_lines & (num_sets - 1), num_sets)

        order = np.argsort(key, kind="stable")
        g_keys = key[order]
        g_lines = all_lines[order]

        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = g_keys[1:] != g_keys[:-1]

        # Depth-1 hits: consecutive duplicates within a set group.  They do
        # not change the LRU stack and are removed before depth resolution.
        duplicate = np.zeros(total, dtype=bool)
        duplicate[1:] = (~new_group[1:]) & (g_lines[1:] == g_lines[:-1])
        distinct_idx = np.nonzero(~duplicate)[0]
        d_keys = g_keys[distinct_idx]
        d_lines = g_lines[distinct_idx]
        m = distinct_idx.shape[0]

        d_new_group = np.empty(m, dtype=bool)
        d_new_group[0] = True
        d_new_group[1:] = d_keys[1:] != d_keys[:-1]
        positions = np.arange(m, dtype=np.int64)
        group_start = np.maximum.accumulate(np.where(d_new_group, positions, 0))

        # Content of stack position 2 before each step: the distinct line two
        # back in the same group (position 1 is always the previous line, and
        # a depth-2-or-deeper access never equals it by construction).
        current = np.full(m, -1, dtype=np.int64)
        if m > 2:
            current[2:] = np.where(
                positions[2:] >= group_start[2:] + 2, d_lines[:-2], -1
            )
        hit = np.zeros(m, dtype=bool)
        for depth in range(2, associativity + 1):
            # Lines are nonnegative, so the -1 "invalid" sentinel can never
            # equal a line and no separate validity mask is needed.
            hit |= d_lines == current
            if depth == associativity:
                break
            if not np.any(current >= 0):
                # No set has a line at this stack depth (fewer distinct lines
                # than the associativity everywhere): every deeper position
                # is empty too, so the remaining unhit accesses are misses.
                break
            # Stack position depth+1 receives the old position-depth content
            # exactly at steps that did not hit at depth <= depth; its content
            # before step t is therefore the last such arrival before t.
            mask = ~hit
            last_arrival = np.maximum.accumulate(np.where(mask, positions, -1))
            previous = np.empty(m, dtype=np.int64)
            previous[0] = -1
            previous[1:] = last_arrival[:-1]
            current = np.where(
                previous >= group_start, current[np.maximum(previous, 0)], -1
            )

        miss_grouped = np.zeros(total, dtype=bool)
        miss_grouped[distinct_idx] = ~hit
        misses_all = np.empty(total, dtype=bool)
        misses_all[order] = miss_grouped
        misses = misses_all[n_virtual:]

        # Re-extract per-set warm state: the last occurrence of every
        # distinct line (a line names its set), ranked by recency, gives the
        # final LRU stacks.
        last_order = np.lexsort((positions, d_lines))
        l_sorted = d_lines[last_order]
        last_of_line = np.empty(m, dtype=bool)
        last_of_line[-1] = True
        last_of_line[:-1] = l_sorted[1:] != l_sorted[:-1]
        pair_lines = l_sorted[last_of_line]
        pair_keys = d_keys[last_order][last_of_line]
        pair_pos = last_order[last_of_line]
        recency = np.lexsort((-pair_pos, pair_keys))
        r_keys = pair_keys[recency]
        r_lines = pair_lines[recency]
        r_positions = np.arange(r_keys.shape[0], dtype=np.int64)
        r_new = np.empty(r_keys.shape[0], dtype=bool)
        r_new[0] = True
        r_new[1:] = r_keys[1:] != r_keys[:-1]
        rank = r_positions - np.maximum.accumulate(np.where(r_new, r_positions, 0))
        keep = rank < associativity
        if present is not None:
            self._stack[present] = -1
        self._stack[r_keys[keep], rank[keep]] = r_lines[keep]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


def make_cache(config: CacheConfig, vectorized: bool = True) -> CacheSimulator:
    """Build the fastest exact simulator available for ``config``.

    With ``vectorized=False`` the reference LRU simulator is always returned
    (useful for cross-checking and the associativity ablation).
    """
    if not vectorized:
        return SetAssociativeLRUCache(config)
    if config.associativity == 1:
        return DirectMappedCache(config)
    if config.associativity == 2:
        return TwoWayLRUCache(config)
    return NWayLRUCache(config)


def simulate_trace(config: CacheConfig, addresses: np.ndarray, vectorized: bool = True) -> CacheStatistics:
    """One-shot convenience: simulate a cold cache over a trace, return stats."""
    cache = make_cache(config, vectorized=vectorized)
    cache.simulate(_as_address_array(addresses))
    return cache.stats
