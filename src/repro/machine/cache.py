"""Cache simulators.

Three simulators are provided, all operating on byte addresses:

* :class:`SetAssociativeLRUCache` — the reference simulator: any associativity,
  true LRU replacement, one Python-level update per access.  Used for the L2
  level (which only sees the much smaller L1 miss stream), for small traces
  and as the oracle the vectorised simulators are validated against.
* :class:`DirectMappedCache` — associativity 1, with a fully vectorised
  ``simulate`` path: an access misses exactly when the previous access to the
  same set carried a different tag, which reduces to a grouped comparison.
* :class:`TwoWayLRUCache` — associativity 2 (the Opteron's L1 geometry), also
  fully vectorised: within one set, after collapsing consecutive duplicate
  lines, an LRU pair contains exactly the two most recently used distinct
  lines, so an access hits iff it equals the previous or the
  previous-previous distinct line of its set.

All simulators implement the same small interface (``access``, ``simulate``,
``reset``, ``stats``) so the memory hierarchy can mix them freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.util.validation import check_power_of_two

__all__ = [
    "CacheConfig",
    "CacheStatistics",
    "CacheSimulator",
    "SetAssociativeLRUCache",
    "DirectMappedCache",
    "TwoWayLRUCache",
    "make_cache",
    "simulate_trace",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``size_bytes`` and ``line_size`` must be powers of two and the
    associativity must divide the number of lines (also a power of two), so
    that set indexing is a simple bit-field extraction, as on real hardware.
    """

    size_bytes: int
    line_size: int = 64
    associativity: int = 1
    name: str = "cache"

    def __post_init__(self) -> None:
        check_power_of_two(self.size_bytes, "size_bytes")
        check_power_of_two(self.line_size, "line_size")
        check_power_of_two(self.associativity, "associativity")
        if self.line_size > self.size_bytes:
            raise ValueError("line_size cannot exceed size_bytes")
        if self.associativity > self.num_lines:
            raise ValueError(
                f"associativity {self.associativity} exceeds the number of lines "
                f"{self.num_lines}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.associativity

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return int(self.line_size).bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return int(self.num_sets).bit_length() - 1

    def line_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Line number(s) of byte address(es)."""
        return address >> self.offset_bits

    def set_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Set index(es) of byte address(es)."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag_of(self, address: int | np.ndarray) -> int | np.ndarray:
        """Tag(s) of byte address(es)."""
        return (address >> self.offset_bits) >> self.index_bits

    def describe(self) -> str:
        """Human readable geometry summary."""
        return (
            f"{self.name}: {self.size_bytes} B, {self.line_size} B lines, "
            f"{self.associativity}-way, {self.num_sets} sets"
        )


@dataclass
class CacheStatistics:
    """Hit/miss accounting for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses divided by accesses (0.0 for an untouched cache)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, accesses: int, misses: int) -> None:
        """Accumulate a batch of accesses."""
        if misses > accesses:
            raise ValueError(f"misses ({misses}) cannot exceed accesses ({accesses})")
        self.accesses += int(accesses)
        self.misses += int(misses)

    def merged(self, other: "CacheStatistics") -> "CacheStatistics":
        """A new statistics object combining self and ``other``."""
        return CacheStatistics(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


class CacheSimulator(Protocol):
    """Common interface of all cache simulators."""

    config: CacheConfig
    stats: CacheStatistics

    def access(self, address: int) -> bool:
        """Process one byte address; return True on a miss."""

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        """Process a trace of byte addresses; return a boolean miss mask."""

    def reset(self) -> None:
        """Invalidate all contents and zero the statistics."""


def _as_address_array(addresses: np.ndarray) -> np.ndarray:
    arr = np.asarray(addresses)
    if arr.ndim != 1:
        raise ValueError(f"trace must be a 1-D array of addresses, got shape {arr.shape}")
    if arr.size and arr.min() < 0:
        raise ValueError("addresses must be nonnegative")
    return arr.astype(np.int64, copy=False)


class SetAssociativeLRUCache:
    """Reference simulator: arbitrary associativity, true LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStatistics()
        # Per-set list of tags, most recently used first.
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._sets = [[] for _ in range(self.config.num_sets)]

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        ways = self._sets[index]
        miss = tag not in ways
        if miss:
            ways.insert(0, tag)
            if len(ways) > config.associativity:
                ways.pop()
        else:
            ways.remove(tag)
            ways.insert(0, tag)
        self.stats.record(1, int(miss))
        return miss

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        arr = _as_address_array(addresses)
        config = self.config
        offset_bits = config.offset_bits
        index_mask = config.num_sets - 1
        index_bits = config.index_bits
        associativity = config.associativity
        sets = self._sets
        out = np.empty(arr.shape[0], dtype=bool)
        for i, address in enumerate(arr.tolist()):
            line = address >> offset_bits
            index = line & index_mask
            tag = line >> index_bits
            ways = sets[index]
            miss = tag not in ways
            if miss:
                ways.insert(0, tag)
                if len(ways) > associativity:
                    ways.pop()
            else:
                ways.remove(tag)
                ways.insert(0, tag)
            out[i] = miss
        self.stats.record(arr.shape[0], int(out.sum()))
        return out


class DirectMappedCache:
    """Direct-mapped cache with a vectorised trace simulation.

    For a direct-mapped cache an access misses exactly when the most recent
    access to the same set carried a different tag (or the set was never
    accessed).  Grouping the trace by set with a stable sort turns the whole
    simulation into a handful of NumPy comparisons.
    """

    def __init__(self, config: CacheConfig):
        if config.associativity != 1:
            raise ValueError(
                f"DirectMappedCache requires associativity 1, got {config.associativity}"
            )
        self.config = config
        self.stats = CacheStatistics()
        # Resident tag per set, -1 meaning invalid.
        self._tags = np.full(config.num_sets, -1, dtype=np.int64)

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._tags.fill(-1)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        miss = self._tags[index] != tag
        self._tags[index] = tag
        self.stats.record(1, int(miss))
        return bool(miss)

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        arr = _as_address_array(addresses)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        lines = arr >> config.offset_bits
        sets = lines & (config.num_sets - 1)
        tags = lines >> config.index_bits

        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        sorted_tags = tags[order]

        first_in_group = np.empty(arr.shape[0], dtype=bool)
        first_in_group[0] = True
        first_in_group[1:] = sorted_sets[1:] != sorted_sets[:-1]

        prev_tags = np.empty_like(sorted_tags)
        prev_tags[1:] = sorted_tags[:-1]
        # For the first access of each group the "previous" tag is whatever is
        # currently resident in that set (possibly -1 = invalid).
        prev_tags[first_in_group] = self._tags[sorted_sets[first_in_group]]

        miss_sorted = sorted_tags != prev_tags
        misses = np.empty(arr.shape[0], dtype=bool)
        misses[order] = miss_sorted

        # Update resident tags: the last access of each group wins.
        last_in_group = np.empty(arr.shape[0], dtype=bool)
        last_in_group[-1] = True
        last_in_group[:-1] = sorted_sets[1:] != sorted_sets[:-1]
        self._tags[sorted_sets[last_in_group]] = sorted_tags[last_in_group]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


class TwoWayLRUCache:
    """2-way set-associative LRU cache with a vectorised trace simulation.

    Within one set, an LRU pair always holds the two most recently used
    *distinct* lines.  After collapsing runs of consecutive identical lines
    (all but the first of a run are trivially hits), an access therefore hits
    iff its line equals either of the two previous distinct lines of the same
    set.  Both conditions are expressible with shifted comparisons on the
    set-grouped trace.
    """

    def __init__(self, config: CacheConfig):
        if config.associativity != 2:
            raise ValueError(
                f"TwoWayLRUCache requires associativity 2, got {config.associativity}"
            )
        self.config = config
        self.stats = CacheStatistics()
        # Most recently used and second most recently used tag per set (-1 invalid).
        self._mru = np.full(config.num_sets, -1, dtype=np.int64)
        self._lru = np.full(config.num_sets, -2, dtype=np.int64)

    def reset(self) -> None:
        self.stats = CacheStatistics()
        self._mru.fill(-1)
        self._lru.fill(-2)

    def access(self, address: int) -> bool:
        config = self.config
        line = int(address) >> config.offset_bits
        index = line & (config.num_sets - 1)
        tag = line >> config.index_bits
        mru = self._mru[index]
        lru = self._lru[index]
        if tag == mru:
            miss = False
        elif tag == lru:
            miss = False
            self._lru[index] = mru
            self._mru[index] = tag
        else:
            miss = True
            self._lru[index] = mru
            self._mru[index] = tag
        self.stats.record(1, int(miss))
        return bool(miss)

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        arr = _as_address_array(addresses)
        if arr.size == 0:
            return np.zeros(0, dtype=bool)
        config = self.config
        lines = arr >> config.offset_bits
        sets = (lines & (config.num_sets - 1)).astype(np.int64)
        tags = (lines >> config.index_bits).astype(np.int64)

        # Prepend two virtual accesses per set currently holding valid state so
        # that warm-start behaviour matches the per-access simulator: first the
        # LRU way, then the MRU way (so the MRU ends up most recent).
        valid = self._mru >= 0
        virtual_sets_list = []
        virtual_tags_list = []
        if np.any(valid):
            valid_sets = np.nonzero(valid)[0].astype(np.int64)
            lru_tags = self._lru[valid_sets]
            mru_tags = self._mru[valid_sets]
            has_lru = lru_tags >= 0
            virtual_sets_list = [valid_sets[has_lru], valid_sets]
            virtual_tags_list = [lru_tags[has_lru], mru_tags]
        if virtual_sets_list:
            virtual_sets = np.concatenate(virtual_sets_list)
            virtual_tags = np.concatenate(virtual_tags_list)
        else:
            virtual_sets = np.zeros(0, dtype=np.int64)
            virtual_tags = np.zeros(0, dtype=np.int64)
        n_virtual = virtual_sets.shape[0]

        all_sets = np.concatenate([virtual_sets, sets])
        all_tags = np.concatenate([virtual_tags, tags])
        is_real = np.concatenate(
            [np.zeros(n_virtual, dtype=bool), np.ones(arr.shape[0], dtype=bool)]
        )

        order = np.argsort(all_sets, kind="stable")
        g_sets = all_sets[order]
        g_tags = all_tags[order]
        g_real = is_real[order]
        total = g_sets.shape[0]

        new_group = np.empty(total, dtype=bool)
        new_group[0] = True
        new_group[1:] = g_sets[1:] != g_sets[:-1]

        # Collapse consecutive duplicates within a group: they are hits and do
        # not change LRU state.
        prev_tag = np.empty_like(g_tags)
        prev_tag[1:] = g_tags[:-1]
        prev_tag[0] = g_tags[0] + 1  # force "different"
        duplicate = (~new_group) & (g_tags == prev_tag)

        # Positions of the collapsed (distinct) subsequence.
        distinct_idx = np.nonzero(~duplicate)[0]
        d_sets = g_sets[distinct_idx]
        d_tags = g_tags[distinct_idx]
        d_real = g_real[distinct_idx]
        m = distinct_idx.shape[0]

        d_new_group = np.empty(m, dtype=bool)
        d_new_group[0] = True
        d_new_group[1:] = d_sets[1:] != d_sets[:-1]
        # Second element of each group.
        d_second = np.zeros(m, dtype=bool)
        d_second[1:] = d_new_group[:-1] & ~d_new_group[1:]

        prev2 = np.empty_like(d_tags)
        prev2[2:] = d_tags[:-2]
        prev2[:2] = -10  # no valid "two back" for the first two entries overall
        # An entry hits iff it matches the distinct tag two back *within the
        # same group*; entries that are first or second in their group have no
        # such predecessor (their state is covered by the virtual accesses).
        has_prev2 = ~(d_new_group | d_second)
        d_hits = has_prev2 & (d_tags == prev2)
        d_miss = ~d_hits

        # Scatter distinct-position misses back; duplicates are hits.
        miss_grouped = np.zeros(total, dtype=bool)
        miss_grouped[distinct_idx] = d_miss

        misses_all = np.empty(total, dtype=bool)
        misses_all[order] = miss_grouped
        misses = misses_all[n_virtual:]

        # Update per-set state: the last two distinct tags of each group.
        if m:
            group_last = np.empty(m, dtype=bool)
            group_last[-1] = True
            group_last[:-1] = d_sets[1:] != d_sets[:-1]
            last_idx = np.nonzero(group_last)[0]
            last_sets = d_sets[last_idx]
            self._mru[last_sets] = d_tags[last_idx]
            has_prev_in_group = np.zeros(m, dtype=bool)
            has_prev_in_group[last_idx] = ~d_new_group[last_idx]
            prev_idx = last_idx - 1
            usable = last_idx[~d_new_group[last_idx]]
            self._lru[d_sets[usable]] = d_tags[usable - 1]

        self.stats.record(arr.shape[0], int(misses.sum()))
        return misses


def make_cache(config: CacheConfig, vectorized: bool = True) -> CacheSimulator:
    """Build the fastest exact simulator available for ``config``.

    With ``vectorized=False`` the reference LRU simulator is always returned
    (useful for cross-checking and the associativity ablation).
    """
    if not vectorized:
        return SetAssociativeLRUCache(config)
    if config.associativity == 1:
        return DirectMappedCache(config)
    if config.associativity == 2:
        return TwoWayLRUCache(config)
    return SetAssociativeLRUCache(config)


def simulate_trace(config: CacheConfig, addresses: np.ndarray, vectorized: bool = True) -> CacheStatistics:
    """One-shot convenience: simulate a cold cache over a trace, return stats."""
    cache = make_cache(config, vectorized=vectorized)
    cache.simulate(_as_address_array(addresses))
    return cache.stats
