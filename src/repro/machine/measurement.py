"""Measurement record produced by the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.machine.cpu import InstructionBreakdown
from repro.wht.interpreter import ExecutionStats
from repro.wht.plan import Plan

__all__ = ["Measurement"]


@dataclass(frozen=True)
class Measurement:
    """Everything the machine observed while running one plan once.

    This is the simulated analogue of one row of the paper's measurement
    campaign: total cycles, total retired instructions, and L1/L2 data-cache
    misses, plus the finer-grained breakdowns the models are built from.
    """

    #: The executed plan.
    plan: Plan
    #: Size exponent of the transform.
    n: int
    #: Simulated cycle count (the paper's ``PAPI_TOT_CYC``).
    cycles: float
    #: Retired instructions (the paper's ``PAPI_TOT_INS``).
    instructions: int
    #: L1 data-cache misses (the paper's ``PAPI_L1_DCM``).
    l1_misses: int
    #: L2 data-cache misses (the paper's ``PAPI_L2_DCM``).
    l2_misses: int
    #: L1 data-cache accesses (element loads + stores reaching the cache).
    l1_accesses: int
    #: Instruction totals by category.
    breakdown: InstructionBreakdown
    #: Raw structural event counts from the interpreter.
    stats: ExecutionStats
    #: Name of the machine configuration that produced the measurement.
    machine: str = "default"
    #: Optional wall-clock seconds of an actual (Python) execution.
    wall_time: float | None = None

    @property
    def size(self) -> int:
        """Transform length ``2^n``."""
        return 1 << self.n

    @property
    def loads(self) -> int:
        """Element loads executed by codelet bodies."""
        return self.breakdown.loads

    @property
    def stores(self) -> int:
        """Element stores executed by codelet bodies."""
        return self.breakdown.stores

    @property
    def arithmetic_ops(self) -> int:
        """Floating point additions and subtractions executed."""
        return self.breakdown.arithmetic

    @property
    def cycles_per_instruction(self) -> float:
        """Simulated CPI."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l1_miss_ratio(self) -> float:
        """L1 misses divided by L1 accesses."""
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0

    def combined_model_value(self, alpha: float, beta: float) -> float:
        """The paper's combined metric ``alpha * instructions + beta * misses``."""
        return alpha * self.instructions + beta * self.l1_misses

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary view (plan rendered as its grammar string)."""
        return {
            "plan": str(self.plan),
            "n": self.n,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "l1_accesses": self.l1_accesses,
            "loads": self.loads,
            "stores": self.stores,
            "arithmetic_ops": self.arithmetic_ops,
            "machine": self.machine,
            "wall_time": self.wall_time,
        }
