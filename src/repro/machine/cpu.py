"""CPU cost models: instruction counts and cycle counts.

Two models convert the interpreter's raw event counts and the cache
hierarchy's miss counts into the quantities the paper measures with PAPI:

* :class:`InstructionCostModel` — retired-instruction accounting: every
  floating-point operation, load and store of a codelet body is one
  instruction, and the control structure (codelet call overhead, split-node
  invocation overhead, the three loop levels of the triple loop) contributes a
  configurable number of bookkeeping instructions per event.  The defaults are
  chosen to resemble the relative overheads of the compiled WHT package
  (straight-line codelets are cheap per point, recursion and loop control are
  not free), not to be cycle-exact for any particular CPU.
* :class:`CycleModel` — cycles as a weighted sum of instruction classes plus
  cache-miss penalties plus secondary effects (per-call pipeline ramp-up,
  register-spill cost for the largest codelets) and an optional multiplicative
  noise term standing in for the measurement variance the paper attributes to
  "register spills, pipeline performance, functional unit utilization and
  other factors".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RandomState, as_generator
from repro.wht.interpreter import ExecutionStats

__all__ = ["InstructionCostModel", "CycleModel", "InstructionBreakdown"]


@dataclass(frozen=True)
class InstructionBreakdown:
    """Instruction totals by category for one plan execution."""

    arithmetic: int
    loads: int
    stores: int
    codelet_overhead: int
    split_overhead: int
    loop_overhead: int
    recursion_overhead: int

    @property
    def total(self) -> int:
        """All retired instructions."""
        return (
            self.arithmetic
            + self.loads
            + self.stores
            + self.codelet_overhead
            + self.split_overhead
            + self.loop_overhead
            + self.recursion_overhead
        )

    @property
    def overhead(self) -> int:
        """All non-arithmetic, non-memory instructions."""
        return (
            self.codelet_overhead
            + self.split_overhead
            + self.loop_overhead
            + self.recursion_overhead
        )

    def as_dict(self) -> dict[str, int]:
        """Flat dictionary view including the total."""
        return {
            "arithmetic": self.arithmetic,
            "loads": self.loads,
            "stores": self.stores,
            "codelet_overhead": self.codelet_overhead,
            "split_overhead": self.split_overhead,
            "loop_overhead": self.loop_overhead,
            "recursion_overhead": self.recursion_overhead,
            "total": self.total,
        }


@dataclass(frozen=True)
class InstructionCostModel:
    """Weights converting structural event counts into instruction counts.

    Attributes
    ----------
    codelet_call_base / codelet_call_per_unit:
        Instructions charged per codelet call: ``base + per_unit * k`` for a
        ``small[k]`` call (argument setup, address arithmetic, return).
    split_invocation_cost:
        Instructions charged per invocation of a split node's body (function
        prologue/epilogue, stride bookkeeping).
    outer_loop_cost:
        Instructions charged per iteration of the per-child ``i`` loop.
    block_loop_cost:
        Instructions charged per iteration of the block (``j``) loop header —
        the outer of the two inner loops (base-address recomputation
        ``j * N_i * S`` and loop control), executed ``R_i`` times per child.
    stride_loop_cost:
        Instructions charged per distinct stride offset per child (``S_i``
        values per child: the per-offset setup of the ``k`` loop).
    inner_loop_cost:
        Instructions charged per innermost loop body (one per child call:
        address computation and dispatch of the call).
    recursive_call_cost:
        Additional instructions charged per recursive (non-leaf) child call
        (function-pointer dispatch and callee prologue).
    """

    codelet_call_base: int = 12
    codelet_call_per_unit: int = 2
    split_invocation_cost: int = 24
    outer_loop_cost: int = 8
    block_loop_cost: int = 8
    stride_loop_cost: int = 1
    inner_loop_cost: int = 6
    recursive_call_cost: int = 10

    def breakdown(self, stats: ExecutionStats) -> InstructionBreakdown:
        """Instruction totals by category for the given event counts."""
        codelet_overhead = 0
        codelet_calls = 0
        for k, calls in stats.codelet_calls.items():
            codelet_overhead += calls * (
                self.codelet_call_base + self.codelet_call_per_unit * k
            )
            codelet_calls += calls
        loop_overhead = (
            stats.outer_iterations * self.outer_loop_cost
            + stats.stride_iterations * self.stride_loop_cost
            + stats.block_iterations * self.block_loop_cost
            + stats.child_calls * self.inner_loop_cost
        )
        recursive_calls = max(stats.child_calls - codelet_calls, 0)
        # A bare-leaf plan performs one codelet call that is not a child of any
        # split; it is already charged through codelet_overhead.
        recursion_overhead = recursive_calls * self.recursive_call_cost
        return InstructionBreakdown(
            arithmetic=stats.arithmetic_ops,
            loads=stats.loads,
            stores=stats.stores,
            codelet_overhead=codelet_overhead,
            split_overhead=stats.split_invocations * self.split_invocation_cost,
            loop_overhead=loop_overhead,
            recursion_overhead=recursion_overhead,
        )

    def instructions(self, stats: ExecutionStats) -> int:
        """Total retired instructions for the given event counts."""
        return self.breakdown(stats).total


@dataclass(frozen=True)
class CycleModel:
    """Converts instruction and miss counts into simulated cycle counts.

    The deterministic part is::

        cycles = fp_cost * arithmetic
               + load_cost * loads + store_cost * stores
               + overhead_cpi * overhead_instructions
               + l1_miss_penalty * l1_misses + l2_miss_penalty * l2_misses
               + call_rampup * codelet_calls
               + spill_penalty(k) summed over codelet calls

    and an optional multiplicative Gaussian noise term with standard deviation
    ``noise_sigma`` models run-to-run measurement variance.  Setting
    ``noise_sigma = 0`` makes the machine fully deterministic.
    """

    fp_cost: float = 1.0
    load_cost: float = 1.0
    store_cost: float = 1.0
    overhead_cpi: float = 1.0
    l1_miss_penalty: float = 30.0
    l2_miss_penalty: float = 160.0
    call_rampup: float = 2.0
    #: Extra cycles per codelet call for codelets whose working set exceeds the
    #: architectural register budget (register spills in the unrolled code).
    spill_threshold_k: int = 6
    spill_cost_per_element: float = 1.5
    noise_sigma: float = 0.05

    def spill_penalty(self, k: int) -> float:
        """Extra cycles per call of ``small[k]`` due to register spills."""
        size = 1 << k
        threshold = 1 << self.spill_threshold_k
        return self.spill_cost_per_element * max(0, size - threshold)

    def deterministic_cycles(
        self,
        stats: ExecutionStats,
        breakdown: InstructionBreakdown,
        l1_misses: int,
        l2_misses: int,
    ) -> float:
        """The noise-free cycle count."""
        cycles = (
            self.fp_cost * breakdown.arithmetic
            + self.load_cost * breakdown.loads
            + self.store_cost * breakdown.stores
            + self.overhead_cpi * breakdown.overhead
            + self.l1_miss_penalty * float(l1_misses)
            + self.l2_miss_penalty * float(l2_misses)
        )
        for k, calls in stats.codelet_calls.items():
            cycles += calls * (self.call_rampup + self.spill_penalty(k))
        return float(cycles)

    def cycles(
        self,
        stats: ExecutionStats,
        breakdown: InstructionBreakdown,
        l1_misses: int,
        l2_misses: int,
        rng: RandomState = None,
    ) -> float:
        """Cycle count including the stochastic measurement-variance term."""
        base = self.deterministic_cycles(stats, breakdown, l1_misses, l2_misses)
        if self.noise_sigma <= 0.0:
            return base
        generator = as_generator(rng)
        factor = 1.0 + self.noise_sigma * float(generator.standard_normal())
        # Clamp the factor so pathological draws can never produce negative
        # or absurd cycle counts.
        factor = min(max(factor, 0.5), 1.5)
        return base * factor
