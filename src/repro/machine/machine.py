"""The simulated machine: plans in, measurements out.

:class:`SimulatedMachine` glues the substrate together: the plan interpreter
profiles the plan (event counts + leaf nests), the trace generator expands the
nests into a byte-address trace, the memory hierarchy counts misses, and the
CPU models convert everything into instruction and cycle counts.  One call to
:meth:`SimulatedMachine.measure` corresponds to one PAPI-instrumented run of
the compiled WHT package in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.machine.cache import CacheConfig
from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.machine.hierarchy import HierarchyStatistics, MemoryHierarchy
from repro.machine.measurement import Measurement
from repro.machine.trace import (
    DEFAULT_ELEMENT_SIZE,
    splice_line_chunks,
    stream_line_chunks,
)
from repro.util.lru import LRUCache
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.interpreter import ExecutionStats, PlanInterpreter
from repro.wht.plan import Plan

__all__ = ["MachineConfig", "PreparedPlan", "PreparedPlanCache", "SimulatedMachine"]


@dataclass(frozen=True)
class MachineConfig:
    """Full description of a simulated machine."""

    #: Human-readable configuration name (recorded in every measurement).
    name: str
    #: L1 data cache geometry.
    l1: CacheConfig
    #: L2 cache geometry (``None`` disables the second level).
    l2: CacheConfig | None
    #: Instruction-cost weights.
    instruction_model: InstructionCostModel = field(default_factory=InstructionCostModel)
    #: Cycle-cost weights.
    cycle_model: CycleModel = field(default_factory=CycleModel)
    #: Bytes per vector element (doubles by default).
    element_size: int = DEFAULT_ELEMENT_SIZE
    #: Use the vectorised cache simulators when the geometry allows it.
    vectorized_caches: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.element_size, "element_size")
        if self.l2 is not None and self.l2.size_bytes < self.l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")

    def l1_capacity_exponent(self) -> int:
        """Largest ``n`` such that a ``2^n``-element vector fits in L1."""
        elements = self.l1.size_bytes // self.element_size
        return max(int(elements).bit_length() - 1, 0)

    def l2_capacity_exponent(self) -> int | None:
        """Largest ``n`` such that a ``2^n``-element vector fits in L2."""
        if self.l2 is None:
            return None
        elements = self.l2.size_bytes // self.element_size
        return max(int(elements).bit_length() - 1, 0)

    def with_noise(self, noise_sigma: float) -> "MachineConfig":
        """A copy of the configuration with a different cycle-noise level."""
        return replace(self, cycle_model=replace(self.cycle_model, noise_sigma=noise_sigma))

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        l2_desc = self.l2.describe() if self.l2 is not None else "no L2"
        return (
            f"{self.name}: L1[{self.l1.describe()}] L2[{l2_desc}] "
            f"element={self.element_size}B "
            f"L1 boundary=2^{self.l1_capacity_exponent()} elements"
        )


@dataclass(frozen=True)
class PreparedPlan:
    """The deterministic half of a measurement: profile and cache statistics.

    Interpreting the plan, expanding the trace and simulating the cache
    hierarchy are pure functions of (plan, machine configuration); only the
    cycle-noise draw varies between repeated measurements of the same plan.
    Splitting the two lets batched execution amortise the expensive half
    across work units that share a plan while keeping exact result parity.
    """

    plan: Plan
    stats: ExecutionStats
    hierarchy_stats: HierarchyStatistics


class PreparedPlanCache:
    """Bounded LRU cache of :class:`PreparedPlan` keyed by plan content.

    Preparing a plan (interpret + trace + cache simulation) is a pure
    function of (plan, machine configuration), so a machine that is asked to
    measure the same plan repeatedly — a search re-visiting candidates, a
    figure re-running on a warm session — can reuse the deterministic half
    and pay only for the noise draw.  Keys are
    :func:`repro.wht.encoding.plan_key`, so structurally equal plans share an
    entry regardless of object identity.  Entries are treated as immutable.

    A cache instance must only ever be attached to machines with identical
    configurations (the cache does not key on the machine).
    """

    def __init__(self, capacity: int = 1024):
        self._entries: LRUCache[str, PreparedPlan] = LRUCache(capacity)
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained preparations."""
        return self._entries.capacity

    def get(self, plan: Plan) -> PreparedPlan | None:
        """The cached preparation of ``plan``, or ``None``."""
        entry = self._entries.get(plan_key(plan))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, prepared: PreparedPlan) -> None:
        """Store a preparation (evicting the least recently used entry)."""
        self._entries.put(plan_key(prepared.plan), prepared)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PreparedPlanCache({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


class SimulatedMachine:
    """Execution-driven simulator producing PAPI-style measurements."""

    def __init__(
        self,
        config: MachineConfig,
        rng: RandomState = None,
        prepared_cache: PreparedPlanCache | None = None,
    ):
        self.config = config
        self.hierarchy = MemoryHierarchy(
            config.l1, config.l2, vectorized=config.vectorized_caches
        )
        self._interpreter = PlanInterpreter()
        self._rng = as_generator(rng)
        self.prepared_cache = prepared_cache

    # -- measurement -----------------------------------------------------------

    def prepare(self, plan: Plan) -> PreparedPlan:
        """Profile ``plan`` and simulate the caches (the deterministic part).

        The whole measurement substrate streams: the interpreter's nest-block
        walker feeds the batched line-granular trace expander, whose bounded
        chunks feed warm-started hierarchy simulators.  Neither the nest list
        nor the address trace is ever materialised, and the statistics are
        bit-identical to the eager profile → trace → simulate pipeline —
        including the two exact shortcuts of the fused pipeline (analytic
        full-coverage statistics for footprints that fit a cache level, and
        write-pass elision; see DESIGN.md §10).

        With a :class:`PreparedPlanCache` attached, repeated preparations of
        structurally equal plans return the cached (identical) result.
        """
        cache = self.prepared_cache
        if cache is not None:
            cached = cache.get(plan)
            if cached is not None:
                return cached
        prepared = self._prepare_fused([plan])[0]
        if cache is not None:
            cache.put(prepared)
        return prepared

    def prepare_batch(self, plans: Sequence[Plan]) -> list[PreparedPlan]:
        """Prepare many plans as one fused workload, preserving order.

        The batch is deduplicated by :func:`repro.wht.encoding.plan_key`
        (and served from the :class:`PreparedPlanCache` where possible); the
        remaining distinct plans are walked once each and their line streams
        spliced into a single cross-plan super-stream that the memory
        hierarchy simulates in one vectorised pass per level
        (:meth:`~repro.machine.hierarchy.MemoryHierarchy.process_line_chunks_batch`).
        Every returned :class:`PreparedPlan` is bit-identical to what
        :meth:`prepare` produces for the same plan.
        """
        cache = self.prepared_cache
        resolved: dict[str, PreparedPlan] = {}
        missing: dict[str, Plan] = {}
        order: list[str] = []
        for plan in plans:
            key = plan_key(plan)
            order.append(key)
            if key in resolved or key in missing:
                continue
            if cache is not None:
                cached = cache.get(plan)
                if cached is not None:
                    resolved[key] = cached
                    continue
            missing[key] = plan
        if missing:
            for key, prepared in zip(
                missing, self._prepare_fused(list(missing.values()))
            ):
                resolved[key] = prepared
                if cache is not None:
                    cache.put(prepared)
        return [resolved[key] for key in order]

    def _prepare_fused(self, plans: list[Plan]) -> list[PreparedPlan]:
        """Prepare distinct plans through the fused measurement pipeline.

        Plans whose full vector provably fits L1 get exact analytic
        hierarchy statistics (no trace is ever expanded); the rest are walked
        into per-plan chunk streams, spliced into one super-stream at
        disjoint line offsets and simulated batch-wise, with the L2 level
        resolved analytically for every plan whose footprint fits it.
        """
        config = self.config
        hierarchy = self.hierarchy
        element_size = config.element_size
        line_size = config.l1.line_size
        stats_list = [ExecutionStats(n=plan.n) for plan in plans]
        footprints = [plan.size * element_size for plan in plans]
        hierarchy_stats: list[HierarchyStatistics | None] = [None] * len(plans)
        streamed: list[int] = []
        # The full-coverage shortcuts need every L1 line of the footprint to
        # actually be touched: consecutive element addresses must be at most
        # one line apart AND the footprint's last line must contain an
        # element address, both guaranteed exactly when the element size
        # divides the line size (always true for the 8-byte doubles on
        # power-of-two lines; anything else falls back to simulation).
        dense = (
            element_size <= line_size and line_size % element_size == 0
        )
        for index, plan in enumerate(plans):
            if dense and hierarchy.covers_analytically(footprints[index]):
                # Consume the walk for the event counts only; the cache
                # statistics are exact without expanding a single address.
                for _ in self._interpreter.iter_nest_blocks(
                    plan, stats=stats_list[index]
                ):
                    pass
                hierarchy_stats[index] = hierarchy.analytic_coverage_stats(
                    footprints[index], stats_list[index].memory_ops
                )
            else:
                streamed.append(index)
        if streamed:
            offsets = hierarchy.batch_line_offsets(
                [-(-footprints[index] // line_size) for index in streamed]
            )
            streams = [
                stream_line_chunks(
                    self._interpreter.iter_nest_blocks(
                        plans[index], stats=stats_list[index]
                    ),
                    line_size=line_size,
                    element_size=element_size,
                    hit_elision_sets=config.l1.num_sets,
                    hit_elision_ways=config.l1.associativity,
                )
                for index in streamed
            ]
            batch_stats = hierarchy.process_line_chunks_batch(
                splice_line_chunks(streams, offsets),
                len(streamed),
                footprint_bytes=(
                    [footprints[index] for index in streamed] if dense else None
                ),
            )
            for index, stats in zip(streamed, batch_stats):
                hierarchy_stats[index] = stats
        return [
            PreparedPlan(plan=plan, stats=stats, hierarchy_stats=hier_stats)
            for plan, stats, hier_stats in zip(plans, stats_list, hierarchy_stats)
        ]

    def measure_prepared(self, prepared: PreparedPlan, rng: RandomState = None) -> Measurement:
        """Turn a :class:`PreparedPlan` into a measurement (noise draw included).

        ``measure(plan, rng=r)`` and ``measure_prepared(prepare(plan), rng=r)``
        produce bit-identical measurements.
        """
        return self._assemble(prepared.plan, prepared.stats, prepared.hierarchy_stats, rng)

    def measure(self, plan: Plan, rng: RandomState = None) -> Measurement:
        """Run ``plan`` once on cold caches and return the full measurement.

        ``rng`` overrides the machine's generator for the cycle-noise draw,
        which lets campaigns make every sample reproducible independently of
        execution order.
        """
        return self.measure_prepared(self.prepare(plan), rng=rng)

    def measure_instructions_only(self, plan: Plan) -> int:
        """Retired-instruction count without simulating the caches (fast)."""
        stats, _ = self._interpreter.profile(plan, record_trace=False)
        return self.config.instruction_model.instructions(stats)

    def measure_wall_time(
        self,
        plan: Plan,
        repetitions: int = 1,
        trim_fraction: float | None = None,
    ) -> float:
        """Wall-clock seconds of actually executing the plan in Python.

        With the default ``trim_fraction=None`` the median of ``repetitions``
        runs is returned (the historical behaviour).  A fraction in
        ``[0, 0.5)`` instead drops that share of the sorted timings from
        *each* end and returns the mean of the rest — the trimmed-mean
        policy the ``wall_time`` metric stores (see
        :class:`repro.runtime.metrics.WallTimePolicy` and DESIGN.md §9),
        which damps scheduler outliers and makes records from different
        hosts comparable in spirit even though wall time is inherently
        non-deterministic.

        Included for completeness; as discussed in DESIGN.md, interpreted
        wall-clock time is dominated by Python overhead rather than the cache
        behaviour the paper studies, so the simulated cycle count is the
        primary performance metric of this reproduction.
        """
        check_positive_int(repetitions, "repetitions")
        if trim_fraction is not None and not 0.0 <= trim_fraction < 0.5:
            raise ValueError(
                f"trim_fraction must lie in [0, 0.5), got {trim_fraction}"
            )
        x = np.zeros(plan.size, dtype=np.float64)
        times: list[float] = []
        for _ in range(repetitions):
            x[:] = np.arange(plan.size, dtype=np.float64)
            start = time.perf_counter()
            self._interpreter.execute(plan, x)
            times.append(time.perf_counter() - start)
        times.sort()
        if trim_fraction is None:
            return times[len(times) // 2]
        drop = int(len(times) * trim_fraction)
        kept = times[drop : len(times) - drop]
        return sum(kept) / len(kept)

    # -- internals --------------------------------------------------------------

    def _assemble(
        self,
        plan: Plan,
        stats,
        hierarchy_stats: HierarchyStatistics,
        rng: RandomState,
    ) -> Measurement:
        breakdown = self.config.instruction_model.breakdown(stats)
        generator = self._rng if rng is None else as_generator(rng)
        cycles = self.config.cycle_model.cycles(
            stats,
            breakdown,
            l1_misses=hierarchy_stats.l1_misses,
            l2_misses=hierarchy_stats.l2_misses,
            rng=generator,
        )
        return Measurement(
            plan=plan,
            n=plan.n,
            cycles=cycles,
            instructions=breakdown.total,
            l1_misses=hierarchy_stats.l1_misses,
            l2_misses=hierarchy_stats.l2_misses,
            l1_accesses=hierarchy_stats.l1_accesses,
            breakdown=breakdown,
            stats=stats,
            machine=self.config.name,
        )
