"""The simulated machine: plans in, measurements out.

:class:`SimulatedMachine` glues the substrate together: the plan interpreter
profiles the plan (event counts + leaf nests), the trace generator expands the
nests into a byte-address trace, the memory hierarchy counts misses, and the
CPU models convert everything into instruction and cycle counts.  One call to
:meth:`SimulatedMachine.measure` corresponds to one PAPI-instrumented run of
the compiled WHT package in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.machine.cache import CacheConfig
from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.machine.hierarchy import HierarchyStatistics, MemoryHierarchy
from repro.machine.measurement import Measurement
from repro.machine.trace import DEFAULT_ELEMENT_SIZE, stream_line_chunks
from repro.util.lru import LRUCache
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.interpreter import ExecutionStats, PlanInterpreter
from repro.wht.plan import Plan

__all__ = ["MachineConfig", "PreparedPlan", "PreparedPlanCache", "SimulatedMachine"]


@dataclass(frozen=True)
class MachineConfig:
    """Full description of a simulated machine."""

    #: Human-readable configuration name (recorded in every measurement).
    name: str
    #: L1 data cache geometry.
    l1: CacheConfig
    #: L2 cache geometry (``None`` disables the second level).
    l2: CacheConfig | None
    #: Instruction-cost weights.
    instruction_model: InstructionCostModel = field(default_factory=InstructionCostModel)
    #: Cycle-cost weights.
    cycle_model: CycleModel = field(default_factory=CycleModel)
    #: Bytes per vector element (doubles by default).
    element_size: int = DEFAULT_ELEMENT_SIZE
    #: Use the vectorised cache simulators when the geometry allows it.
    vectorized_caches: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.element_size, "element_size")
        if self.l2 is not None and self.l2.size_bytes < self.l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")

    def l1_capacity_exponent(self) -> int:
        """Largest ``n`` such that a ``2^n``-element vector fits in L1."""
        elements = self.l1.size_bytes // self.element_size
        return max(int(elements).bit_length() - 1, 0)

    def l2_capacity_exponent(self) -> int | None:
        """Largest ``n`` such that a ``2^n``-element vector fits in L2."""
        if self.l2 is None:
            return None
        elements = self.l2.size_bytes // self.element_size
        return max(int(elements).bit_length() - 1, 0)

    def with_noise(self, noise_sigma: float) -> "MachineConfig":
        """A copy of the configuration with a different cycle-noise level."""
        return replace(self, cycle_model=replace(self.cycle_model, noise_sigma=noise_sigma))

    def describe(self) -> str:
        """Human-readable summary used by reports."""
        l2_desc = self.l2.describe() if self.l2 is not None else "no L2"
        return (
            f"{self.name}: L1[{self.l1.describe()}] L2[{l2_desc}] "
            f"element={self.element_size}B "
            f"L1 boundary=2^{self.l1_capacity_exponent()} elements"
        )


@dataclass(frozen=True)
class PreparedPlan:
    """The deterministic half of a measurement: profile and cache statistics.

    Interpreting the plan, expanding the trace and simulating the cache
    hierarchy are pure functions of (plan, machine configuration); only the
    cycle-noise draw varies between repeated measurements of the same plan.
    Splitting the two lets batched execution amortise the expensive half
    across work units that share a plan while keeping exact result parity.
    """

    plan: Plan
    stats: ExecutionStats
    hierarchy_stats: HierarchyStatistics


class PreparedPlanCache:
    """Bounded LRU cache of :class:`PreparedPlan` keyed by plan content.

    Preparing a plan (interpret + trace + cache simulation) is a pure
    function of (plan, machine configuration), so a machine that is asked to
    measure the same plan repeatedly — a search re-visiting candidates, a
    figure re-running on a warm session — can reuse the deterministic half
    and pay only for the noise draw.  Keys are
    :func:`repro.wht.encoding.plan_key`, so structurally equal plans share an
    entry regardless of object identity.  Entries are treated as immutable.

    A cache instance must only ever be attached to machines with identical
    configurations (the cache does not key on the machine).
    """

    def __init__(self, capacity: int = 1024):
        self._entries: LRUCache[str, PreparedPlan] = LRUCache(capacity)
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained preparations."""
        return self._entries.capacity

    def get(self, plan: Plan) -> PreparedPlan | None:
        """The cached preparation of ``plan``, or ``None``."""
        entry = self._entries.get(plan_key(plan))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, prepared: PreparedPlan) -> None:
        """Store a preparation (evicting the least recently used entry)."""
        self._entries.put(plan_key(prepared.plan), prepared)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PreparedPlanCache({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


class SimulatedMachine:
    """Execution-driven simulator producing PAPI-style measurements."""

    def __init__(
        self,
        config: MachineConfig,
        rng: RandomState = None,
        prepared_cache: PreparedPlanCache | None = None,
    ):
        self.config = config
        self.hierarchy = MemoryHierarchy(
            config.l1, config.l2, vectorized=config.vectorized_caches
        )
        self._interpreter = PlanInterpreter()
        self._rng = as_generator(rng)
        self.prepared_cache = prepared_cache

    # -- measurement -----------------------------------------------------------

    def prepare(self, plan: Plan) -> PreparedPlan:
        """Profile ``plan`` and simulate the caches (the deterministic part).

        The whole measurement substrate streams: the interpreter's nest-block
        walker feeds the batched line-granular trace expander, whose bounded
        chunks feed warm-started hierarchy simulators.  Neither the nest list
        nor the address trace is ever materialised, and the statistics are
        bit-identical to the eager profile → trace → simulate pipeline.

        With a :class:`PreparedPlanCache` attached, repeated preparations of
        structurally equal plans return the cached (identical) result.
        """
        cache = self.prepared_cache
        if cache is not None:
            cached = cache.get(plan)
            if cached is not None:
                return cached
        stats = ExecutionStats(n=plan.n)
        blocks = self._interpreter.iter_nest_blocks(plan, stats=stats)
        chunks = stream_line_chunks(
            blocks,
            line_size=self.config.l1.line_size,
            element_size=self.config.element_size,
        )
        hierarchy_stats = self.hierarchy.process_line_chunks(chunks)
        prepared = PreparedPlan(plan=plan, stats=stats, hierarchy_stats=hierarchy_stats)
        if cache is not None:
            cache.put(prepared)
        return prepared

    def measure_prepared(self, prepared: PreparedPlan, rng: RandomState = None) -> Measurement:
        """Turn a :class:`PreparedPlan` into a measurement (noise draw included).

        ``measure(plan, rng=r)`` and ``measure_prepared(prepare(plan), rng=r)``
        produce bit-identical measurements.
        """
        return self._assemble(prepared.plan, prepared.stats, prepared.hierarchy_stats, rng)

    def measure(self, plan: Plan, rng: RandomState = None) -> Measurement:
        """Run ``plan`` once on cold caches and return the full measurement.

        ``rng`` overrides the machine's generator for the cycle-noise draw,
        which lets campaigns make every sample reproducible independently of
        execution order.
        """
        return self.measure_prepared(self.prepare(plan), rng=rng)

    def measure_instructions_only(self, plan: Plan) -> int:
        """Retired-instruction count without simulating the caches (fast)."""
        stats, _ = self._interpreter.profile(plan, record_trace=False)
        return self.config.instruction_model.instructions(stats)

    def measure_wall_time(self, plan: Plan, repetitions: int = 1) -> float:
        """Median wall-clock seconds of actually executing the plan in Python.

        Included for completeness; as discussed in DESIGN.md, interpreted
        wall-clock time is dominated by Python overhead rather than the cache
        behaviour the paper studies, so the simulated cycle count is the
        primary performance metric of this reproduction.
        """
        check_positive_int(repetitions, "repetitions")
        x = np.zeros(plan.size, dtype=np.float64)
        times: list[float] = []
        for _ in range(repetitions):
            x[:] = np.arange(plan.size, dtype=np.float64)
            start = time.perf_counter()
            self._interpreter.execute(plan, x)
            times.append(time.perf_counter() - start)
        times.sort()
        return times[len(times) // 2]

    # -- internals --------------------------------------------------------------

    def _assemble(
        self,
        plan: Plan,
        stats,
        hierarchy_stats: HierarchyStatistics,
        rng: RandomState,
    ) -> Measurement:
        breakdown = self.config.instruction_model.breakdown(stats)
        generator = self._rng if rng is None else as_generator(rng)
        cycles = self.config.cycle_model.cycles(
            stats,
            breakdown,
            l1_misses=hierarchy_stats.l1_misses,
            l2_misses=hierarchy_stats.l2_misses,
            rng=generator,
        )
        return Measurement(
            plan=plan,
            n=plan.n,
            cycles=cycles,
            instructions=breakdown.total,
            l1_misses=hierarchy_stats.l1_misses,
            l2_misses=hierarchy_stats.l2_misses,
            l1_accesses=hierarchy_stats.l1_accesses,
            breakdown=breakdown,
            stats=stats,
            machine=self.config.name,
        )
