"""Generation of unrolled straight-line codelet source (mirror of ``whtgen``).

The WHT package generates unrolled C code for small transforms so that base
cases of the recursion avoid loop and recursion overhead.  This module mirrors
that generator in Python: :func:`generate_codelet_source` emits the source of
a straight-line function ``wht_codelet_<k>(x, base, stride)`` computing
``WHT_{2^k}`` in place on the strided subvector
``x[base], x[base+stride], ..., x[base+(2^k-1)*stride]``.

The generated functions are used to cross-check the vectorised codelets in
:mod:`repro.wht.codelets` and to derive the exact per-codelet operation counts
(each emitted arithmetic statement is one addition or subtraction; each load
and store is one memory access) that feed the instruction-count model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED

__all__ = [
    "GeneratedCodelet",
    "generate_codelet_source",
    "compile_codelet",
    "unrolled_operation_counts",
]


@dataclass(frozen=True)
class GeneratedCodelet:
    """A compiled unrolled codelet together with its static operation counts."""

    k: int
    function: Callable
    source: str
    additions: int
    subtractions: int
    loads: int
    stores: int

    @property
    def arithmetic_ops(self) -> int:
        """Total floating-point additions plus subtractions."""
        return self.additions + self.subtractions

    @property
    def memory_ops(self) -> int:
        """Total loads plus stores."""
        return self.loads + self.stores


def generate_codelet_source(k: int, name: str | None = None) -> str:
    """Return Python source of the unrolled in-place ``WHT_{2^k}`` codelet.

    The generated code uses the standard ``k``-stage butterfly network: at
    stage ``m`` elements whose indices differ only in bit ``m`` are combined
    with one addition and one subtraction.  All intermediate values live in
    local variables so the emitted loads/stores match the unrolled C codelets
    of the WHT package (``2^k`` loads, ``2^k`` stores, ``k * 2^k`` arithmetic
    operations).
    """
    check_positive_int(k, "k")
    if k > MAX_UNROLLED:
        raise ValueError(f"unrolled codelets are generated only up to k={MAX_UNROLLED}")
    size = 1 << k
    fname = name or f"wht_codelet_{k}"
    lines: list[str] = []
    lines.append(f"def {fname}(x, base=0, stride=1):")
    lines.append(f'    """Unrolled in-place WHT of size {size} (stride-parameterised)."""')
    # Loads.
    for i in range(size):
        if i == 0:
            lines.append(f"    t0_{i} = x[base]")
        else:
            lines.append(f"    t0_{i} = x[base + {i} * stride]")
    # Butterfly stages.
    for stage in range(k):
        half = 1 << stage
        prev = f"t{stage}_"
        cur = f"t{stage + 1}_"
        lines.append(f"    # stage {stage}: combine indices differing in bit {stage}")
        for i in range(size):
            if i & half:
                partner = i ^ half
                lines.append(f"    {cur}{i} = {prev}{partner} - {prev}{i}")
            else:
                partner = i ^ half
                lines.append(f"    {cur}{i} = {prev}{i} + {prev}{partner}")
    # Stores.
    final = f"t{k}_"
    for i in range(size):
        if i == 0:
            lines.append(f"    x[base] = {final}{i}")
        else:
            lines.append(f"    x[base + {i} * stride] = {final}{i}")
    lines.append("")
    return "\n".join(lines)


def unrolled_operation_counts(k: int) -> dict[str, int]:
    """Static operation counts of the unrolled codelet of size ``2^k``.

    Returns a dictionary with keys ``additions``, ``subtractions``, ``loads``
    and ``stores``.  These are exact counts of the statements emitted by
    :func:`generate_codelet_source` and therefore the values the WHT package's
    instruction-count model attributes to a ``small[k]`` leaf body.
    """
    check_positive_int(k, "k")
    if k > MAX_UNROLLED:
        raise ValueError(f"unrolled codelets are generated only up to k={MAX_UNROLLED}")
    size = 1 << k
    half_ops = k * size // 2
    return {
        "additions": half_ops,
        "subtractions": half_ops,
        "loads": size,
        "stores": size,
    }


def compile_codelet(k: int) -> GeneratedCodelet:
    """Generate, ``exec`` and wrap the unrolled codelet of size ``2^k``."""
    source = generate_codelet_source(k)
    namespace: dict = {}
    exec(compile(source, filename=f"<wht_codelet_{k}>", mode="exec"), namespace)
    counts = unrolled_operation_counts(k)
    return GeneratedCodelet(
        k=k,
        function=namespace[f"wht_codelet_{k}"],
        source=source,
        additions=counts["additions"],
        subtractions=counts["subtractions"],
        loads=counts["loads"],
        stores=counts["stores"],
    )
