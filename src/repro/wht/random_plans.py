"""Random plan generation: the recursive split uniform (RSU) distribution.

The paper's samples (Figures 4–11) are drawn from the *recursive split
uniform* distribution of Hitczenko–Johnson–Huang: starting from the root
exponent ``n``, every admissible composition ``n = n_1 + ... + n_t`` is chosen
with equal probability (including the trivial one-part composition when a
codelet of that size exists, which terminates the recursion), and the process
recurses independently into each part.

Two refinements used by the WHT package are supported:

* ``max_leaf`` — exponents above this cannot terminate (no unrolled codelet),
* ``max_children`` — optional bound on the number of parts per split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.util.compositions import compositions
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split

__all__ = ["RSUSampler", "random_plan", "random_plans"]

#: Upper bound on the masked 32-bit value, used by the bounded-draw replay.
_MASK32 = (1 << 32) - 1

#: Whether this NumPy's ``Generator.integers`` draws can be replayed from a
#: buffered word stream (probed lazily, see :func:`_integer_replay_supported`).
_REPLAY_SUPPORTED: bool | None = None


class _BoundedWordStream:
    """Replay of ``Generator.integers(0, k)`` draws over buffered raw words.

    NumPy's bounded integer generation for ranges fitting 32 bits is
    Lemire's algorithm over the generator's ``next_uint32`` stream; drawing
    full-range ``uint32`` words in bulk exposes exactly that stream, so the
    per-node draws of the restricted RSU distribution can be reproduced
    *bit-identically* without one ``Generator.integers`` call per node.
    Only the generator's final position may differ (the buffer over-draws),
    matching the contract of the unrestricted gap-bit fast path.  The replay
    is validated against NumPy once per process
    (:func:`_integer_replay_supported`); an unexpected implementation would
    simply fall back to the scalar path.
    """

    def __init__(self, generator: np.random.Generator, chunk: int):
        self._generator = generator
        # Bounded buffer: it refills on demand, so a cap costs nothing in
        # amortisation but keeps the transient int list (and the final
        # over-draw past the last needed word) bounded for huge batches.
        self._chunk = max(min(int(chunk), 1 << 16), 256)
        self._words: list[int] = []
        self._pos = 0

    def _word(self) -> int:
        if self._pos >= len(self._words):
            self._words = self._generator.integers(
                0, 1 << 32, size=self._chunk, dtype=np.uint32
            ).tolist()
            self._pos = 0
        word = self._words[self._pos]
        self._pos += 1
        return word

    def bounded(self, k: int) -> int:
        """The next ``int(generator.integers(0, k))`` value (``k < 2**31``)."""
        rng = k - 1
        if rng == 0:
            return 0  # numpy consumes nothing for a single-value range
        rng_excl = rng + 1
        m = self._word() * rng_excl
        leftover = m & _MASK32
        if leftover < rng_excl:
            threshold = (_MASK32 - rng) % rng_excl
            while leftover < threshold:
                m = self._word() * rng_excl
                leftover = m & _MASK32
        return m >> 32


def _integer_replay_supported() -> bool:
    """Probe whether :class:`_BoundedWordStream` reproduces NumPy's draws.

    Compares a few hundred adaptive-range scalar ``Generator.integers``
    draws (including single-value ranges and rejection-heavy ranges near
    ``2**31``) against the replay over an identically seeded generator.
    Cached per process; a NumPy whose bounded generation differs simply
    keeps the scalar restricted path.
    """
    global _REPLAY_SUPPORTED
    if _REPLAY_SUPPORTED is None:
        scalar = np.random.default_rng(0x5EED)
        replay = _BoundedWordStream(np.random.default_rng(0x5EED), chunk=256)
        supported = True
        k = 7
        for step in range(400):
            value = replay.bounded(k)
            if int(scalar.integers(0, k)) != value:
                supported = False
                break
            # Adapt the next range to the drawn value (like the sampler) and
            # cycle through edge ranges: k=1, tiny, and rejection-heavy.
            k = [
                (value * 131 + step) % 57 + 1,
                1,
                2,
                3,
                (1 << 31) - 1,
                (1 << 20) + 7,
            ][step % 6]
        _REPLAY_SUPPORTED = supported
    return _REPLAY_SUPPORTED


@dataclass
class RSUSampler:
    """Sampler for the recursive split uniform distribution over plans.

    Parameters
    ----------
    max_leaf:
        Largest exponent allowed for a leaf (default: the package's largest
        unrolled codelet).
    max_children:
        Optional bound on the number of children per split node; ``None``
        reproduces the paper's unrestricted distribution.
    allow_trivial_leaf:
        When true (default), an exponent ``m <= max_leaf`` may terminate as a
        leaf with the same probability as any proper composition of ``m`` —
        this matches the distribution of [5], where the one-part composition
        is one of the equally likely choices.
    """

    max_leaf: int = MAX_UNROLLED
    max_children: int | None = None
    allow_trivial_leaf: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.max_leaf, "max_leaf")
        if self.max_leaf > MAX_UNROLLED:
            raise ValueError(
                f"max_leaf must be at most {MAX_UNROLLED}, got {self.max_leaf}"
            )
        if self.max_children is not None:
            check_positive_int(self.max_children, "max_children")
            if self.max_children < 2:
                raise ValueError("max_children must be at least 2")
        # Cache of enumerated choice lists per exponent (only needed on the
        # slow path, i.e. when max_children restricts the compositions).
        self._choice_cache: dict[int, list[tuple[int, ...]]] = {}

    # -- choice enumeration ----------------------------------------------------

    def choices(self, m: int) -> list[tuple[int, ...]]:
        """All equally likely composition choices for exponent ``m``.

        A one-part composition ``(m,)`` denotes "stop and emit a leaf"; it is
        present only when a codelet of that size exists and
        ``allow_trivial_leaf`` is set (or when no proper composition exists).
        """
        check_positive_int(m, "m")
        cached = self._choice_cache.get(m)
        if cached is not None:
            return cached
        options: list[tuple[int, ...]] = []
        for comp in compositions(m, min_parts=2):
            if self.max_children is not None and len(comp) > self.max_children:
                continue
            options.append(comp)
        can_leaf = m <= self.max_leaf
        if can_leaf and (self.allow_trivial_leaf or not options):
            options.insert(0, (m,))
        if not options:
            raise ValueError(
                f"exponent {m} admits neither a leaf (max_leaf={self.max_leaf}) "
                f"nor a split under max_children={self.max_children}"
            )
        self._choice_cache[m] = options
        return options

    # -- sampling ---------------------------------------------------------------

    def sample(self, n: int, rng: RandomState = None) -> Plan:
        """Draw one plan of size ``2^n`` from the RSU distribution."""
        check_positive_int(n, "n")
        generator = as_generator(rng)
        return self._sample_exponent(n, generator)

    def sample_many(self, n: int, count: int, rng: RandomState = None) -> list[Plan]:
        """Draw ``count`` independent plans of size ``2^n``.

        Both distributions take a batched fast path.  The unrestricted one
        (``max_children=None``) pulls the gap bits of *every* draw from the
        generator in large chunks and runs the recursive parse over the
        buffered bit stream, which removes the per-node ``Generator.random``
        call that dominates one-at-a-time sampling (10,000 samples at
        ``n=18`` drop from ~0.6 s to well under 0.1 s).  The restricted one
        (``max_children=...``) replays its per-node ``Generator.integers``
        draws from a buffered raw-word stream
        (:class:`_BoundedWordStream`).  Either way the stream is consumed in
        exactly the scalar order, so the returned plans are **bit-identical**
        to ``[self.sample(n, rng) for _ in range(count)]`` for the same seed;
        only the generator's final position may differ (the buffer may
        over-draw), so interleave ``sample_many`` with other uses of a shared
        generator only if you do not rely on that position.
        """
        check_positive_int(count, "count")
        check_positive_int(n, "n")
        generator = as_generator(rng)
        if self.max_children is not None:
            return self._sample_many_restricted(n, count, generator)
        return self._sample_many_buffered(n, count, generator)

    def _sample_many_restricted(
        self, n: int, count: int, generator: np.random.Generator
    ) -> list[Plan]:
        """Batched restricted sampling replaying the per-node integer draws.

        Mirrors :meth:`_sample_exponent`/:meth:`_draw_composition` exactly —
        one bounded draw per node over the enumerated choice list, children
        recursed left to right — but the draws come from a buffered replay
        of the generator's word stream instead of one ``Generator.integers``
        call each.  Falls back to the scalar loop when the replay is not
        supported by the running NumPy, or when a choice list is too large
        for the 32-bit bounded path (which would take NumPy's 64-bit path).
        """
        if not _integer_replay_supported():
            return [self._sample_exponent(n, generator) for _ in range(count)]
        for m in range(1, n + 1):
            if len(self.choices(m)) >= (1 << 31):  # pragma: no cover - huge n
                return [self._sample_exponent(n, generator) for _ in range(count)]
        from repro.wht.plan import _split_unchecked

        choices = self.choices
        stream = _BoundedWordStream(generator, chunk=max(4096, count * max(n // 2, 1)))
        bounded = stream.bounded
        smalls = {m: Small(m) for m in range(1, min(n, self.max_leaf) + 1)}

        def parse(m: int) -> Plan:
            options = choices(m)
            chosen = options[bounded(len(options))]
            if len(chosen) == 1:
                return smalls[m]
            return _split_unchecked(tuple(parse(part) for part in chosen), m)

        return [parse(n) for _ in range(count)]

    def iter_samples(self, n: int, rng: RandomState = None) -> Iterator[Plan]:
        """An endless stream of independent RSU samples of size ``2^n``."""
        generator = as_generator(rng)
        while True:
            yield self._sample_exponent(n, generator)

    def _sample_many_buffered(
        self, n: int, count: int, generator: np.random.Generator
    ) -> list[Plan]:
        """Batched unrestricted sampling over a buffered gap-bit stream.

        ``Generator.random(k)`` consumes exactly ``k`` doubles off the bit
        stream, so drawing one large chunk and slicing it is the same double
        sequence as the scalar path's many ``random(m - 1)`` calls; each node
        reads the same ``m - 1`` gap bits it would have drawn itself.  The
        parse mirrors :meth:`_draw_composition` exactly, including the
        redraw loop for exponents that may not terminate as a leaf.
        """
        from repro.wht.plan import _split_unchecked

        max_leaf = self.max_leaf
        trivial = self.allow_trivial_leaf
        smalls = {m: Small(m) for m in range(1, max_leaf + 1)}
        small_1 = smalls[1]
        small_2 = smalls.get(2)
        leaf_2_ok = trivial and small_2 is not None
        # Plans are immutable value objects compared structurally, so the
        # ubiquitous 2-point split may be shared across samples.
        split_11 = _split_unchecked((small_1, small_1), 2)
        # The buffered stream keeps the gap bits as a uint8 array plus the
        # sorted positions of the *set* bits; the parse walks those
        # positions with a monotone pointer, so extracting a composition is
        # O(parts) rather than O(bits).
        chunk = max(4096, count * max(n, 2))  # ~2x the expected total demand
        buf = np.empty(0, dtype=np.uint8)
        pos = 0
        end = 0
        gaps: list[int] = []
        glen = 0
        gi = 0

        def refill(need: int) -> None:
            nonlocal buf, pos, end, gaps, glen, gi
            drawn = (generator.random(max(chunk, need)) < 0.5).view(np.uint8)
            buf = np.concatenate([buf[pos:end], drawn])
            pos = 0
            end = buf.shape[0]
            gaps = np.flatnonzero(buf).tolist()
            glen = len(gaps)
            gi = 0

        def parse_2() -> Plan:
            # One gap bit: split into (1, 1) or terminate as a leaf
            # (redrawing while the leaf is not admissible).
            nonlocal pos, gi
            while True:
                if end == pos:
                    refill(1)
                here = pos
                pos = here + 1
                if gi < glen and gaps[gi] == here:
                    gi += 1
                    return split_11
                if leaf_2_ok:
                    return small_2

        def parse(m: int) -> Plan:
            # Exponents 1 and 2 are handled inline by the caller; ``m >= 3``.
            nonlocal pos, gi
            leaf_ok = trivial and m <= max_leaf
            k = m - 1
            while True:
                if end - pos < k:
                    refill(k)
                # Gap positions inside the window -> composition parts
                # (run lengths between gaps).
                prev = pos
                stop = pos + k
                pos = stop
                if gi >= glen or gaps[gi] >= stop:
                    if leaf_ok:
                        return smalls[m]
                    continue  # no leaf admissible: redraw, like the scalar loop
                here = gaps[gi]
                gi += 1
                parts = [here - prev + 1]
                append = parts.append
                prev = here + 1
                while gi < glen:
                    here = gaps[gi]
                    if here >= stop:
                        break
                    gi += 1
                    append(here - prev + 1)
                    prev = here + 1
                append(stop - prev + 1)
                # Children in part order; 1- and 2-exponent children (the
                # bulk of every RSU composition) are built without the
                # recursive call.
                children = []
                add = children.append
                for part in parts:
                    if part == 1:
                        add(small_1)
                    elif part == 2:
                        add(parse_2())
                    else:
                        add(parse(part))
                return _split_unchecked(tuple(children), m)

        if n == 1:
            return [small_1] * count
        if n == 2:
            return [parse_2() for _ in range(count)]
        return [parse(n) for _ in range(count)]

    def _sample_exponent(self, m: int, rng: np.random.Generator) -> Plan:
        chosen = self._draw_composition(m, rng)
        if len(chosen) == 1:
            return Small(m)
        return Split(tuple(self._sample_exponent(part, rng) for part in chosen))

    def _draw_composition(self, m: int, rng: np.random.Generator) -> tuple[int, ...]:
        """Draw one of the equally likely composition choices for exponent ``m``.

        Without a ``max_children`` restriction the draw uses the bijection
        between compositions of ``m`` and subsets of the ``m - 1`` gaps, which
        is O(m) per draw; the one-part composition (= the empty gap subset) is
        redrawn when it is not an admissible choice.  With ``max_children``
        the explicit (cached) enumeration of admissible choices is used.
        """
        if self.max_children is not None:
            options = self.choices(m)
            return options[int(rng.integers(0, len(options)))]
        leaf_allowed = m <= self.max_leaf and self.allow_trivial_leaf
        if m == 1:
            return (1,)
        while True:
            gaps = rng.random(m - 1) < 0.5
            parts: list[int] = []
            run = 1
            for gap in gaps:
                if gap:
                    parts.append(run)
                    run = 1
                else:
                    run += 1
            parts.append(run)
            if len(parts) == 1 and not leaf_allowed:
                continue
            return tuple(parts)


def random_plan(
    n: int,
    rng: RandomState = None,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
) -> Plan:
    """Convenience wrapper: one RSU sample of size ``2^n``."""
    return RSUSampler(max_leaf=max_leaf, max_children=max_children).sample(n, rng)


def random_plans(
    n: int,
    count: int,
    rng: RandomState = None,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
) -> list[Plan]:
    """Convenience wrapper: ``count`` RSU samples of size ``2^n``."""
    sampler = RSUSampler(max_leaf=max_leaf, max_children=max_children)
    return sampler.sample_many(n, count, rng)
