"""Dynamic-programming search for fast WHT plans.

The WHT package finds its "best" algorithm with a bottom-up dynamic program:
for each exponent ``m`` it evaluates candidate plans whose root composition
combines the best plans already found for smaller exponents, and keeps the
cheapest.  The paper (Section 3) uses the plan found this way as the baseline
that all canonical algorithms and random samples are compared against, while
noting that DP is only a heuristic (the true cost of a sub-plan depends on the
calling context).

The search is parameterised by an arbitrary cost function so it can run
against simulated cycle counts, analytic models, wall-clock time or any
combination; this is what the model-pruned search experiments build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.util.batching import evaluate_cost_batch
from repro.util.compositions import compositions
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split

__all__ = ["DPSearch", "DPSearchResult", "CandidateRecord"]

CostFunction = Callable[[Plan], float]


def _bounded_compositions(m: int, max_parts: int):
    """Compositions of ``m`` with between 2 and ``max_parts`` parts.

    Generated directly (rather than filtering the full ``2^(m-1)`` composition
    set) so the DP stays polynomial in ``m`` for a fixed children bound.
    """

    def helper(remaining: int, parts_left: int, prefix: tuple[int, ...]):
        if remaining == 0:
            if len(prefix) >= 2:
                yield prefix
            return
        if parts_left == 0:
            return
        # The final part may absorb everything that remains.
        for part in range(1, remaining + 1):
            yield from helper(remaining - part, parts_left - 1, prefix + (part,))

    yield from helper(m, max_parts, ())


@dataclass(frozen=True)
class CandidateRecord:
    """One evaluated candidate during the DP search."""

    exponent: int
    plan: Plan
    cost: float


@dataclass
class DPSearchResult:
    """Outcome of a DP search up to some maximum exponent.

    Candidate records are indexed by exponent (``candidates_for`` is a
    dictionary lookup, not a scan) and recording can be disabled entirely
    with ``record_candidates=False`` so large searches stay memory-bounded:
    the evaluation counter and the best plans/costs are tracked either way.
    """

    #: Best plan found for every exponent, keyed by exponent.
    best_plans: dict[int, Plan] = field(default_factory=dict)
    #: Cost of the best plan for every exponent.
    best_costs: dict[int, float] = field(default_factory=dict)
    #: Evaluated candidates, grouped by exponent in evaluation order.
    candidates_by_exponent: dict[int, list[CandidateRecord]] = field(default_factory=dict)
    #: Whether candidate records are retained (the counter always is).
    record_candidates: bool = True
    #: Total number of cost evaluations performed.
    evaluations: int = 0

    @property
    def candidates(self) -> tuple[CandidateRecord, ...]:
        """Every recorded candidate, in evaluation order (read-only view).

        Exponents are searched in ascending order and records are grouped
        per exponent as they are evaluated, so flattening the groups in
        insertion order reproduces the global evaluation order.  A tuple is
        returned so code that used to mutate the historical list field fails
        loudly instead of silently losing records.
        """
        return tuple(
            record
            for records in self.candidates_by_exponent.values()
            for record in records
        )

    def record(self, record: CandidateRecord) -> None:
        """Count (and, if enabled, retain) one evaluated candidate."""
        self.evaluations += 1
        if self.record_candidates:
            self.candidates_by_exponent.setdefault(record.exponent, []).append(record)

    def best(self, n: int) -> Plan:
        """Best plan for exponent ``n`` (raises ``KeyError`` if not searched)."""
        return self.best_plans[n]

    def candidates_for(self, n: int) -> list[CandidateRecord]:
        """All candidates evaluated for exponent ``n`` (indexed lookup)."""
        return list(self.candidates_by_exponent.get(n, ()))


class DPSearch:
    """Bottom-up dynamic-programming plan search.

    Parameters
    ----------
    cost:
        Function mapping a plan to a scalar cost (lower is better).  Typical
        choices: simulated cycle counts from
        :class:`repro.machine.SimulatedMachine`, the analytic instruction
        count, or a combined model.
    max_leaf:
        Largest exponent considered as an unrolled leaf candidate.
    max_children:
        Largest number of parts allowed in a candidate root composition.
        ``None`` means unrestricted (exponential in ``n``; fine for small
        exponents, prohibitive beyond ~12).  The package's practical searches
        restrict this; the default of 2 plus the always-included iterative
        composition reproduces the structure of the plans the paper's "best"
        algorithm exhibits (large unrolled base cases combined recursively).
    include_iterative:
        Always evaluate the radix-1 iterative composition (``m`` parts of 1)
        in addition to the restricted compositions.
    record_candidates:
        Retain per-candidate records on the result (default).  ``False``
        keeps only best plans/costs and the evaluation counter, bounding the
        result's memory independently of the search size.
    engine:
        Optional cost engine used to *bind* a non-callable ``cost``: when
        ``cost`` is an objective or metric name rather than a callable, it is
        resolved via ``engine.cost(cost)``.  (Duck-typed so this module stays
        importable without the runtime layer; the runtime's
        :class:`~repro.runtime.cost_engine.CostEngine` provides ``cost``.)
    """

    def __init__(
        self,
        cost: CostFunction,
        max_leaf: int = MAX_UNROLLED,
        max_children: int | None = 2,
        include_iterative: bool = True,
        record_candidates: bool = True,
        engine=None,
    ):
        if not callable(cost):
            bind = getattr(engine, "cost", None)
            if bind is None:
                raise TypeError(
                    "cost must be callable (or pass engine= to bind an "
                    "Objective or metric name)"
                )
            cost = bind(cost)
        check_positive_int(max_leaf, "max_leaf")
        if max_leaf > MAX_UNROLLED:
            raise ValueError(f"max_leaf must be at most {MAX_UNROLLED}")
        if max_children is not None:
            check_positive_int(max_children, "max_children")
            if max_children < 2:
                raise ValueError("max_children must be at least 2")
        self.cost = cost
        self.max_leaf = max_leaf
        self.max_children = max_children
        self.include_iterative = include_iterative
        self.record_candidates = record_candidates

    # -- candidate generation ---------------------------------------------------

    def candidate_compositions(self, m: int) -> list[tuple[int, ...]]:
        """Root compositions evaluated for exponent ``m`` (excluding the leaf)."""
        check_positive_int(m, "m")
        seen: set[tuple[int, ...]] = set()
        out: list[tuple[int, ...]] = []
        if self.max_children is None:
            source = compositions(m, min_parts=2)
        else:
            source = _bounded_compositions(m, self.max_children)
        for comp in source:
            if comp not in seen:
                seen.add(comp)
                out.append(comp)
        if self.include_iterative and m >= 2:
            iterative = tuple([1] * m)
            if iterative not in seen:
                seen.add(iterative)
                out.append(iterative)
        return out

    # -- search -----------------------------------------------------------------

    def search(self, n: int) -> DPSearchResult:
        """Run the DP for every exponent from 1 to ``n``."""
        check_positive_int(n, "n")
        result = DPSearchResult(record_candidates=self.record_candidates)
        for m in range(1, n + 1):
            self._search_exponent(m, result)
        return result

    def extend(self, result: DPSearchResult, n: int) -> DPSearchResult:
        """Extend an existing result up to exponent ``n`` (reusing prior work)."""
        check_positive_int(n, "n")
        for m in range(1, n + 1):
            if m not in result.best_plans:
                self._search_exponent(m, result)
        return result

    def _search_exponent(self, m: int, result: DPSearchResult) -> None:
        # Generate the round's candidates (deduplicated by plan key), then
        # evaluate them as one batch so the cost can amortise work across the
        # round — vectorised model scoring, backend fan-out, cache lookups.
        plans: list[Plan] = []
        seen: set[str] = set()

        def add(plan: Plan) -> None:
            key = plan_key(plan)
            if key not in seen:
                seen.add(key)
                plans.append(plan)

        if m <= self.max_leaf:
            add(Small(m))
        for comp in self.candidate_compositions(m):
            children = []
            feasible = True
            for part in comp:
                child = result.best_plans.get(part)
                if child is None:
                    feasible = False
                    break
                children.append(child)
            if not feasible:  # pragma: no cover - parts are always smaller than m
                continue
            add(Split(tuple(children)))
        if not plans:
            raise RuntimeError(
                f"no candidate plan found for exponent {m} "
                f"(max_leaf={self.max_leaf}, max_children={self.max_children})"
            )

        best_plan: Plan | None = None
        best_cost = float("inf")
        for plan, value in zip(plans, evaluate_cost_batch(self.cost, plans)):
            result.record(CandidateRecord(exponent=m, plan=plan, cost=value))
            if value < best_cost:
                best_cost = value
                best_plan = plan
        if best_plan is None:
            # Every candidate evaluated to NaN (or nothing beat +inf): fail
            # here, at the exponent that produced it, rather than handing a
            # None best plan to later rounds.
            raise RuntimeError(
                f"no candidate plan of exponent {m} received a comparable "
                f"cost (all {len(plans)} evaluations were NaN or +inf)"
            )
        result.best_plans[m] = best_plan
        result.best_costs[m] = best_cost
