"""Reference Walsh–Hadamard transforms and plan application.

Three independent implementations are provided so correctness can be
cross-checked:

* :func:`wht_matrix` — the dense ``2^n x 2^n`` Hadamard matrix built from the
  Kronecker (Sylvester) construction used in the paper's Section 2.
* :func:`wht_reference` — an out-of-place fast transform (vectorised butterfly
  network), the gold standard used throughout the test suite.
* :func:`apply_plan` — executes an arbitrary split-tree plan with the paper's
  triple-loop recursion (via the interpreter); every plan must produce the
  same result as :func:`wht_reference`.

All transforms use the unnormalised convention ``WHT_N = DFT_2 (x) ... (x) DFT_2``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_nonnegative_int, check_power_of_two
from repro.wht.plan import Plan

__all__ = [
    "wht_matrix",
    "wht_reference",
    "wht_inplace",
    "apply_plan",
    "random_input",
]


def wht_matrix(n: int) -> np.ndarray:
    """Dense ``WHT_{2^n}`` matrix (entries ±1), Sylvester construction.

    ``n = 0`` gives the 1x1 identity; each further step Kronecker-multiplies by
    ``DFT_2 = [[1, 1], [1, -1]]``.
    """
    check_nonnegative_int(n, "n")
    dft2 = np.array([[1.0, 1.0], [1.0, -1.0]])
    result = np.array([[1.0]])
    for _ in range(n):
        result = np.kron(result, dft2)
    return result


def wht_reference(x: np.ndarray) -> np.ndarray:
    """Out-of-place fast WHT of a length ``2^n`` vector (new array returned)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {x.shape}")
    size = check_power_of_two(x.shape[0], "len(x)")
    out = x.copy()
    half = 1
    while half < size:
        block = half * 2
        pairs = out.reshape(size // block, 2, half)
        top = pairs[:, 0, :].copy()
        bottom = pairs[:, 1, :]
        pairs[:, 0, :] = top + bottom
        pairs[:, 1, :] = top - bottom
        half = block
    return out


def wht_inplace(x: np.ndarray) -> None:
    """In-place fast WHT of a length ``2^n`` float64 vector."""
    if not isinstance(x, np.ndarray):
        raise TypeError("wht_inplace requires a numpy array (it mutates its input)")
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {x.shape}")
    if not x.flags["C_CONTIGUOUS"]:
        raise ValueError("wht_inplace requires a contiguous array (reshape must be a view)")
    size = check_power_of_two(x.shape[0], "len(x)")
    half = 1
    while half < size:
        block = half * 2
        pairs = x.reshape(size // block, 2, half)
        top = pairs[:, 0, :].copy()
        bottom = pairs[:, 1, :]
        pairs[:, 0, :] = top + bottom
        pairs[:, 1, :] = top - bottom
        half = block


def apply_plan(plan: Plan, x: np.ndarray) -> np.ndarray:
    """Compute ``WHT_{2^n} x`` by executing ``plan``; returns a new array.

    The computation is delegated to the plan interpreter (the same executor
    the simulated machine instruments), run without instrumentation.
    """
    from repro.wht.interpreter import PlanInterpreter

    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {x.shape}")
    if x.shape[0] != plan.size:
        raise ValueError(
            f"plan computes WHT of length {plan.size} but input has length {x.shape[0]}"
        )
    out = x.copy()
    PlanInterpreter().execute(plan, out)
    return out


def random_input(n: int, seed: int | None = 0) -> np.ndarray:
    """A reproducible random input vector of length ``2^n`` for tests/examples."""
    check_nonnegative_int(n, "n")
    rng = np.random.default_rng(seed)
    return rng.standard_normal(1 << n)
