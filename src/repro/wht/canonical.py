"""Canonical WHT plans used as reference points by the paper.

The paper compares the algorithm family against three canonical algorithms
(Section 2):

* the **iterative** algorithm — a single split into ``n`` factors of size 2
  (the radix-2 iterative FFT analogue),
* the **right recursive** algorithm — ``WHT_2 (x) WHT_{2^{n-1}}`` applied
  recursively (the standard recursive FFT analogue),
* the **left recursive** algorithm — ``WHT_{2^{n-1}} (x) WHT_2`` applied
  recursively.

Also provided are a balanced binary plan and general radix-``2^k`` iterative
plans, both useful baselines for the search and ablation experiments.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split

__all__ = [
    "iterative_plan",
    "right_recursive_plan",
    "left_recursive_plan",
    "balanced_plan",
    "mixed_radix_plan",
    "canonical_plans",
]


def iterative_plan(n: int, radix: int = 1) -> Plan:
    """The iterative plan: one split into ``n / radix`` leaves of size ``2^radix``.

    With the default ``radix=1`` this is the paper's iterative algorithm
    (``n`` factors of size 2).  ``n`` need not be divisible by ``radix``; a
    final smaller leaf absorbs the remainder.
    """
    check_positive_int(n, "n")
    check_positive_int(radix, "radix")
    if radix > MAX_UNROLLED:
        raise ValueError(f"radix must be at most {MAX_UNROLLED}, got {radix}")
    if n <= radix:
        return Small(n)
    parts = [radix] * (n // radix)
    if n % radix:
        parts.append(n % radix)
    if len(parts) == 1:
        return Small(parts[0])
    return Split(tuple(Small(p) for p in parts))


def right_recursive_plan(n: int, leaf: int = 1) -> Plan:
    """The right recursive plan: ``split[small[leaf], <recurse on n-leaf>]``.

    The recursion bottoms out in a single leaf once the remaining exponent is
    at most ``leaf`` (or at most ``MAX_UNROLLED`` when that is smaller than
    ``2 * leaf``, mirroring the package's behaviour of never producing a
    one-child split).
    """
    check_positive_int(n, "n")
    check_positive_int(leaf, "leaf")
    if leaf > MAX_UNROLLED:
        raise ValueError(f"leaf must be at most {MAX_UNROLLED}, got {leaf}")
    if n <= leaf:
        return Small(n)
    if n - leaf <= 0:  # pragma: no cover - unreachable by the guard above
        return Small(n)
    return Split((Small(leaf), right_recursive_plan(n - leaf, leaf)))


def left_recursive_plan(n: int, leaf: int = 1) -> Plan:
    """The left recursive plan: ``split[<recurse on n-leaf>, small[leaf]]``."""
    check_positive_int(n, "n")
    check_positive_int(leaf, "leaf")
    if leaf > MAX_UNROLLED:
        raise ValueError(f"leaf must be at most {MAX_UNROLLED}, got {leaf}")
    if n <= leaf:
        return Small(n)
    return Split((left_recursive_plan(n - leaf, leaf), Small(leaf)))


def balanced_plan(n: int, leaf_max: int = 1) -> Plan:
    """A balanced binary plan: split each exponent as evenly as possible.

    Exponents of at most ``leaf_max`` become leaves.  This plan is not studied
    in the paper directly but is the natural divide-and-conquer baseline and a
    useful extra point in the search experiments.
    """
    check_positive_int(n, "n")
    check_positive_int(leaf_max, "leaf_max")
    if leaf_max > MAX_UNROLLED:
        raise ValueError(f"leaf_max must be at most {MAX_UNROLLED}, got {leaf_max}")
    if n <= leaf_max:
        return Small(n)
    left = n // 2
    right = n - left
    return Split((balanced_plan(left, leaf_max), balanced_plan(right, leaf_max)))


def mixed_radix_plan(n: int, radices: list[int] | tuple[int, ...]) -> Plan:
    """One split whose children are leaves with the given exponents.

    ``sum(radices)`` must equal ``n``.  Useful for constructing specific
    iterative variants (e.g. radix-4 with a radix-2 cleanup step).
    """
    check_positive_int(n, "n")
    parts = tuple(int(r) for r in radices)
    if sum(parts) != n:
        raise ValueError(f"radices {parts} do not sum to {n}")
    if any(p < 1 or p > MAX_UNROLLED for p in parts):
        raise ValueError(f"every radix must lie in [1, {MAX_UNROLLED}], got {parts}")
    if len(parts) == 1:
        return Small(parts[0])
    return Split(tuple(Small(p) for p in parts))


def canonical_plans(n: int) -> dict[str, Plan]:
    """The paper's three canonical plans for size ``2^n``, keyed by name."""
    return {
        "iterative": iterative_plan(n),
        "right": right_recursive_plan(n),
        "left": left_recursive_plan(n),
    }
