"""Plan interpreter: the paper's triple-loop recursion, instrumented.

The interpreter evaluates a split-tree plan with the triple loop of Section 2
of the paper::

    R = N; S = 1
    for i = t, t-1, ..., 1:                 # children, right to left
        R = R / N_i
        for j = 0, ..., R-1:                # block loop
            for k = 0, ..., S-1:            # stride loop
                WHT_{N_i} applied at base + (j*N_i*S + k)*stride, stride S*stride
        S = S * N_i

Children are processed right to left so that child ``i`` of the composition is
applied at stride ``N_{i+1} * ... * N_t``, exactly as dictated by the tensor
factors of Equation 1 (the factor ``I (x) WHT_{N_i} (x) I_{2^{n_{i+1}+...}}``
acts at that stride).  In particular the *right recursive* algorithm
``split[small[1], W_{2^{n-1}}]`` recurses on two contiguous halves and finishes
with a stride-``N/2`` combining pass — the classical recursive FFT schedule —
while the *left recursive* algorithm recurses on interleaved (strided)
subvectors.  The paper's pseudo-code enumerates the same loops with the child
index running in the opposite direction; because the tensor factors commute,
both orders compute the same transform, but only the right-to-left order
reproduces the canonical algorithms' measured cache behaviour (see DESIGN.md).

Two entry points are provided:

* :meth:`PlanInterpreter.execute` — run the recursion on an actual NumPy
  vector (in place), used for correctness checking and the wall-clock path.
* :meth:`PlanInterpreter.profile` — run the recursion *without data*, counting
  every structural event (codelet calls, split invocations, loop iterations)
  and optionally emitting :class:`LeafNest` descriptors from which the memory
  trace is generated.  This is what the simulated machine instruments; it is
  the Python analogue of attaching PAPI counters to the compiled WHT package.

The event counts produced by ``profile`` are exactly reproducible from the
plan structure alone; :mod:`repro.models.instruction_count` recomputes them
analytically and the test suite asserts the two always agree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.util.lru import LRUCache
from repro.wht.codelets import apply_codelet, codelet_costs
from repro.wht.encoding import plan_key
from repro.wht.plan import Plan, Small, Split

__all__ = ["LeafNest", "NestBlock", "ExecutionStats", "PlanInterpreter"]


@dataclass(frozen=True)
class LeafNest:
    """One (j, k) loop nest worth of codelet calls, described compactly.

    When the interpreter reaches a leaf child of a split node it does not emit
    one event per codelet call; it emits a single ``LeafNest`` describing the
    whole double loop.  The memory-trace generator expands the nest with a
    single vectorised broadcast, preserving the exact access order
    ``for outer: for inner: for element`` (outer = the block loop ``j``,
    inner = the stride loop ``k``).
    """

    #: Codelet exponent (the nest calls ``small[k]``).
    k: int
    #: Element index of the first element touched by the (j=0, k=0) call.
    base: int
    #: Number of outer (j) iterations.
    outer_count: int
    #: Element-index distance between consecutive j iterations.
    outer_stride: int
    #: Number of inner (k) iterations.
    inner_count: int
    #: Element-index distance between consecutive k iterations.
    inner_stride: int
    #: Element-index distance between consecutive elements within one call.
    elem_stride: int

    @property
    def calls(self) -> int:
        """Number of codelet calls described by the nest."""
        return self.outer_count * self.inner_count

    @property
    def elements_per_call(self) -> int:
        """Vector length of each codelet call."""
        return 1 << self.k

    @property
    def total_elements(self) -> int:
        """Total element accesses of one pass (read or write) over the nest."""
        return self.calls * self.elements_per_call

    def element_indices(self) -> np.ndarray:
        """All element indices touched, in exact access order (one pass)."""
        j = np.arange(self.outer_count, dtype=np.int64) * self.outer_stride
        k = np.arange(self.inner_count, dtype=np.int64) * self.inner_stride
        e = np.arange(self.elements_per_call, dtype=np.int64) * self.elem_stride
        grid = self.base + j[:, None, None] + k[None, :, None] + e[None, None, :]
        return grid.reshape(-1)


#: Shared single-offset array for blocks describing exactly one nest instance.
_SINGLE_OFFSET = np.zeros(1, dtype=np.int64)


@dataclass(frozen=True)
class NestBlock:
    """Many instances of one leaf-nest shape, described once plus two arrays.

    A sub-plan invoked ``R * S`` times by the triple loop emits the same nest
    sequence every time, shifted by a different base and occurring at a
    different point of the access stream.  The walker therefore yields one
    :class:`NestBlock` per nest *emission site*: the template ``nest`` (whose
    ``base`` is relative to the block) together with, per instance, its base
    ``offsets`` (element indices) and its ``starts`` (position of the
    instance's first access within the plan's raw access stream, counting the
    read and the write pass).  Replaying a nested sub-plan composes both
    arrays with one broadcast, so the number of blocks grows with the plan's
    *structure*, not with its invocation counts.

    Blocks are **not** yielded in execution order (instances of different
    blocks interleave); sorting all instances by ``starts`` recovers the
    exact recursive access order, which is how the streamed trace expander
    and :meth:`PlanInterpreter.iter_nests` consume them.

    ``offsets`` and ``starts`` must be treated as immutable (blocks share
    template arrays).
    """

    nest: LeafNest
    offsets: np.ndarray
    starts: np.ndarray

    @property
    def instances(self) -> int:
        """Number of nest instances described by the block."""
        return int(self.offsets.shape[0])

    @property
    def accesses_per_instance(self) -> int:
        """Raw accesses of one instance: read plus write pass."""
        return 2 * self.nest.total_elements


@dataclass
class ExecutionStats:
    """Structural event counts of one plan execution.

    These are *raw event counts*; converting them to instruction or cycle
    totals is the job of the machine's cost models, so the same counts can be
    weighted differently (e.g. in the associativity or overhead ablations).
    """

    #: Size exponent of the executed transform.
    n: int = 0
    #: Number of codelet calls, keyed by codelet exponent.
    codelet_calls: Counter = field(default_factory=Counter)
    #: Number of split-node invocations (each recursive call of a split body).
    split_invocations: int = 0
    #: Total iterations of the outer (per-child, index ``i``) loop.
    outer_iterations: int = 0
    #: Total iterations of the stride (index ``k``) loop: ``sum_i S_i`` per
    #: split invocation.
    stride_iterations: int = 0
    #: Total iterations of the block (index ``j``) loop summed once per child:
    #: ``sum_i R_i`` per split invocation (the paper pseudo-code's middle loop).
    block_iterations: int = 0
    #: Total child calls == ``sum_i R_i * S_i`` (innermost loop bodies).
    child_calls: int = 0
    #: Floating point additions executed by codelet bodies.
    additions: int = 0
    #: Floating point subtractions executed by codelet bodies.
    subtractions: int = 0
    #: Element loads executed by codelet bodies.
    loads: int = 0
    #: Element stores executed by codelet bodies.
    stores: int = 0

    @property
    def size(self) -> int:
        """Transform length ``2^n``."""
        return 1 << self.n

    @property
    def arithmetic_ops(self) -> int:
        """Total floating point operations."""
        return self.additions + self.subtractions

    @property
    def memory_ops(self) -> int:
        """Total element loads plus stores."""
        return self.loads + self.stores

    @property
    def total_codelet_calls(self) -> int:
        """Number of base-case codelet calls."""
        return sum(self.codelet_calls.values())

    def scaled(self, factor: int) -> "ExecutionStats":
        """A new stats object with every count multiplied by ``factor``.

        Used by the analytic models: a sub-plan invoked ``factor`` times
        contributes ``factor`` times its standalone event counts.
        """
        if factor < 0:
            raise ValueError(f"factor must be nonnegative, got {factor}")
        scaled_calls: Counter = Counter(
            {k: v * factor for k, v in self.codelet_calls.items()}
        )
        return ExecutionStats(
            n=self.n,
            codelet_calls=scaled_calls,
            split_invocations=self.split_invocations * factor,
            outer_iterations=self.outer_iterations * factor,
            stride_iterations=self.stride_iterations * factor,
            block_iterations=self.block_iterations * factor,
            child_calls=self.child_calls * factor,
            additions=self.additions * factor,
            subtractions=self.subtractions * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
        )

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Accumulate another stats object into this one (returns self)."""
        self.codelet_calls.update(other.codelet_calls)
        self.split_invocations += other.split_invocations
        self.outer_iterations += other.outer_iterations
        self.stride_iterations += other.stride_iterations
        self.block_iterations += other.block_iterations
        self.child_calls += other.child_calls
        self.additions += other.additions
        self.subtractions += other.subtractions
        self.loads += other.loads
        self.stores += other.stores
        return self

    def as_dict(self) -> dict:
        """A flat dictionary view (used by reports and serialisation)."""
        return {
            "n": self.n,
            "codelet_calls": dict(self.codelet_calls),
            "split_invocations": self.split_invocations,
            "outer_iterations": self.outer_iterations,
            "stride_iterations": self.stride_iterations,
            "block_iterations": self.block_iterations,
            "child_calls": self.child_calls,
            "additions": self.additions,
            "subtractions": self.subtractions,
            "loads": self.loads,
            "stores": self.stores,
        }


class PlanInterpreter:
    """Executes or profiles WHT plans using the paper's loop schedule.

    ``template_cache_size`` bounds an LRU cache of walked sub-plan templates
    keyed by ``(plan key, stride)``: a repeated sub-plan (the dynamic
    programming search builds every candidate at exponent ``m`` from the same
    best sub-plans) is walked into its :class:`NestBlock` template once and
    replayed from the cache afterwards.  Cached templates are read-only —
    replaying composes fresh offset/start arrays — so cache hits are
    bit-identical to re-walking.  ``0`` disables the cache.
    """

    def __init__(self, template_cache_size: int = 64):
        if template_cache_size < 0:
            raise ValueError("template_cache_size must be >= 0")
        self._template_cache: (
            LRUCache[tuple[str, int], tuple[list[NestBlock], ExecutionStats, int]] | None
        ) = LRUCache(template_cache_size) if template_cache_size else None

    def _sub_plan_template(
        self, child: Plan, child_stride: int
    ) -> tuple[list["NestBlock"], "ExecutionStats", int]:
        """The child's block template at ``child_stride`` (cached, immutable)."""
        cache = self._template_cache
        key = (plan_key(child), child_stride)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                return cached
        sub = ExecutionStats()
        sub_cursor = [0]
        template = list(self._walk_blocks(child, 0, child_stride, sub, sub_cursor))
        entry = (template, sub, sub_cursor[0])
        if cache is not None:
            cache.put(key, entry)
        return entry

    def execute(
        self,
        plan: Plan,
        x: np.ndarray,
        collect_stats: bool = False,
    ) -> ExecutionStats | None:
        """Apply ``plan`` to ``x`` in place; optionally return event counts.

        ``x`` must be a 1-D float array of length ``plan.size``.
        """
        if not isinstance(x, np.ndarray) or x.ndim != 1:
            raise ValueError("execute requires a 1-D numpy array")
        if x.shape[0] != plan.size:
            raise ValueError(
                f"plan computes a transform of length {plan.size}, "
                f"input has length {x.shape[0]}"
            )
        stats = ExecutionStats(n=plan.n) if collect_stats else None
        self._run(plan, base=0, stride=1, x=x, stats=stats, nests=None)
        return stats

    def profile(
        self,
        plan: Plan,
        record_trace: bool = False,
    ) -> tuple[ExecutionStats, list[LeafNest] | None]:
        """Count structural events of executing ``plan``, without data.

        When ``record_trace`` is true the list of :class:`LeafNest` events is
        returned as well (in execution order); otherwise ``None`` is returned
        in its place and no per-nest bookkeeping is done.
        """
        stats = ExecutionStats(n=plan.n)
        if not record_trace:
            for _ in self.iter_nest_blocks(plan, stats=stats):
                pass
            return stats, None
        return stats, list(self.iter_nests(plan, stats=stats))

    def iter_nests(
        self, plan: Plan, stats: ExecutionStats | None = None
    ) -> Iterator[LeafNest]:
        """Yield the plan's :class:`LeafNest` events in execution order.

        Streaming equivalent of ``profile(plan, record_trace=True)``: the
        plan is walked as nest blocks, whose instances are then sorted by
        stream position to recover the exact recursive emission order.  When
        ``stats`` is given, structural event counts are accumulated into it
        while walking.
        """
        blocks = list(self.iter_nest_blocks(plan, stats=stats))
        if not blocks:
            return
        counts = np.array([block.instances for block in blocks])
        block_ids = np.repeat(np.arange(len(blocks)), counts)
        offsets = np.concatenate([block.offsets for block in blocks])
        starts = np.concatenate([block.starts for block in blocks])
        order = np.argsort(starts, kind="stable")
        for block_id, offset in zip(
            block_ids[order].tolist(), offsets[order].tolist()
        ):
            nest = blocks[block_id].nest
            yield replace(nest, base=nest.base + offset) if offset else nest

    def iter_nest_blocks(
        self, plan: Plan, stats: ExecutionStats | None = None
    ) -> Iterator[NestBlock]:
        """Yield the plan's nest stream as :class:`NestBlock` groups.

        This is the fast producer behind :meth:`profile` and the simulated
        machine's streaming trace pipeline.  Instead of re-walking a sub-plan
        once per ``(j, k)`` invocation (the seed interpreter's deeply
        recursive ``_run`` schedule), each repeated sub-plan is walked *once*
        into a template whose blocks are replayed by composing base offsets
        and stream positions with a single broadcast each, with event counts
        merged back via exact integer scaling.  Sorting all block instances
        by ``starts`` reproduces the recursive nest sequence exactly
        (asserted by the test suite).
        """
        cursor = [0]
        yield from self._walk_blocks(plan, base=0, stride=1, stats=stats, cursor=cursor)

    # -- internals -----------------------------------------------------------

    def _walk_blocks(
        self,
        node: Plan,
        base: int,
        stride: int,
        stats: ExecutionStats | None,
        cursor: list[int],
    ) -> Iterator[NestBlock]:
        if isinstance(node, Small):
            yield self._leaf_block(
                node.n,
                base=base,
                outer_count=1,
                outer_stride=0,
                inner_count=1,
                inner_stride=0,
                elem_stride=stride,
                stats=stats,
                cursor=cursor,
            )
            return
        assert isinstance(node, Split)
        if stats is not None:
            stats.split_invocations += 1
        size = node.size
        remaining = size  # R in the paper's pseudo-code
        inner = 1  # S in the paper's pseudo-code
        for child in reversed(node.children):
            child_size = child.size
            remaining //= child_size
            if stats is not None:
                stats.outer_iterations += 1
                stats.stride_iterations += inner
                stats.block_iterations += remaining
                stats.child_calls += remaining * inner
            if isinstance(child, Small):
                yield self._leaf_block(
                    child.n,
                    base=base,
                    outer_count=remaining,
                    outer_stride=child_size * inner * stride,
                    inner_count=inner,
                    inner_stride=stride,
                    elem_stride=inner * stride,
                    stats=stats,
                    cursor=cursor,
                )
            else:
                child_stride = inner * stride
                invocations = remaining * inner
                if invocations == 1:
                    yield from self._walk_blocks(child, base, child_stride, stats, cursor)
                else:
                    template, sub, template_accesses = self._sub_plan_template(
                        child, child_stride
                    )
                    if stats is not None:
                        stats.merge(sub.scaled(invocations))
                    j = np.arange(remaining, dtype=np.int64) * (child_size * inner * stride)
                    k = np.arange(inner, dtype=np.int64) * stride
                    offsets = (base + (j[:, None] + k[None, :])).reshape(-1)
                    starts = cursor[0] + (
                        np.arange(invocations, dtype=np.int64) * template_accesses
                    )
                    for block in template:
                        yield NestBlock(
                            block.nest,
                            (offsets[:, None] + block.offsets[None, :]).reshape(-1),
                            (starts[:, None] + block.starts[None, :]).reshape(-1),
                        )
                    cursor[0] += invocations * template_accesses
            inner *= child_size

    def _leaf_block(
        self,
        k: int,
        base: int,
        outer_count: int,
        outer_stride: int,
        inner_count: int,
        inner_stride: int,
        elem_stride: int,
        stats: ExecutionStats | None,
        cursor: list[int],
    ) -> NestBlock:
        calls = outer_count * inner_count
        if stats is not None:
            costs = codelet_costs(k)
            stats.codelet_calls[k] += calls
            stats.additions += calls * costs.additions
            stats.subtractions += calls * costs.subtractions
            stats.loads += calls * costs.loads
            stats.stores += calls * costs.stores
        nest = LeafNest(
            k=k,
            base=base,
            outer_count=outer_count,
            outer_stride=outer_stride,
            inner_count=inner_count,
            inner_stride=inner_stride,
            elem_stride=elem_stride,
        )
        start = cursor[0]
        cursor[0] += 2 * calls * (1 << k)
        return NestBlock(
            nest, _SINGLE_OFFSET, np.array([start], dtype=np.int64)
        )

    def _run(
        self,
        node: Plan,
        base: int,
        stride: int,
        x: np.ndarray | None,
        stats: ExecutionStats | None,
        nests: list[LeafNest] | None,
    ) -> None:
        if isinstance(node, Small):
            # A bare leaf plan (no surrounding split): a single codelet call.
            self._leaf_calls(
                node.n,
                base=base,
                outer_count=1,
                outer_stride=0,
                inner_count=1,
                inner_stride=0,
                elem_stride=stride,
                x=x,
                stats=stats,
                nests=nests,
            )
            return
        assert isinstance(node, Split)
        if stats is not None:
            stats.split_invocations += 1
        size = node.size
        remaining = size  # R in the paper's pseudo-code
        inner = 1  # S in the paper's pseudo-code
        for child in reversed(node.children):
            child_size = child.size
            remaining //= child_size
            if stats is not None:
                stats.outer_iterations += 1
                stats.stride_iterations += inner
                stats.block_iterations += remaining
                stats.child_calls += remaining * inner
            if isinstance(child, Small):
                # Entire (j, k) double loop expressed as one nest
                # (j = block loop, outer; k = stride loop, inner).
                self._leaf_calls(
                    child.n,
                    base=base,
                    outer_count=remaining,
                    outer_stride=child_size * inner * stride,
                    inner_count=inner,
                    inner_stride=stride,
                    elem_stride=inner * stride,
                    x=x,
                    stats=stats,
                    nests=nests,
                )
            else:
                for j in range(remaining):
                    for k in range(inner):
                        self._run(
                            child,
                            base=base + (j * child_size * inner + k) * stride,
                            stride=inner * stride,
                            x=x,
                            stats=stats,
                            nests=nests,
                        )
            inner *= child_size

    def _leaf_calls(
        self,
        k: int,
        base: int,
        outer_count: int,
        outer_stride: int,
        inner_count: int,
        inner_stride: int,
        elem_stride: int,
        x: np.ndarray | None,
        stats: ExecutionStats | None,
        nests: list[LeafNest] | None,
    ) -> None:
        calls = outer_count * inner_count
        if stats is not None:
            costs = codelet_costs(k)
            stats.codelet_calls[k] += calls
            stats.additions += calls * costs.additions
            stats.subtractions += calls * costs.subtractions
            stats.loads += calls * costs.loads
            stats.stores += calls * costs.stores
        if nests is not None:
            nests.append(
                LeafNest(
                    k=k,
                    base=base,
                    outer_count=outer_count,
                    outer_stride=outer_stride,
                    inner_count=inner_count,
                    inner_stride=inner_stride,
                    elem_stride=elem_stride,
                )
            )
        if x is not None:
            for j in range(outer_count):
                for kk in range(inner_count):
                    apply_codelet(
                        x,
                        k,
                        base=base + j * outer_stride + kk * inner_stride,
                        stride=elem_stride,
                    )
