"""Base-case codelets: small unrolled WHT kernels and their operation counts.

A ``small[k]`` leaf of a plan is computed by an unrolled straight-line codelet
on a strided subvector.  This module provides

* :func:`apply_codelet` — a vectorised (NumPy) implementation used by the plan
  interpreter; it computes exactly the same butterfly network as the unrolled
  code, just expressed with array slicing so plan execution stays fast in
  Python (the guide rule: vectorise the innermost loops).
* :func:`get_unrolled` — the literally unrolled, generated codelet (see
  :mod:`repro.wht.codegen`), used in tests to confirm that the vectorised
  kernel and the straight-line kernel agree element-for-element.
* :class:`CodeletCosts` / :func:`codelet_costs` — the exact per-call operation
  counts attributed to a codelet by the instruction-count model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.util.validation import check_nonnegative_int, check_positive_int
from repro.wht.codegen import GeneratedCodelet, compile_codelet, unrolled_operation_counts
from repro.wht.plan import MAX_UNROLLED

__all__ = [
    "CodeletCosts",
    "codelet_costs",
    "apply_codelet",
    "apply_codelet_unrolled",
    "get_unrolled",
    "codelet_working_set_bytes",
]


@dataclass(frozen=True)
class CodeletCosts:
    """Exact operation counts of one invocation of a ``small[k]`` codelet.

    The counts mirror what the WHT package's generated C code executes per
    call: the body performs ``k * 2^k`` floating-point additions/subtractions
    on ``2^k`` loaded values which are then stored back, plus a fixed
    per-call overhead (argument setup, address computation, return) modelled
    by ``call_overhead`` instructions.
    """

    k: int
    additions: int
    subtractions: int
    loads: int
    stores: int
    call_overhead: int

    @property
    def size(self) -> int:
        """Transform length ``2^k`` of the codelet."""
        return 1 << self.k

    @property
    def arithmetic_ops(self) -> int:
        """Floating-point operations per call."""
        return self.additions + self.subtractions

    @property
    def memory_ops(self) -> int:
        """Loads plus stores per call."""
        return self.loads + self.stores

    @property
    def total_instructions(self) -> int:
        """All instructions attributed to one call of the codelet."""
        return self.arithmetic_ops + self.memory_ops + self.call_overhead


#: Default per-call overhead (instructions) attributed to invoking a codelet.
#: The WHT package's measured constants grow slowly with the codelet size
#: (argument marshalling and address arithmetic); a small affine form captures
#: that without pretending to cycle-exact fidelity.
DEFAULT_CALL_OVERHEAD_BASE = 12
DEFAULT_CALL_OVERHEAD_PER_UNIT = 2


@lru_cache(maxsize=None)
def codelet_costs(
    k: int,
    call_overhead_base: int = DEFAULT_CALL_OVERHEAD_BASE,
    call_overhead_per_unit: int = DEFAULT_CALL_OVERHEAD_PER_UNIT,
) -> CodeletCosts:
    """Operation counts for the ``small[k]`` codelet.

    Parameters other than ``k`` exist so the instruction-cost model can be
    re-parameterised (e.g. to mimic a different compiler's codelet overhead)
    without touching the model code.
    """
    check_positive_int(k, "k")
    check_nonnegative_int(call_overhead_base, "call_overhead_base")
    check_nonnegative_int(call_overhead_per_unit, "call_overhead_per_unit")
    if k > MAX_UNROLLED:
        raise ValueError(
            f"small[{k}] is not a valid codelet (maximum unrolled size is {MAX_UNROLLED})"
        )
    counts = unrolled_operation_counts(k)
    return CodeletCosts(
        k=k,
        additions=counts["additions"],
        subtractions=counts["subtractions"],
        loads=counts["loads"],
        stores=counts["stores"],
        call_overhead=call_overhead_base + call_overhead_per_unit * k,
    )


def codelet_working_set_bytes(k: int, element_size: int = 8) -> int:
    """Bytes touched by one codelet call when the data is unit-stride."""
    check_positive_int(k, "k")
    return (1 << k) * int(element_size)


@lru_cache(maxsize=None)
def get_unrolled(k: int) -> GeneratedCodelet:
    """The generated straight-line codelet of size ``2^k`` (compiled lazily)."""
    return compile_codelet(k)


def apply_codelet(x: np.ndarray, k: int, base: int = 0, stride: int = 1) -> None:
    """Apply ``WHT_{2^k}`` in place to ``x[base + i*stride]`` for ``i < 2^k``.

    This is the vectorised kernel the interpreter uses.  It performs the same
    ``k``-stage butterfly network as the unrolled codelet; each stage is
    expressed as two strided-slice operations.
    """
    check_positive_int(k, "k")
    check_nonnegative_int(base, "base")
    check_positive_int(stride, "stride")
    size = 1 << k
    needed = base + (size - 1) * stride
    if needed >= x.shape[0]:
        raise IndexError(
            f"codelet small[{k}] at base={base}, stride={stride} exceeds vector "
            f"of length {x.shape[0]}"
        )
    # Gather the strided subvector into a contiguous work buffer (the codelet's
    # "loads"), run the butterfly stages on it, and scatter back (the "stores").
    # Working on a contiguous copy keeps every reshape below a true view.
    work = np.array(x[base : base + size * stride : stride], copy=True)
    if work.shape[0] != size:  # pragma: no cover - defensive
        raise IndexError("strided view does not cover the codelet input")
    for stage in range(k):
        half = 1 << stage
        block = half << 1
        # Reshape into (num_blocks, 2, half): axis 1 separates butterfly halves.
        pairs = work.reshape(size // block, 2, half)
        top = pairs[:, 0, :].copy()
        bottom = pairs[:, 1, :]
        pairs[:, 0, :] = top + bottom
        pairs[:, 1, :] = top - bottom
    x[base : base + size * stride : stride] = work


def apply_codelet_unrolled(x: np.ndarray, k: int, base: int = 0, stride: int = 1) -> None:
    """Apply the literally unrolled codelet (slow; used for cross-checking)."""
    get_unrolled(k).function(x, base, stride)
