"""The WHT package substrate.

This subpackage is a from-scratch reimplementation of the algorithm space of
the Johnson–Püschel WHT package (reference [7] of the paper): split-tree plan
representation, unrolled base-case codelets, a stride-parameterised in-place
interpreter implementing the paper's triple-loop recursion, canonical plans
(iterative / left-recursive / right-recursive), the recursive-split-uniform
random sampler, exhaustive enumeration of the plan space and the package's
dynamic-programming search.
"""

from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split, plan_from_compositions
from repro.wht.grammar import parse_plan, plan_to_string
from repro.wht.encoding import EncodedPlans, encode_plans, plan_key
from repro.wht.canonical import (
    balanced_plan,
    canonical_plans,
    iterative_plan,
    left_recursive_plan,
    mixed_radix_plan,
    right_recursive_plan,
)
from repro.wht.transform import (
    wht_matrix,
    wht_reference,
    wht_inplace,
    apply_plan,
)
from repro.wht.interpreter import ExecutionStats, PlanInterpreter
from repro.wht.random_plans import RSUSampler, random_plan, random_plans
from repro.wht.enumeration import count_plans, enumerate_plans
from repro.wht.dp_search import DPSearch, DPSearchResult

__all__ = [
    "MAX_UNROLLED",
    "Plan",
    "Small",
    "Split",
    "plan_from_compositions",
    "parse_plan",
    "plan_to_string",
    "plan_key",
    "encode_plans",
    "EncodedPlans",
    "iterative_plan",
    "right_recursive_plan",
    "left_recursive_plan",
    "balanced_plan",
    "mixed_radix_plan",
    "canonical_plans",
    "wht_matrix",
    "wht_reference",
    "wht_inplace",
    "apply_plan",
    "PlanInterpreter",
    "ExecutionStats",
    "RSUSampler",
    "random_plan",
    "random_plans",
    "count_plans",
    "enumerate_plans",
    "DPSearch",
    "DPSearchResult",
]
