"""Canonical plan keys and structure-of-arrays plan encoding.

The batched plan-evaluation engine needs two things from the ``wht`` layer:

* :func:`plan_key` — a *canonical content key* for a plan.  Two plans share a
  key iff they are structurally identical, the key is stable across processes
  (no ``hash()`` involvement) and human-readable: it is simply the compact
  grammar rendering (``split[small[1],small[2]]``), so a key recorded in a
  persistent cost cache can be parsed back into the plan it names.
* :func:`encode_plans` — a structure-of-arrays encoder that flattens a *batch*
  of split trees into flat NumPy arrays (:class:`EncodedPlans`).  Nodes are
  stored in post-order per plan (children before their parent, plans
  concatenated), and every parent→child edge becomes a *child slot* carrying
  the composition geometry (the ``log2`` of the stride factor contributed by
  the siblings to the child's right).  The vectorised analytic models in
  :mod:`repro.models` evaluate thousands of plans in a handful of NumPy sweeps
  over these arrays instead of one Python recursion per plan.

The encoding is model-independent: one :class:`EncodedPlans` can be shared by
the instruction-count and cache-miss models (and any future analytic model),
which is how the combined-model cost scores a candidate batch with a single
encoding pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.util.lru import LRUCache
from repro.wht.grammar import plan_to_string
from repro.wht.plan import Plan

__all__ = ["plan_key", "EncodedPlans", "encode_plans", "MAX_ENCODABLE_EXPONENT"]

#: Largest root exponent the int64 batch arithmetic supports exactly.  Every
#: intermediate quantity of the analytic models is bounded by ``2^(2n)``-ish
#: terms, so staying well below 63 bits keeps the vectorised path bit-exact
#: against the arbitrary-precision scalar models.
MAX_ENCODABLE_EXPONENT = 30


@lru_cache(maxsize=1 << 16)
def plan_key(plan: Plan) -> str:
    """Canonical content key of ``plan`` (the compact grammar string).

    Keys are content-addressed: structural equality of plans is equality of
    keys, independent of object identity, process or Python version.  The key
    doubles as a serialisation — ``parse_plan(plan_key(p)) == p``.
    """
    return plan_to_string(plan)


@dataclass(frozen=True)
class EncodedPlans:
    """A batch of split trees flattened into structure-of-arrays form.

    Nodes appear in post-order within each plan (children before their
    parent), with the plans' node ranges concatenated; a plan's root is
    therefore the *last* node of its segment.  Each parent→child edge is a
    *child slot*; the slots of one split node are contiguous and in
    left-to-right child order, and ``slot_owner`` is non-decreasing.

    All arrays are ``int64`` except ``node_is_leaf`` (bool).  Invariants are
    guaranteed by :func:`encode_plans`; the dataclass itself performs no
    validation (it is produced in bulk on hot paths).
    """

    #: Exponent ``n`` of every node.
    node_exponent: np.ndarray
    #: True for ``Small`` (leaf) nodes.
    node_is_leaf: np.ndarray
    #: Depth of every node below its plan's root (root = 0).
    node_depth: np.ndarray
    #: ``plan_node_start[p] : plan_node_start[p + 1]`` is plan ``p``'s node range.
    plan_node_start: np.ndarray
    #: Node index of the split owning each child slot (non-decreasing).
    slot_owner: np.ndarray
    #: Node index of the child occupying each slot.
    slot_child: np.ndarray
    #: Sum of the exponents of the siblings to the child's right: the slot's
    #: stride factor is ``2^slot_suffix_exponent`` (the triple loop's ``S``).
    slot_suffix_exponent: np.ndarray
    #: ``plan_slot_start[p] : plan_slot_start[p + 1]`` is plan ``p``'s slot range.
    plan_slot_start: np.ndarray

    @property
    def num_plans(self) -> int:
        """Number of encoded plans."""
        return len(self.plan_node_start) - 1

    @property
    def num_nodes(self) -> int:
        """Total node count across the batch."""
        return len(self.node_exponent)

    @property
    def num_slots(self) -> int:
        """Total child-slot count across the batch."""
        return len(self.slot_owner)

    @property
    def root_index(self) -> np.ndarray:
        """Node index of every plan's root (the last node of its segment)."""
        return self.plan_node_start[1:] - 1

    @property
    def root_exponent(self) -> np.ndarray:
        """Root exponent of every plan."""
        return self.node_exponent[self.root_index]

    def node_plan(self) -> np.ndarray:
        """Plan id of every node (``node_plan()[i]`` owns node ``i``)."""
        counts = np.diff(self.plan_node_start)
        return np.repeat(np.arange(self.num_plans, dtype=np.int64), counts)

    def node_multiplicity(self) -> np.ndarray:
        """How often each node executes per run of its plan.

        A sub-plan of size ``2^k`` inside a root of size ``2^n`` is invoked
        once per element block it covers: the per-ancestor call factors
        ``N_parent / N_child`` telescope to ``2^(n - k)``.
        """
        counts = np.diff(self.plan_node_start)
        root_exp = np.repeat(self.root_exponent, counts)
        return np.int64(1) << (root_exp - self.node_exponent)

    def slot_ranges(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-node ``(first_slot, slot_count)`` child-range arrays.

        Leaves have zero slots.  Derived from the sortedness of
        ``slot_owner`` rather than stored, since the vectorised models
        operate on whole slot arrays and only tests and diagnostics need the
        per-node ranges.
        """
        nodes = np.arange(self.num_nodes, dtype=np.int64)
        first = np.searchsorted(self.slot_owner, nodes, side="left")
        last = np.searchsorted(self.slot_owner, nodes, side="right")
        return first.astype(np.int64), (last - first).astype(np.int64)

    def segment_sum_nodes(self, values: np.ndarray) -> np.ndarray:
        """Exact per-plan sums of a per-node int64 array."""
        return _segment_sum(values, self.plan_node_start)

    def segment_sum_slots(self, values: np.ndarray) -> np.ndarray:
        """Exact per-plan sums of a per-slot int64 array."""
        return _segment_sum(values, self.plan_slot_start)


def _segment_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sums of ``values`` over the segments delimited by ``starts``.

    Implemented with one cumulative sum so empty segments cost nothing and
    the arithmetic stays in int64 (exact for the models' magnitudes).
    """
    prefix = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, dtype=np.int64, out=prefix[1:])
    return prefix[starts[1:]] - prefix[starts[:-1]]


@dataclass(frozen=True)
class _PlanSegment:
    """One plan's encoded arrays with plan-local node indices (immutable).

    Segments are what the per-plan memoisation caches: batch encoding then
    reduces to concatenating segments and offsetting the slot index arrays
    by each plan's node base — a handful of NumPy operations regardless of
    how deep the plans are, instead of one Python recursion per plan.
    """

    node_exponent: np.ndarray
    node_is_leaf: np.ndarray
    node_depth: np.ndarray
    slot_owner: np.ndarray
    slot_child: np.ndarray
    slot_suffix: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.node_exponent.shape[0])

    @property
    def num_slots(self) -> int:
        return int(self.slot_owner.shape[0])


#: Per-plan segment cache keyed by :func:`plan_key`.  A segment is a few
#: hundred bytes, so even a six-figure entry count stays modest; the LRU
#: bound keeps adversarial workloads from growing without limit.
_SEGMENT_CACHE: LRUCache[str, _PlanSegment] = LRUCache(1 << 16)


def _encode_segment(plan: Plan) -> _PlanSegment:
    """Walk one plan into its local-index segment (the only per-node pass)."""
    node_exp: list[int] = []
    node_leaf: list[bool] = []
    node_depth: list[int] = []
    slot_owner: list[int] = []
    slot_child: list[int] = []
    slot_suffix: list[int] = []

    def walk(node: Plan, depth: int) -> int:
        children = node.children
        if not children:
            index = len(node_exp)
            node_exp.append(node.n)
            node_leaf.append(True)
            node_depth.append(depth)
            return index
        child_depth = depth + 1
        child_indices = [walk(child, child_depth) for child in children]
        index = len(node_exp)
        node_exp.append(node.n)
        node_leaf.append(False)
        node_depth.append(depth)
        suffix = 0
        suffixes = []
        for child in reversed(children):
            suffixes.append(suffix)
            suffix += child.n
        suffixes.reverse()
        for child_index, child_suffix in zip(child_indices, suffixes):
            slot_owner.append(index)
            slot_child.append(child_index)
            slot_suffix.append(child_suffix)
        return index

    walk(plan, 0)
    return _PlanSegment(
        node_exponent=np.asarray(node_exp, dtype=np.int64),
        node_is_leaf=np.asarray(node_leaf, dtype=bool),
        node_depth=np.asarray(node_depth, dtype=np.int64),
        slot_owner=np.asarray(slot_owner, dtype=np.int64),
        slot_child=np.asarray(slot_child, dtype=np.int64),
        slot_suffix=np.asarray(slot_suffix, dtype=np.int64),
    )


def encode_plans(plans: "Sequence[Plan] | Iterable[Plan]") -> EncodedPlans:
    """Flatten a batch of plans into an :class:`EncodedPlans`.

    Encoding is a memoised *segment splice*: each distinct plan is walked
    once into a plan-local :class:`_PlanSegment` (cached by
    :func:`plan_key`, so re-scoring the same campaign — or re-encoding a
    candidate the search saw last round — never repeats the per-node Python
    pass) and the batch result is assembled by concatenating segments and
    offsetting the slot index arrays, bit-identical to a direct whole-batch
    walk.
    """
    segments: list[_PlanSegment] = []
    for plan in plans:
        if not isinstance(plan, Plan):
            raise TypeError(f"not a Plan: {plan!r}")
        if plan.n > MAX_ENCODABLE_EXPONENT:
            raise ValueError(
                f"plan exponent {plan.n} exceeds the batch encoder's exact-int64 "
                f"range (max {MAX_ENCODABLE_EXPONENT}); use the scalar models"
            )
        key = plan_key(plan)
        segment = _SEGMENT_CACHE.get(key)
        if segment is None:
            segment = _encode_segment(plan)
            _SEGMENT_CACHE.put(key, segment)
        segments.append(segment)

    node_counts = np.array([segment.num_nodes for segment in segments], dtype=np.int64)
    slot_counts = np.array([segment.num_slots for segment in segments], dtype=np.int64)
    plan_node_start = np.zeros(len(segments) + 1, dtype=np.int64)
    np.cumsum(node_counts, out=plan_node_start[1:])
    plan_slot_start = np.zeros(len(segments) + 1, dtype=np.int64)
    np.cumsum(slot_counts, out=plan_slot_start[1:])

    def spliced(arrays: list[np.ndarray], dtype) -> np.ndarray:
        if not arrays:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(arrays)

    # Slot indices are plan-local; shifting them by each plan's node base
    # reproduces the global post-order indices of a whole-batch walk.
    slot_bases = np.repeat(plan_node_start[:-1], slot_counts)
    slot_owner = spliced([segment.slot_owner for segment in segments], np.int64)
    slot_child = spliced([segment.slot_child for segment in segments], np.int64)
    if slot_bases.shape[0]:
        slot_owner = slot_owner + slot_bases
        slot_child = slot_child + slot_bases

    return EncodedPlans(
        node_exponent=spliced([segment.node_exponent for segment in segments], np.int64),
        node_is_leaf=spliced([segment.node_is_leaf for segment in segments], bool),
        node_depth=spliced([segment.node_depth for segment in segments], np.int64),
        plan_node_start=plan_node_start,
        slot_owner=slot_owner,
        slot_child=slot_child,
        slot_suffix_exponent=spliced([segment.slot_suffix for segment in segments], np.int64),
        plan_slot_start=plan_slot_start,
    )
