"""Split-tree representation of WHT algorithms.

Every algorithm in the family studied by the paper is a *plan*: a rooted tree
whose nodes are labelled with size exponents.  A leaf (``Small``) of exponent
``k`` denotes an unrolled straight-line codelet computing ``WHT_{2^k}``.  An
internal node (``Split``) of exponent ``n`` with children of exponents
``n_1, ..., n_t`` (``t >= 2``, ``sum n_i = n``) denotes one application of the
factorisation

    WHT_{2^n} = prod_{i=1}^{t} ( I_{2^{n_1+...+n_{i-1}}}
                                 (x) WHT_{2^{n_i}}
                                 (x) I_{2^{n_{i+1}+...+n_t}} )

evaluated with the paper's triple-loop schedule (Section 2).

Plans are immutable, hashable value objects so they can be used as dictionary
keys by the dynamic-programming search and deduplicated in samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.util.validation import check_positive_int

__all__ = [
    "MAX_UNROLLED",
    "Plan",
    "Small",
    "Split",
    "plan_from_compositions",
    "validate_plan",
]

#: Largest exponent for which an unrolled base-case codelet exists.  The WHT
#: package ships unrolled code for sizes 2^1 .. 2^8; we generate the same set.
MAX_UNROLLED = 8


class Plan:
    """Abstract base class for WHT plans (split trees).

    Concrete subclasses are :class:`Small` (leaf / unrolled codelet) and
    :class:`Split` (internal node).  The class provides the structural
    queries shared by both and used throughout the models and the machine
    simulator.
    """

    #: Size exponent ``n`` (the plan computes ``WHT_{2^n}``).
    n: int

    # -- basic structure ---------------------------------------------------

    @property
    def size(self) -> int:
        """Transform length ``N = 2^n``."""
        return 1 << self.n

    @property
    def is_leaf(self) -> bool:
        """True for :class:`Small` nodes."""
        return isinstance(self, Small)

    @property
    def children(self) -> tuple["Plan", ...]:
        """Child plans (empty for leaves)."""
        return ()

    @property
    def composition(self) -> tuple[int, ...]:
        """The exponent composition applied at this node.

        For a leaf the composition is the one-part composition ``(n,)``; for a
        split node it is the tuple of child exponents.
        """
        if self.is_leaf:
            return (self.n,)
        return tuple(child.n for child in self.children)

    # -- tree metrics --------------------------------------------------------

    def leaves(self) -> list["Small"]:
        """All leaves in left-to-right order."""
        out: list[Small] = []
        self._collect_leaves(out)
        return out

    def _collect_leaves(self, out: list["Small"]) -> None:
        raise NotImplementedError

    def leaf_exponents(self) -> list[int]:
        """Exponents of all leaves, left to right."""
        return [leaf.n for leaf in self.leaves()]

    def num_leaves(self) -> int:
        """Number of leaves (base-case codelets) in the plan."""
        return len(self.leaves())

    def num_nodes(self) -> int:
        """Total node count (leaves plus internal nodes)."""
        return 1 + sum(child.num_nodes() for child in self.children)

    def depth(self) -> int:
        """Height of the tree; a leaf has depth 0."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def walk(self) -> Iterator["Plan"]:
        """Pre-order traversal of every node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def splits(self) -> Iterator["Split"]:
        """Pre-order traversal of the internal (split) nodes only."""
        for node in self.walk():
            if isinstance(node, Split):
                yield node

    # -- transformation ------------------------------------------------------

    def map_leaves(self, fn: Callable[["Small"], "Plan"]) -> "Plan":
        """Return a new plan with every leaf replaced by ``fn(leaf)``.

        The replacement must preserve the leaf's exponent; this is validated.
        """
        if isinstance(self, Small):
            replacement = fn(self)
            if replacement.n != self.n:
                raise ValueError(
                    f"leaf replacement changed exponent {self.n} -> {replacement.n}"
                )
            return replacement
        assert isinstance(self, Split)
        return Split(tuple(child.map_leaves(fn) for child in self.children))

    def mirrored(self) -> "Plan":
        """The plan with every split's children reversed (left/right mirror)."""
        if isinstance(self, Small):
            return self
        assert isinstance(self, Split)
        return Split(tuple(child.mirrored() for child in reversed(self.children)))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serialisable structural description."""
        raise NotImplementedError

    @staticmethod
    def from_dict(data: dict) -> "Plan":
        """Inverse of :meth:`to_dict`."""
        kind = data.get("kind")
        if kind == "small":
            return Small(int(data["n"]))
        if kind == "split":
            children = tuple(Plan.from_dict(c) for c in data["children"])
            return Split(children)
        raise ValueError(f"unknown plan node kind: {kind!r}")

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - delegated
        from repro.wht.grammar import plan_to_string

        return plan_to_string(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self!s})"


@dataclass(frozen=True, repr=False)
class Small(Plan):
    """A leaf: an unrolled straight-line codelet computing ``WHT_{2^n}``.

    The WHT package only unrolls codelets up to ``2^MAX_UNROLLED``; creating a
    larger leaf raises ``ValueError`` because such an algorithm does not exist
    in the family studied by the paper.
    """

    n: int

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        if self.n > MAX_UNROLLED:
            raise ValueError(
                f"unrolled codelets exist only up to 2^{MAX_UNROLLED}; got 2^{self.n}"
            )

    def _collect_leaves(self, out: list["Small"]) -> None:
        out.append(self)

    def to_dict(self) -> dict:
        return {"kind": "small", "n": self.n}


@dataclass(frozen=True, init=False, repr=False)
class Split(Plan):
    """An internal node: one application of the WHT factorisation.

    ``children`` is the ordered tuple of sub-plans; the node's exponent is the
    sum of its children's exponents.  A split must have at least two children
    (a single child would be the identity factorisation, which the WHT package
    does not generate).
    """

    n: int
    _children: tuple[Plan, ...]

    def __init__(self, children: Sequence[Plan]):
        children_t = tuple(children)
        if len(children_t) < 2:
            raise ValueError(
                f"a split node needs at least two children, got {len(children_t)}"
            )
        for child in children_t:
            if not isinstance(child, Plan):
                raise TypeError(f"child {child!r} is not a Plan")
        object.__setattr__(self, "_children", children_t)
        object.__setattr__(self, "n", sum(child.n for child in children_t))

    @property
    def children(self) -> tuple[Plan, ...]:
        return self._children

    def _collect_leaves(self, out: list[Small]) -> None:
        for child in self._children:
            child._collect_leaves(out)

    def to_dict(self) -> dict:
        return {
            "kind": "split",
            "n": self.n,
            "children": [child.to_dict() for child in self._children],
        }


def _split_unchecked(children: tuple[Plan, ...], n: int) -> Split:
    """Internal trusted :class:`Split` constructor (no validation).

    Callers guarantee ``children`` is a tuple of at least two plans whose
    exponents sum to ``n``.  Exists for hot loops (the batched RSU sampler
    builds tens of thousands of nodes per call) where the public
    constructor's per-child validation dominates.
    """
    node = Split.__new__(Split)
    object.__setattr__(node, "_children", children)
    object.__setattr__(node, "n", n)
    return node


def plan_from_compositions(
    n: int,
    chooser: Callable[[int], Sequence[int] | None],
) -> Plan:
    """Build a plan top-down by repeatedly asking ``chooser`` for a composition.

    ``chooser(m)`` must return either ``None`` (meaning: make a leaf of
    exponent ``m``; only legal for ``m <= MAX_UNROLLED``) or a composition of
    ``m`` with at least two parts.  This is the common skeleton behind the
    canonical plan constructors and the RSU sampler.
    """
    check_positive_int(n, "n")
    choice = chooser(n)
    if choice is None:
        return Small(n)
    parts = tuple(int(p) for p in choice)
    if sum(parts) != n:
        raise ValueError(f"composition {parts} does not sum to {n}")
    if len(parts) < 2:
        raise ValueError(f"composition of a split must have >= 2 parts, got {parts}")
    return Split(tuple(plan_from_compositions(p, chooser) for p in parts))


def validate_plan(plan: Plan) -> None:
    """Raise ``ValueError`` if ``plan`` violates any structural invariant.

    Checks performed:

    * every split exponent equals the sum of its children's exponents,
    * every leaf exponent is within the unrolled-codelet range,
    * every split has at least two children.

    Plans built through the public constructors always satisfy these; the
    function exists for plans deserialised from external descriptions.
    """
    for node in plan.walk():
        if isinstance(node, Small):
            if not 1 <= node.n <= MAX_UNROLLED:
                raise ValueError(f"leaf exponent {node.n} outside [1, {MAX_UNROLLED}]")
        elif isinstance(node, Split):
            if len(node.children) < 2:
                raise ValueError("split node with fewer than two children")
            if node.n != sum(child.n for child in node.children):
                raise ValueError(
                    f"split exponent {node.n} != sum of child exponents "
                    f"{[c.n for c in node.children]}"
                )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown node type {type(node).__name__}")
