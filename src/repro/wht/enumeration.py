"""Exact enumeration and counting of the WHT algorithm space.

Section 2 of the paper notes that the number of WHT algorithms (split trees)
for size ``2^n`` grows like ``O(7^n)`` (with the precise asymptotics derived
in Hitczenko–Johnson–Huang).  This module provides

* :func:`count_plans` — the exact number of plans for exponent ``n`` with a
  given maximum leaf size, computed with an ``O(n^2)`` dynamic program over
  weighted compositions (exact Python integers, no overflow),
* :func:`enumerate_plans` — a generator over *all* plans of exponent ``n``
  (practical only for small ``n``; the count is checked against
  :func:`count_plans` in the tests),
* :func:`growth_ratios` — successive ratios ``W(n+1)/W(n)`` which approach the
  ``~6.996`` growth constant behind the ``O(7^n)`` statement.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.util.compositions import compositions
from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split

__all__ = ["count_plans", "enumerate_plans", "growth_ratios"]


def _count_table(n: int, max_leaf: int) -> list[int]:
    """Table ``W[m]`` of plan counts for every exponent ``m <= n``.

    ``W[m] = [m <= max_leaf] + sum over compositions of m with >= 2 parts of
    prod W[part]``.  The inner sum is computed through the auxiliary sequence
    ``H[m] = sum over compositions of m with >= 1 part of prod W[part]``
    (parts strictly smaller than the exponent currently being filled in), via
    the convolution ``H[m] = W[m] + sum_j W[j] * H[m - j]``.
    """
    W = [0] * (n + 1)
    for m in range(1, n + 1):
        leaf = 1 if m <= max_leaf else 0
        # H over exponents < m, built from the already known W values.
        H = [0] * (m + 1)
        H[0] = 0
        for s in range(1, m):
            total = W[s]
            for j in range(1, s):
                total += W[j] * H[s - j]
            H[s] = total
        splits = 0
        for j in range(1, m):
            splits += W[j] * H[m - j]
        W[m] = leaf + splits
    return W


@lru_cache(maxsize=None)
def count_plans(n: int, max_leaf: int = MAX_UNROLLED) -> int:
    """The exact number of WHT plans for size ``2^n``.

    A plan is either a leaf (only when ``n <= max_leaf``) or a split into at
    least two sub-plans; sub-plans are counted recursively.  Counts are exact
    integers (they exceed 64 bits well before ``n = 30``).
    """
    check_positive_int(n, "n")
    check_positive_int(max_leaf, "max_leaf")
    return _count_table(n, max_leaf)[n]


def growth_ratios(n_max: int, max_leaf: int = MAX_UNROLLED) -> list[float]:
    """Successive ratios ``W(m+1) / W(m)`` for ``m = 1 .. n_max - 1``.

    As ``m`` grows the ratio approaches the asymptotic growth constant of the
    algorithm space (just under 7), which is the basis of the paper's
    ``O(7^n)`` remark.
    """
    check_positive_int(n_max, "n_max")
    table = _count_table(n_max, max_leaf)
    out: list[float] = []
    for m in range(1, n_max):
        if table[m] == 0:
            out.append(float("nan"))
        else:
            out.append(table[m + 1] / table[m])
    return out


def enumerate_plans(
    n: int,
    max_leaf: int = MAX_UNROLLED,
    limit: int | None = None,
) -> Iterator[Plan]:
    """Yield every plan of exponent ``n`` (deterministic order).

    The space grows roughly like ``7^n``; callers should pass ``limit`` or
    keep ``n`` small (``n <= 7`` enumerates in well under a second).  When
    ``limit`` is reached a ``RuntimeError`` is raised rather than silently
    truncating the space, so callers can never mistake a partial enumeration
    for a full one.
    """
    check_positive_int(n, "n")
    check_positive_int(max_leaf, "max_leaf")
    produced = 0
    for plan in _enumerate(n, max_leaf):
        produced += 1
        if limit is not None and produced > limit:
            raise RuntimeError(
                f"enumeration of exponent {n} exceeded limit={limit} plans"
            )
        yield plan


def _enumerate(n: int, max_leaf: int) -> Iterator[Plan]:
    if n <= max_leaf:
        yield Small(n)
    for comp in compositions(n, min_parts=2):
        yield from _product_of_choices(comp, max_leaf)


def _product_of_choices(comp: tuple[int, ...], max_leaf: int) -> Iterator[Plan]:
    """All split plans whose root composition is ``comp``."""

    def helper(index: int, chosen: tuple[Plan, ...]) -> Iterator[Plan]:
        if index == len(comp):
            yield Split(chosen)
            return
        for sub in _enumerate(comp[index], max_leaf):
            yield from helper(index + 1, chosen + (sub,))

    yield from helper(0, ())
