"""Parser and printer for the WHT package's plan syntax.

The Johnson–Püschel WHT package describes algorithms with a small textual
grammar::

    plan  :=  small[k]
           |  split[plan, plan, ..., plan]

``small[k]`` is an unrolled codelet of size ``2^k``; ``split[...]`` applies
the WHT factorisation with one child per factor.  This module converts between
that syntax and :class:`repro.wht.plan.Plan` trees.  Whitespace between tokens
is ignored, so strings may be pretty-printed over several lines.
"""

from __future__ import annotations

from repro.wht.plan import Plan, Small, Split

__all__ = ["plan_to_string", "parse_plan", "PlanSyntaxError"]


class PlanSyntaxError(ValueError):
    """Raised when a plan string cannot be parsed."""

    def __init__(self, message: str, position: int, text: str):
        super().__init__(f"{message} at position {position}: {text!r}")
        self.position = position
        self.text = text


def plan_to_string(plan: Plan) -> str:
    """Render ``plan`` in the WHT package syntax (compact, no whitespace)."""
    if isinstance(plan, Small):
        return f"small[{plan.n}]"
    if isinstance(plan, Split):
        inner = ",".join(plan_to_string(child) for child in plan.children)
        return f"split[{inner}]"
    raise TypeError(f"not a Plan node: {plan!r}")


class _Parser:
    """Recursive-descent parser for the plan grammar."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> PlanSyntaxError:
        return PlanSyntaxError(message, self.pos, self.text)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def parse_keyword(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isalpha():
            self.pos += 1
        word = self.text[start : self.pos]
        if not word:
            raise self.error("expected 'small' or 'split'")
        return word

    def parse_int(self) -> int:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        digits = self.text[start : self.pos]
        if not digits:
            raise self.error("expected an integer")
        return int(digits)

    def parse_plan(self) -> Plan:
        word = self.parse_keyword()
        if word == "small":
            self.expect("[")
            k = self.parse_int()
            self.expect("]")
            try:
                return Small(k)
            except ValueError as exc:
                raise self.error(str(exc)) from exc
        if word == "split":
            self.expect("[")
            children = [self.parse_plan()]
            self.skip_ws()
            while self.peek() == ",":
                self.pos += 1
                children.append(self.parse_plan())
                self.skip_ws()
            self.expect("]")
            try:
                return Split(tuple(children))
            except ValueError as exc:
                raise self.error(str(exc)) from exc
        raise self.error(f"unknown node kind {word!r}")

    def parse(self) -> Plan:
        plan = self.parse_plan()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters after plan")
        return plan


def parse_plan(text: str) -> Plan:
    """Parse a plan string such as ``split[small[1],split[small[2],small[3]]]``."""
    if not isinstance(text, str):
        raise TypeError(f"plan text must be a string, got {type(text).__name__}")
    return _Parser(text).parse()
