"""Scatter figures (Figures 6, 7 and 8).

Each scatter figure plots one model quantity against measured cycles for a
random-sample campaign, reports the Pearson correlation coefficient, and marks
the canonical algorithms and the DP-best algorithm as named reference points
(the paper notes when a reference point falls outside the sample's range, as
the left recursive algorithm does at size 2^18).
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.scatter import ScatterData, scatter_data
from repro.experiments.campaign import MeasurementTable
from repro.machine.measurement import Measurement

__all__ = ["scatter_figure"]


def scatter_figure(
    table: MeasurementTable,
    x_metric: str = "instructions",
    y_metric: str = "cycles",
    references: Mapping[str, Measurement] | None = None,
    reference_points: Mapping[str, tuple[float, float]] | None = None,
) -> ScatterData:
    """Scatter data of two campaign columns with optional reference algorithms.

    ``references`` maps algorithm names (``"iterative"``, ``"left"``,
    ``"right"``, ``"best"``) to their measurements at the same size; they are
    drawn as labelled points in the paper's figures.  For metrics that are
    not :class:`Measurement` attributes (e.g. the analytic ``model_*``
    columns grafted on by
    :func:`repro.experiments.model_scores.with_model_columns`) pass
    precomputed ``reference_points`` instead; both may be combined, with
    explicit points taking precedence.
    """
    ref_points: dict[str, tuple[float, float]] = {}
    for name, measurement in (references or {}).items():
        if measurement.n != table.n:
            raise ValueError(
                f"reference {name!r} is for size 2^{measurement.n}, "
                f"table is for 2^{table.n}"
            )
        ref_points[name] = (
            float(getattr(measurement, x_metric)),
            float(getattr(measurement, y_metric)),
        )
    ref_points.update(
        (name, (float(x), float(y)))
        for name, (x, y) in (reference_points or {}).items()
    )
    return scatter_data(
        table.column(x_metric),
        table.column(y_metric),
        x_label=x_metric,
        y_label=y_metric,
        references=ref_points,
    )
