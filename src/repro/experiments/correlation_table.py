"""Headline correlation coefficients (Section 4 of the paper).

The paper's quantitative summary:

* size 2^9 (fits L1): rho(instructions, cycles) = 0.96,
* size 2^18 (does not fit L1): rho(instructions, cycles) = 0.77,
  rho(L1 misses, cycles) = 0.66,
  rho(alpha*I + beta*M, cycles) = 0.92 at the optimal (alpha, beta) = (1.00, 0.05).

:func:`correlation_table` reproduces all four numbers (plus the optimal
coefficients) from two campaign tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pearson import pearson_correlation
from repro.experiments.alphabeta import alphabeta_surface
from repro.experiments.campaign import MeasurementTable
from repro.models.combined import CombinedModel

__all__ = ["CorrelationTable", "correlation_table"]


@dataclass(frozen=True)
class CorrelationTable:
    """The reproduction's analogue of the paper's headline correlations."""

    small_n: int
    large_n: int
    #: rho(instructions, cycles) at the small (in-cache) size.
    rho_small_instructions: float
    #: rho(instructions, cycles) at the large (out-of-cache) size.
    rho_large_instructions: float
    #: rho(L1 misses, cycles) at the large size.
    rho_large_misses: float
    #: rho(alpha*I + beta*M, cycles) at the large size, at the optimal grid point.
    rho_large_combined: float
    #: The optimal combined-model coefficients found on the grid.
    best_alpha: float
    best_beta: float

    def best_model(self) -> CombinedModel:
        """The optimal combined model."""
        return CombinedModel(alpha=self.best_alpha, beta=self.best_beta)

    def as_rows(self) -> list[tuple[str, float]]:
        """(description, value) rows for report rendering."""
        return [
            (f"rho(I, cycles), size 2^{self.small_n}", self.rho_small_instructions),
            (f"rho(I, cycles), size 2^{self.large_n}", self.rho_large_instructions),
            (f"rho(M, cycles), size 2^{self.large_n}", self.rho_large_misses),
            (
                f"rho({self.best_alpha:.2f}*I + {self.best_beta:.2f}*M, cycles), "
                f"size 2^{self.large_n}",
                self.rho_large_combined,
            ),
        ]

    def satisfies_paper_ordering(self) -> bool:
        """The structural claim of Section 4, independent of exact values.

        In-cache instruction correlation is high; it drops out of cache; the
        miss-only correlation is weaker than the instruction correlation out
        of cache; and the combined model restores a correlation at least as
        strong as either individual model out of cache.
        """
        return (
            self.rho_small_instructions > self.rho_large_instructions
            and self.rho_large_combined >= self.rho_large_instructions
            and self.rho_large_combined >= self.rho_large_misses
        )


def correlation_table(
    small_table: MeasurementTable,
    large_table: MeasurementTable,
) -> CorrelationTable:
    """Compute the headline correlations from the two campaign tables."""
    surface = alphabeta_surface(large_table)
    alpha, beta, rho_combined = surface.best
    return CorrelationTable(
        small_n=small_table.n,
        large_n=large_table.n,
        rho_small_instructions=pearson_correlation(
            small_table.instructions, small_table.cycles
        ),
        rho_large_instructions=pearson_correlation(
            large_table.instructions, large_table.cycles
        ),
        rho_large_misses=pearson_correlation(large_table.l1_misses, large_table.cycles),
        rho_large_combined=rho_combined,
        best_alpha=alpha,
        best_beta=beta,
    )
